"""reprolint — project-specific invariant linter for the repro package.

The paper's correctness rests on numerical invariants that ordinary
linters cannot see: the O(1) ``avg_sim`` maintenance of Eq. 19-26, the
multiplicative ``λ^Δτ`` decay of Eq. 27-29, and the ``ε = λ^γ`` expiry
threshold. A bug in any of them does not crash — it silently skews
every later clustering, which in a topic-tracking system masquerades as
"topic drift". reprolint makes the *coding patterns* that protect those
invariants machine-checked at analysis time:

========  ============================================================
REP001    No wall-clock timestamps in ``core``/``forgetting`` numerics
          (logical time ``τ`` only, per Eq. 1).
REP002    No ``==``/``!=`` float-literal comparisons outside the
          allowlisted exact sentinels (0.0 everywhere; the ``λ^Δτ ==
          1.0`` decay no-op in the forgetting layer).
REP003    Engines and statistics backends are obtained via their
          registries (``resolve_engine``/``resolve_backend``), never
          direct-instantiated outside their own packages and tests.
REP004    Public pipeline entry points open an ``repro.obs`` span.
REP005    ``CorpusStatistics`` internals are never mutated outside the
          forgetting package.
========  ============================================================

Run it as ``python -m reprolint src tests`` (with ``tools`` on
``PYTHONPATH``). Suppress a single finding with a trailing comment::

    t0 = time.time()  # reprolint: disable=REP001

or a whole file with a top-of-file comment::

    # reprolint: disable-file=REP002

Each rule's rationale (with the paper equations it protects) is in
``docs/CONTRIBUTING.md`` and on ``python -m reprolint --list-rules``.
"""

from .engine import FileContext, Violation, lint_paths, lint_source
from .rules import ALL_RULES

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Violation",
    "lint_paths",
    "lint_source",
    "__version__",
]
