"""Command-line front end: ``python -m reprolint [paths...]``."""

from __future__ import annotations

import argparse
import sys
import textwrap
from typing import List, Optional, Sequence

from .engine import lint_paths
from .rules import ALL_RULES


def _list_rules() -> str:
    blocks: List[str] = []
    for rule in ALL_RULES:
        wrapped = textwrap.fill(
            rule.rationale, width=76, initial_indent="    ",
            subsequent_indent="    ",
        )
        blocks.append(f"{rule.code} [{rule.name}]\n{wrapped}")
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-specific invariant linter for the repro package "
            "(REP001-REP006)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its rationale and exit",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = ALL_RULES
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in ALL_RULES}
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in ALL_RULES if rule.code in wanted]

    violations = lint_paths(args.paths, rules)
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            f"reprolint: {len(violations)} violation"
            f"{'s' if len(violations) != 1 else ''} found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
