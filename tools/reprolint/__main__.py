"""Entry point for ``python -m reprolint``."""

import sys

from .cli import main

sys.exit(main())
