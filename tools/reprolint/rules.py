"""The REP001-REP006 rules.

Every rule documents the paper invariant it protects in ``rationale``
(surfaced by ``--list-rules`` and ``docs/CONTRIBUTING.md``). Rules are
deliberately conservative: each one flags a *pattern that has broken a
real topic-tracking system*, and each has an inline suppression escape
hatch (``# reprolint: disable=REPnnn``) for the rare justified use.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .engine import FileContext, Rule, Violation

# ---------------------------------------------------------------------------
# REP001 — logical time only in the numerics
# ---------------------------------------------------------------------------

#: Dotted suffixes of wall-clock *timestamp* sources. Duration timers
#: (``time.perf_counter``, ``time.monotonic``) are allowed: they measure
#: elapsed seconds for observability, not positions on the τ axis.
_WALL_CLOCK_SUFFIXES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Packages whose numerics must run on the logical clock ``τ``.
_LOGICAL_TIME_PACKAGES: Tuple[str, ...] = (
    "repro/core",
    "repro/forgetting",
)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted path through import aliases."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    code = "REP001"
    name = "no-wall-clock-in-numerics"
    rationale = (
        "Eq. 1 defines document weight as λ^(τ-T) over the *logical* "
        "batch clock τ; Eq. 27-29 advance every statistic by λ^Δτ. A "
        "wall-clock timestamp (time.time, datetime.now) leaking into "
        "repro.core or repro.forgetting silently mixes two time axes, "
        "which skews every weight without crashing. Duration timers "
        "(time.perf_counter/monotonic) stay allowed: they measure "
        "elapsed seconds for observability, never positions on τ."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not any(context.in_path(pkg) for pkg in _LOGICAL_TIME_PACKAGES):
            return
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func, aliases)
            if dotted is None:
                continue
            if any(
                dotted == suffix or dotted.endswith("." + suffix)
                for suffix in _WALL_CLOCK_SUFFIXES
            ):
                yield self.violation(
                    context, node,
                    f"wall-clock call {dotted}() in a logical-time "
                    f"package; pass the batch clock τ explicitly (Eq. 1)",
                )


# ---------------------------------------------------------------------------
# REP002 — float-literal equality
# ---------------------------------------------------------------------------

#: Files allowed to compare against 1.0: the decay no-op short-circuit
#: (λ^Δτ == 1.0 iff Δτ == 0, which ** produces exactly).
_DECAY_NOOP_FILES: Tuple[str, ...] = (
    "repro/forgetting/statistics.py",
    "repro/forgetting/backends/dict_backend.py",
    "repro/forgetting/backends/columnar.py",
)


def _float_literal(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        value = node.operand.value
        return -value if isinstance(node.op, ast.USub) else value
    return None


class FloatEqualityRule(Rule):
    code = "REP002"
    name = "no-float-literal-equality"
    rationale = (
        "The incremental statistics (Eq. 19-29) accumulate float "
        "rounding, so `x == 0.3`-style comparisons flip on drift that "
        "is invisible in tests. Two sentinels are exact by IEEE-754 "
        "and stay allowed: comparisons against 0.0 (the structural "
        "non-zero invariant of vectors/sparse.py — components are "
        "*dropped*, never stored as zero) and the λ^Δτ == 1.0 decay "
        "no-op in the forgetting layer (Δτ == 0 gives exactly 1.0). "
        "Everything else needs math.isclose or an explicit suppression. "
        "Test suites are exempt: their exact equalities are deliberate "
        "bit-parity assertions between engines/backends."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        decay_file = any(
            context.in_path(name) for name in _DECAY_NOOP_FILES
        )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            eq_ops = [
                op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))
            ]
            if not eq_ops:
                continue
            for operand in operands:
                literal = _float_literal(operand)
                if literal is None:
                    continue
                if literal == 0.0:
                    continue
                if literal == 1.0 and decay_file:
                    continue
                yield self.violation(
                    context, node,
                    f"float equality against {literal!r}; use "
                    f"math.isclose (or suppress for a proven-exact "
                    f"sentinel)",
                )
                break


# ---------------------------------------------------------------------------
# REP003 — registry-only construction
# ---------------------------------------------------------------------------

#: Concrete engine/backend classes (and their legacy aliases) that must
#: be built through resolve_engine()/resolve_backend() everywhere else.
_REGISTERED_CLASSES: Tuple[str, ...] = (
    "SparseEngine",
    "DenseEngine",
    "MatrixEngine",
    "PrunedEngine",
    "DictStatisticsBackend",
    "ColumnarStatisticsBackend",
    "_SparseBackend",
    "_DenseBackend",
)

#: Packages allowed to instantiate their own classes directly.
_REGISTRY_HOME_PACKAGES: Tuple[str, ...] = (
    "repro/core/engines",
    "repro/forgetting/backends",
)

#: Pipeline classes applications must build through repro.api
#: (open_stream()/build_clusterer()) instead of constructing directly.
#: The library itself (anything under repro/) is the home package.
_PIPELINE_CLASSES: Tuple[str, ...] = (
    "IncrementalClusterer",
    "NonIncrementalClusterer",
)

_PIPELINE_HOME_PACKAGE = "repro"


class RegistryOnlyRule(Rule):
    code = "REP003"
    name = "registry-only-construction"
    rationale = (
        "Three engines and two statistics backends implement the same "
        "Eq. 19-26 / Eq. 27-29 recurrences; the parity guarantees hold "
        "only for instances produced by the registries, where the "
        "factory signature and the Engine/StatisticsBackend protocols "
        "are type-checked. A direct `DenseEngine(...)` call outside "
        "repro.core.engines / repro.forgetting.backends bypasses "
        "resolve_engine()/resolve_backend() name validation and "
        "freezes the call site to one implementation. The same logic "
        "covers the pipelines themselves: direct "
        "IncrementalClusterer(...) construction outside the library "
        "bypasses repro.api (open_stream()/build_clusterer()), the "
        "documented entry point that wires configuration, durability "
        "and the service layer consistently. Tests and benchmarks are "
        "exempt — parity suites construct concrete classes on purpose."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        in_registry_home = any(
            context.in_path(pkg) for pkg in _REGISTRY_HOME_PACKAGES
        )
        in_library = context.in_path(_PIPELINE_HOME_PACKAGE)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                called = func.attr
            elif isinstance(func, ast.Name):
                called = func.id
            else:
                continue
            if called in _REGISTERED_CLASSES and not in_registry_home:
                kind = (
                    "resolve_backend" if "Backend" in called
                    else "resolve_engine"
                )
                yield self.violation(
                    context, node,
                    f"direct instantiation of {called}; obtain it via "
                    f"{kind}() so the registry contract stays checked",
                )
            elif called in _PIPELINE_CLASSES and not in_library:
                yield self.violation(
                    context, node,
                    f"direct construction of {called} outside the "
                    f"library; use repro.api.open_stream() (or "
                    f"build_clusterer()) so configuration, durability "
                    f"and the service layer stay wired consistently",
                )


# ---------------------------------------------------------------------------
# REP004 — pipeline entry points open an obs span
# ---------------------------------------------------------------------------

#: ``(file suffix, qualified function name)`` of every public pipeline
#: entry point. Each must open a repro.obs span somewhere in its body.
_SPAN_ENTRY_POINTS: Tuple[Tuple[str, str], ...] = (
    ("repro/core/incremental.py", "IncrementalClusterer.process_batch"),
    ("repro/core/incremental.py", "NonIncrementalClusterer.process_batch"),
    ("repro/core/kmeans.py", "NoveltyKMeans.fit"),
    ("repro/core/engines/pruned.py", "PrunedEngine.best_gains"),
    ("repro/forgetting/statistics.py", "CorpusStatistics.observe"),
    ("repro/forgetting/statistics.py", "CorpusStatistics.expire"),
    ("repro/forgetting/statistics.py", "CorpusStatistics.from_scratch"),
    ("repro/text/pipeline.py", "TextPipeline.batch_term_frequencies"),
    ("repro/persistence.py", "save_checkpoint"),
    ("repro/persistence.py", "load_checkpoint"),
    ("repro/durability/recovery.py", "recover"),
    ("repro/service/service.py", "ClusterService._ingest"),
    ("repro/service/snapshot.py", "ClusterSnapshot.from_clusterer"),
)


def _opens_span(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "Span":
                return True
            if isinstance(func, ast.Attribute) and func.attr == "span":
                return True
    return False


class SpanRequiredRule(Rule):
    code = "REP004"
    name = "pipeline-entry-points-open-spans"
    rationale = (
        "PR 1 made the pipeline observable so a state-update bug shows "
        "up as a phase anomaly instead of unexplained topic drift; "
        "that only works if every public entry point actually opens a "
        "span. This rule pins the list: each named entry point must "
        "contain `with Span(...)` (or `recorder.span(...)`), and must "
        "still exist — renaming one without updating the lint table is "
        "itself a finding, so the observability surface cannot rot "
        "silently."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        expected = [
            qualname for suffix, qualname in _SPAN_ENTRY_POINTS
            if context.in_path(suffix)
        ]
        if not expected:
            return
        functions: Dict[str, ast.AST] = {}
        for top in context.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[top.name] = top
            elif isinstance(top, ast.ClassDef):
                for member in top.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        functions[f"{top.name}.{member.name}"] = member
        for qualname in expected:
            function = functions.get(qualname)
            if function is None:
                yield self.violation(
                    context, context.tree,
                    f"pipeline entry point {qualname} not found; update "
                    f"reprolint's _SPAN_ENTRY_POINTS if it moved",
                )
            elif not _opens_span(function):
                yield self.violation(
                    context, function,
                    f"pipeline entry point {qualname} opens no obs span; "
                    f"wrap its phases in `with Span(recorder, ...)`",
                )


# ---------------------------------------------------------------------------
# REP005 — CorpusStatistics internals stay inside the forgetting package
# ---------------------------------------------------------------------------

#: Local names conventionally bound to a CorpusStatistics instance.
_STATS_NAMES = frozenset({
    "statistics", "stats", "corpus_statistics", "corpus_stats",
})

#: Method names that mutate the container they are called on.
_MUTATOR_METHODS = frozenset({
    "update", "pop", "clear", "setdefault", "add", "remove", "discard",
    "extend", "append", "insert", "popitem",
})

_FORGETTING_PACKAGE = "repro/forgetting"


def _is_stats_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _STATS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _STATS_NAMES
    return False


def _private_stats_attribute(node: ast.AST) -> Optional[str]:
    """``stats._docs``-shaped expression -> the private attribute name."""
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and target.attr.startswith("_")
        and not target.attr.startswith("__")
        and _is_stats_expr(target.value)
    ):
        return target.attr
    return None


class StatisticsEncapsulationRule(Rule):
    code = "REP005"
    name = "no-statistics-internal-mutation"
    rationale = (
        "CorpusStatistics guards its state transitions: observe() "
        "validates the whole batch before mutating anything (the "
        "transactional-ingestion invariant), advance_to() refuses a "
        "backwards clock, and every mutation keeps the backend's "
        "tdw/term-mass aggregates consistent with Eq. 27-29. Writing "
        "to `statistics._docs`, `statistics._now` or `statistics."
        "_backend` from outside repro.forgetting skips those guards "
        "and desynchronises the aggregates from the document registry "
        "— the exact bug class the hypothesis parity suite exists to "
        "rule out. Tests are exempt (they simulate drift on purpose)."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code or context.in_path(_FORGETTING_PACKAGE):
            return
        for node in ast.walk(context.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    attr = _private_stats_attribute(func.value)
                    if attr is not None:
                        yield self.violation(
                            context, node,
                            f"mutating CorpusStatistics internal "
                            f"'{attr}' via .{func.attr}(); go through "
                            f"the public observe/expire/remove API",
                        )
                continue
            for target in targets:
                attr = _private_stats_attribute(target)
                if attr is not None:
                    yield self.violation(
                        context, node,
                        f"write to CorpusStatistics internal '{attr}' "
                        f"outside repro.forgetting; go through the "
                        f"public observe/expire/remove API",
                    )


# ---------------------------------------------------------------------------
# REP006 — checkpoint/journal files are written atomically
# ---------------------------------------------------------------------------

#: The only package allowed to open durable state files for writing.
_DURABILITY_PACKAGE = "repro/durability"

#: Substrings marking an expression as a durable-state path.
_DURABLE_MARKERS = ("checkpoint", "journal")

#: Writing open() modes ("r", "rb", "rt" stay allowed).
_WRITE_MODE_CHARS = frozenset("wax+")


def _mentions_durable_state(node: ast.AST) -> bool:
    """True when any identifier/attribute/literal inside ``node`` names
    a checkpoint or journal."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        else:
            continue
        lowered = text.lower()
        if any(marker in lowered for marker in _DURABLE_MARKERS):
            return True
    return False


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The mode string when ``node`` is an ``open()``-style call that
    writes; ``None`` for reads or non-open calls."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id != "open":
            return None
        path_index = 0
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        path_index = -1  # pathlib-style: the path is the receiver
    else:
        return None
    mode: Optional[str] = None
    positional = node.args[path_index + 1:] if path_index >= 0 else node.args
    if positional and isinstance(positional[0], ast.Constant) \
            and isinstance(positional[0].value, str):
        mode = positional[0].value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant) \
                and isinstance(keyword.value.value, str):
            mode = keyword.value.value
    if mode is None:
        return None
    if _WRITE_MODE_CHARS.intersection(mode):
        return mode
    return None


class AtomicCheckpointWritesRule(Rule):
    code = "REP006"
    name = "atomic-checkpoint-writes"
    rationale = (
        "The crash-safety guarantee (docs/DURABILITY.md) holds because "
        "every checkpoint and journal byte reaches disk through "
        "repro.durability.atomic: temp file + fsync + os.replace, .bak "
        "rotation, payload checksum. A plain `open(path, 'w')` + "
        "json.dump to a checkpoint/journal path truncates the previous "
        "good state *before* the new one exists — one crash in that "
        "window and recovery has nothing to load; this exact bug "
        "motivated the durability PR. The rule flags write-mode "
        "open()/Path.open()/write_text() calls whose path expression "
        "or enclosing function names a checkpoint or journal, outside "
        "repro.durability. Tests and benchmarks are exempt: they "
        "corrupt state files on purpose."
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code or context.in_path(_DURABILITY_PACKAGE):
            return
        self._function_stack: List[str] = []
        yield from self._visit(context, context.tree)

    def _visit(
        self, context: FileContext, node: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function_stack.append(node.name)
            for child in ast.iter_child_nodes(node):
                yield from self._visit(context, child)
            self._function_stack.pop()
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(context, node)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(context, child)

    def _in_durable_function(self) -> bool:
        return any(
            marker in name.lower()
            for name in self._function_stack
            for marker in _DURABLE_MARKERS
        )

    def _check_call(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Violation]:
        func = node.func
        # foo.write_text(...) on a checkpoint/journal-named receiver
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "write_text"
            and (
                _mentions_durable_state(func.value)
                or self._in_durable_function()
            )
        ):
            yield self.violation(
                context, node,
                "non-atomic write_text() to a checkpoint/journal path; "
                "route it through repro.durability.atomic",
            )
            return
        mode = _open_write_mode(node)
        if mode is None:
            return
        if isinstance(func, ast.Attribute):
            durable_path = _mentions_durable_state(func.value)
        else:
            durable_path = bool(node.args) and _mentions_durable_state(
                node.args[0]
            )
        if durable_path or self._in_durable_function():
            yield self.violation(
                context, node,
                f"non-atomic open(..., {mode!r}) of a checkpoint/"
                f"journal path; route the write through "
                f"repro.durability.atomic (temp file + fsync + "
                f"os.replace)",
            )


ALL_RULES: Sequence[Rule] = (
    WallClockRule(),
    FloatEqualityRule(),
    RegistryOnlyRule(),
    SpanRequiredRule(),
    StatisticsEncapsulationRule(),
    AtomicCheckpointWritesRule(),
)
