"""Linting engine: file walking, suppression comments, rule dispatch.

The engine is deliberately small: it parses each file once, extracts
``# reprolint:`` suppression comments from the token stream (so strings
that merely *contain* the marker never suppress anything), hands one
:class:`FileContext` to every rule, and filters the returned
:class:`Violation` objects against the suppressions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Directories never linted, wherever they appear in a walked tree.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache",
    "build", "dist",
})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<codes>all|REP\d{3}(?:\s*,\s*REP\d{3})*)"
)

#: Matches every rule code when a suppression says ``all``.
_ALL = "all"


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to know about one file."""

    path: str
    tree: ast.Module
    source: str
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)

    def in_path(self, fragment: str) -> bool:
        """True when ``fragment`` matches a directory-aligned part of the
        file's path (``"repro/core"`` matches ``src/repro/core/kmeans.py``
        but not ``src/repro/corelib.py``)."""
        haystack = "/" + self.path.strip("/") + "/"
        needle = "/" + fragment.strip("/") + "/"
        return needle in haystack or haystack.endswith(
            "/" + fragment.strip("/")
        )

    @property
    def is_test_code(self) -> bool:
        """Test suites and benchmarks: exempt from the packaging rules."""
        return (
            self.in_path("tests")
            or self.in_path("benchmarks")
            or Path(self.path).name.startswith("conftest")
        )

    def suppressed(self, violation: Violation) -> bool:
        if violation.code in self.file_suppressions or _ALL in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(violation.line)
        return codes is not None and (violation.code in codes or _ALL in codes)


def _collect_suppressions(
    source: str,
) -> "tuple[Dict[int, Set[str]], Set[str]]":
    """Parse ``# reprolint: disable[-file]=...`` comments from the
    token stream, so the marker inside a string literal is inert."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            raw = match.group("codes")
            codes = (
                {_ALL} if raw == _ALL
                else {code.strip() for code in raw.split(",")}
            )
            if match.group("scope") == "disable-file":
                whole_file.update(codes)
            else:
                per_line.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenError:
        # a file the tokenizer rejects will also fail ast.parse, and
        # the caller reports that as a violation already
        pass
    return per_line, whole_file


def make_context(path: str, source: str) -> FileContext:
    """Parse ``source`` into a rule-ready context (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    per_line, whole_file = _collect_suppressions(source)
    return FileContext(
        path=path,
        tree=tree,
        source=source,
        line_suppressions=per_line,
        file_suppressions=whole_file,
    )


def lint_source(
    path: str,
    source: str,
    rules: Optional[Sequence["Rule"]] = None,
) -> List[Violation]:
    """Lint one in-memory file; the unit the fixture tests drive."""
    from .rules import ALL_RULES

    active = list(ALL_RULES if rules is None else rules)
    try:
        context = make_context(path, source)
    except SyntaxError as exc:
        return [Violation(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code="REP000",
            message=f"file does not parse: {exc.msg}",
        )]
    violations = [
        violation
        for rule in active
        for violation in rule.check(context)
        if not context.suppressed(violation)
    ]
    violations.sort(key=lambda v: (v.line, v.col, v.code))
    return violations


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            if any(part in SKIP_DIRS or part.endswith(".egg-info")
                   for part in candidate.parts):
                continue
            yield candidate


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence["Rule"]] = None,
) -> List[Violation]:
    """Lint every python file under ``paths``; the CLI's core."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(file_path.as_posix(), source, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


class Rule:
    """Base class: subclasses set the metadata and implement check()."""

    code: str = "REP000"
    name: str = ""
    rationale: str = ""

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )
