#!/usr/bin/env python
"""Observability: tracing every phase of the incremental pipeline.

Runs a two-week stream through the incremental clusterer with an
in-memory recorder attached, then prints what the instrumentation saw:
per-phase wall time, per-batch counters (documents observed/expired),
K-means iteration gauges, and repair-move counts. Finally writes the
same event stream as JSON Lines — the format ``repro cluster --trace``
produces.

Run:  python examples/pipeline_trace.py
"""

import json
import random
import tempfile

from repro import ForgettingModel, IncrementalClusterer, DocumentRepository
from repro.obs import InMemoryRecorder, JsonlRecorder, summarize

TOPICS = {
    "markets": "stocks market shares investors trading rally selloff "
               "earnings forecast exchange",
    "storm": "hurricane storm landfall evacuation winds flooding coast "
             "forecasters shelters damage",
    "election": "election campaign candidate ballot polls debate "
                "turnout primary voters runoff",
}


def build_feed(days=14, seed=7):
    rng = random.Random(seed)
    repo = DocumentRepository()
    serial = 0
    for day in range(days):
        for topic, vocabulary in TOPICS.items():
            # the storm story breaks in the second week
            if topic == "storm" and day < 7:
                continue
            for _ in range(4):
                words = rng.choices(vocabulary.split(), k=40)
                words += rng.choices("city region report today".split(), k=6)
                repo.add_text(
                    doc_id=f"story{serial:04d}",
                    timestamp=day + rng.random(),
                    text=" ".join(words),
                    topic_id=topic,
                )
                serial += 1
    return repo


def run(repo, recorder):
    model = ForgettingModel(half_life=3.0, life_span=9.0)
    clusterer = IncrementalClusterer(model, k=3, seed=0, recorder=recorder)
    for day in range(14):
        batch = repo.between(float(day), float(day + 1))
        if batch:
            clusterer.process_batch(batch, at_time=float(day + 1))
    return clusterer


def main():
    repo = build_feed()

    # 1. collect events in memory and aggregate them
    recorder = InMemoryRecorder()
    clusterer = run(repo, recorder)
    summary = summarize(recorder.events)

    print(f"{len(recorder.events)} events over "
          f"{len(clusterer.history)} batches\n")

    print("counters:")
    for name, total in sorted(summary["counters"].items()):
        print(f"  {name:32s} {total:10.0f}")

    print("\nphase wall time (seconds, whole run):")
    for name, stats in sorted(summary["spans"].items()):
        print(f"  {name:32s} total {stats['total']:8.4f}  "
              f"x{stats['count']:<4.0f} mean {stats['mean']:.5f}")

    print("\nlatest gauges:")
    for name, stats in sorted(summary["gauges"].items()):
        print(f"  {name:32s} {stats['last']:10.3f}")

    # 2. the same events as a JSONL trace file (what --trace writes)
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tmp:
        path = tmp.name
    with JsonlRecorder(path) as sink:
        run(build_feed(), sink)
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    print(f"\nJSONL trace: {len(lines)} lines at {path}; first two:")
    for line in lines[:2]:
        print(" ", json.dumps(json.loads(line), sort_keys=True))


if __name__ == "__main__":
    main()
