#!/usr/bin/env python
"""Compare the paper's method against the related-work baselines.

Runs the novelty K-means and four baselines (classic K-means, INCR,
GAC, F²ICM) over the same window of the synthetic TDT2 stream and
reports the paper's evaluation measures plus a recency-weighted F1
(documents weighted by their forgetting weight), which is the measure
the novelty method actually optimises for.

Run:  python examples/baseline_comparison.py
"""

import argparse

from repro import (
    CorpusStatistics,
    ForgettingModel,
    NoveltyKMeans,
    SyntheticCorpusConfig,
    TDT2Generator,
    evaluate_clustering,
    split_into_windows,
)
from repro.baselines import (
    ClassicKMeans,
    F2ICMClusterer,
    GACClusterer,
    INCRClusterer,
)
from repro.experiments import render_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=4)
    parser.add_argument("--k", type=int, default=24)
    args = parser.parse_args()

    print("generating the synthetic TDT2 corpus ...")
    config = SyntheticCorpusConfig(seed=1998)
    repository = TDT2Generator(config).generate()
    windows = split_into_windows(
        repository.documents(), config.window_days, end=config.total_days
    )
    window = windows[args.window - 1]
    docs = window.documents
    truth = {d.doc_id: d.topic_id for d in docs}
    print(f"window {args.window}: {len(docs)} documents, "
          f"{len(window.topic_ids())} topics; K/target = {args.k}\n")

    model = ForgettingModel(half_life=7.0, life_span=30.0)
    stats = CorpusStatistics.from_scratch(model, docs, at_time=window.end)

    runs = {}
    print("running novelty K-means (the paper's method) ...")
    runs["novelty K-means (paper)"] = NoveltyKMeans(
        k=args.k, seed=3
    ).fit(stats.documents(), stats)
    print("running classic K-means ...")
    runs["classic K-means"] = ClassicKMeans(k=args.k, seed=3).fit(docs)
    print("running INCR ...")
    runs["INCR (Yang et al.)"] = INCRClusterer(
        threshold=0.25, window_size=600
    ).fit(docs)
    print("running GAC ...")
    runs["GAC (Yang et al.)"] = GACClusterer(
        target_clusters=args.k, bucket_size=120
    ).fit(docs)
    print("running F2ICM ...")
    runs["F2ICM (predecessor)"] = F2ICMClusterer(k=args.k).fit(
        stats.documents(), stats
    )

    rows = []
    for name, result in runs.items():
        evaluation = evaluate_clustering(result.clusters, truth)
        seconds = result.timings.get("clustering", 0.0)
        rows.append([
            name,
            sum(1 for c in result.clusters if c),
            evaluation.n_marked,
            f"{evaluation.micro_f1:.2f}",
            f"{evaluation.macro_f1:.2f}",
            f"{seconds:.2f}s",
        ])
    print()
    print(render_table(
        ["method", "clusters", "marked", "micro F1", "macro F1", "time"],
        rows,
    ))
    print("\nINCR/GAC may use many more clusters than K — their cluster "
          "count is data-driven,\nwhich flatters their F1; the paper's "
          "method answers a different question (recent topics\nunder a "
          "fixed-K budget).")


if __name__ == "__main__":
    main()
