#!/usr/bin/env python
"""Half-life comparison: "what are recent topics?" (paper Experiment 2).

Clusters one time window of the synthetic TDT2 stream twice — with a
7-day and a 30-day half-life — and contrasts what each detects, echoing
the paper's Section 6.2.3 narrative: the short half-life surfaces topics
that are *hot right now* (even tiny ones like "Denmark Strike", 15
docs), while the long one behaves like conventional clustering and
favours the big long-running stories.

Run:  python examples/hot_topic_detection.py              (window 4)
      python examples/hot_topic_detection.py --window 1
"""

import argparse

from repro import (
    SyntheticCorpusConfig,
    TDT2Generator,
    split_into_windows,
)
from repro.experiments import render_histogram, topic_histogram
from repro.experiments.experiment2 import run_window


def detections(window, beta):
    result, evaluation = run_window(
        window.documents, at_time=window.end, beta=beta
    )
    return result, evaluation


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=4,
                        help="window number 1-6 (paper numbering)")
    args = parser.parse_args()

    print("generating the synthetic TDT2 corpus ...")
    config = SyntheticCorpusConfig(seed=1998)
    generator = TDT2Generator(config)
    repository = generator.generate()
    topic_names = {t.topic_id: t.name for t in generator.topics}
    windows = split_into_windows(
        repository.documents(), config.window_days, end=config.total_days
    )
    window = windows[args.window - 1]
    print(f"window {args.window}: days {window.start:.0f}-{window.end:.0f}, "
          f"{len(window)} documents, {len(window.topic_ids())} topics\n")

    results = {}
    for beta in (7.0, 30.0):
        print(f"clustering with half-life β={beta:.0f} days ...")
        results[beta] = detections(window, beta)

    topics_short = set(results[7.0][1].marked_topics)
    topics_long = set(results[30.0][1].marked_topics)

    def names(topic_ids):
        return sorted(
            topic_names.get(t, t) for t in topic_ids
        )

    print("\ndetected by BOTH half-lives:")
    for name in names(topics_short & topics_long):
        print(f"  {name}")
    print("\nonly β=7 (hot *recent* topics the long half-life misses):")
    for name in names(topics_short - topics_long):
        print(f"  {name}")
    print("\nonly β=30 (older/larger stories the short half-life forgot):")
    for name in names(topics_long - topics_short):
        print(f"  {name}")

    fresh_only = topics_short - topics_long
    if fresh_only:
        probe = sorted(fresh_only)[0]
        print(f"\nwhy β=7 saw {topic_names.get(probe, probe)!r} — its "
              f"arrival histogram\n(documents cluster late in the window, "
              f"so they carry full weight):\n")
        counts = topic_histogram(
            repository.documents(), probe, bin_days=7.0,
            total_days=config.total_days,
        )
        print(render_histogram(counts))

    for beta in (7.0, 30.0):
        evaluation = results[beta][1]
        print(f"\nβ={beta:<4.0f} micro F1 {evaluation.micro_f1:.2f}, "
              f"macro F1 {evaluation.macro_f1:.2f}, "
              f"{evaluation.n_marked} marked clusters "
              f"(paper: quality favours β=30; recency favours β=7)")


if __name__ == "__main__":
    main()
