#!/usr/bin/env python
"""Plugging your own corpus in: ingest -> dedup -> cluster -> checkpoint.

Everything the other examples do on the synthetic TDT2 stream works on
any timestamped text: this script writes a small JSONL corpus (stand-in
for your export), re-loads it, strips wire-service near-duplicates with
the MinHash index, clusters incrementally, summarises each cluster with
its medoid story, and checkpoints the state for the next run.

Run:  python examples/custom_corpus.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    DocumentRepository,
    ForgettingModel,
    IncrementalClusterer,
    Vocabulary,
    deduplicate,
    load_jsonl,
    replay,
    save_checkpoint,
    save_jsonl,
)
from repro.core import label_clustering, medoid_document

STORIES = {
    "ferry": "ferry capsized rescue harbor passengers lifeboats crew "
             "coastguard survivors storm",
    "budget": "budget parliament deficit spending taxes austerity "
              "finance minister vote coalition",
    "comet": "comet telescope astronomers tail observation brightness "
             "orbit perihelion sky viewing",
}


DETAIL_WORDS = [
    f"{prefix}{suffix}"
    for prefix in ("north", "south", "east", "west", "central",
                   "upper", "lower", "grand")
    for suffix in ("bridge", "valley", "square", "station", "quarter",
                   "island", "district", "avenue", "harbor", "ridge")
]


def write_demo_corpus(path: Path) -> None:
    """Simulate an export: 3 stories over 6 days, with wire duplicates.

    Each day's article mixes the story's core vocabulary with
    day-specific details, so only the second wire's redistributed copy
    is a true near-duplicate.
    """
    rng = random.Random(42)
    repo = DocumentRepository()
    serial = 0
    for day in range(6):
        for story, vocabulary in STORIES.items():
            words = rng.choices(vocabulary.split(), k=32)
            words += rng.sample(DETAIL_WORDS, 8)
            words += rng.choices("city night report official".split(), k=4)
            rng.shuffle(words)
            text = " ".join(words)
            repo.add_text(f"s{serial:03d}", day + 0.25, text,
                          topic_id=story, source="WIRE-A")
            serial += 1
            # a second wire redistributes the same story lightly edited
            if rng.random() < 0.5:
                edited = text + " update update"
                repo.add_text(f"s{serial:03d}", day + 0.5, edited,
                              topic_id=story, source="WIRE-B")
                serial += 1
    save_jsonl(repo.documents(), repo.vocabulary, path)
    print(f"wrote {repo.size} documents (with wire duplicates) to {path}")


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro_demo_"))
    corpus_path = workdir / "corpus.jsonl"
    checkpoint_path = workdir / "clusterer.json"

    write_demo_corpus(corpus_path)

    # 1. load into a fresh vocabulary
    vocabulary = Vocabulary()
    documents = load_jsonl(corpus_path, vocabulary)

    # 2. near-duplicate removal (Jaccard >= 0.8, first copy wins)
    kept, removed = deduplicate(documents, threshold=0.8)
    print(f"dedup: kept {len(kept)}, removed {len(removed)} near-copies")
    for copy_id, original_id in sorted(removed.items())[:3]:
        print(f"   {copy_id} duplicates {original_id}")

    # 3. incremental clustering, one batch per day
    model = ForgettingModel(half_life=3.0, life_span=10.0)
    clusterer = IncrementalClusterer(model, k=3, seed=0)
    results = replay(clusterer, kept, batch_days=1.0)
    result = results[-1]
    print(f"\nclustered: {result.summary()}")

    # 4. label each cluster and show its medoid story
    active = clusterer.statistics.documents()
    by_id = {d.doc_id: d for d in active}
    labels = label_clustering(result, active, vocabulary,
                              statistics=clusterer.statistics)
    for label in sorted(labels, key=lambda l: -l.size):
        members = [
            by_id[m] for m in result.clusters[label.cluster_id]
            if m in by_id
        ]
        medoid = medoid_document(members, clusterer.statistics)
        print(f"  [{label.size:2d} docs] {label}"
              f"   (medoid: {medoid.doc_id}, topic {medoid.topic_id})")

    # 5. persist for the next run
    save_checkpoint(clusterer, vocabulary, checkpoint_path)
    print(f"\ncheckpoint saved to {checkpoint_path}")
    print("next run: load_checkpoint(path) and keep feeding batches")


if __name__ == "__main__":
    main()
