#!/usr/bin/env python
"""Topic threads: following stories across clustering snapshots.

The paper produces an independent clustering per window; this example
adds the natural next step — linking clusters of consecutive snapshots
into *threads* by representative similarity (`repro.TopicTracker`), so
each story has a birth date, a lifetime, and a week-by-week size curve.

Run:  python examples/topic_tracking.py            (~1 minute)
      python examples/topic_tracking.py --weeks 16
"""

import argparse
from collections import Counter

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    SyntheticCorpusConfig,
    TDT2Generator,
    TopicTracker,
)


def dominant_topic(repository, doc_ids):
    counts = Counter(
        repository.get(doc_id).topic_id for doc_id in doc_ids
        if doc_id in repository
    )
    if not counts:
        return None
    return counts.most_common(1)[0][0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--weeks", type=int, default=12)
    parser.add_argument("--k", type=int, default=12)
    args = parser.parse_args()

    print("generating the synthetic TDT2 news stream ...")
    generator = TDT2Generator(SyntheticCorpusConfig(seed=1998))
    repository = generator.generate()
    topic_names = {t.topic_id: t.name for t in generator.topics}

    model = ForgettingModel(half_life=7.0, life_span=21.0)
    clusterer = IncrementalClusterer(model, k=args.k, seed=0)
    tracker = TopicTracker(threshold=0.25, patience=1)

    thread_members = {}  # thread id -> latest member ids
    for week in range(1, args.weeks + 1):
        start, end = (week - 1) * 7.0, week * 7.0
        batch = repository.between(start, end)
        if not batch:
            clusterer.statistics.advance_to(end)
            continue
        result = clusterer.process_batch(batch, at_time=end)
        snapshot = tracker.update(
            result, clusterer.statistics.documents(),
            clusterer.statistics, at_time=end,
        )
        for cluster_id, thread_id in snapshot.cluster_to_thread.items():
            thread_members[thread_id] = result.clusters[cluster_id]
        events = []
        if snapshot.born:
            events.append(f"born: {list(snapshot.born)}")
        if snapshot.retired:
            events.append(f"retired: {list(snapshot.retired)}")
        print(f"week {week:2d}: {len(snapshot.continued)} threads "
              f"continue; {' '.join(events) if events else 'no changes'}")

    print("\nthread summary (longest-lived first):")
    threads = sorted(
        tracker.threads.values(), key=lambda t: -len(t)
    )
    for thread in threads[:12]:
        members = thread_members.get(thread.thread_id, ())
        topic = dominant_topic(repository, members)
        name = topic_names.get(topic, topic or "?")
        sizes = "→".join(str(e.size) for e in thread.events[-6:])
        status = "retired" if thread.retired else "active"
        print(f"  thread {thread.thread_id:3d} [{status:7s}] "
              f"weeks {thread.born_at / 7:.0f}-{thread.last_seen / 7:.0f} "
              f"({len(thread)} snapshots)  sizes {sizes:24s} {name}")


if __name__ == "__main__":
    main()
