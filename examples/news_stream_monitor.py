#!/usr/bin/env python
"""On-line news monitor over the synthetic TDT2 stream.

Simulates the paper's deployment scenario: news arrives continuously,
and at the end of every week the incremental clusterer answers the
question the paper opens with — *"what are recent topics?"* — by
printing the current marked clusters with their dominant (ground-truth)
topics and top terms.

Uses the paper's on-line parameters (β=7 days, γ=14 days) so topics
visibly enter and leave the report as their news coverage waxes and
wanes.

Run:  python examples/news_stream_monitor.py          (~1 minute)
      python examples/news_stream_monitor.py --weeks 8
"""

import argparse
from collections import Counter

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    SyntheticCorpusConfig,
    TDT2Generator,
    evaluate_clustering,
    rank_hot_clusters,
)


_GLOBAL_COUNTS = Counter()


def top_terms(repository, doc_ids, limit=4):
    """Terms most characteristic of the cluster: frequency in the
    cluster divided by corpus frequency (background words wash out)."""
    if not _GLOBAL_COUNTS:
        for doc in repository:
            _GLOBAL_COUNTS.update(doc.term_counts)
    totals = Counter()
    for doc_id in doc_ids:
        totals.update(repository.get(doc_id).term_counts)
    ranked = sorted(
        totals,
        key=lambda t: totals[t] ** 2 / (1.0 + _GLOBAL_COUNTS[t]),
        reverse=True,
    )
    return [repository.vocabulary.term(t) for t in ranked[:limit]]


def weekly_report(week, repository, clusterer, result, topic_names):
    truth = {
        doc_id: repository.get(doc_id).topic_id
        for doc_id in clusterer.statistics.doc_ids()
    }
    evaluation = evaluate_clustering(result.clusters, truth)
    print(f"\n=== week {week}: {clusterer.statistics.size} active docs, "
          f"{evaluation.n_marked} marked clusters, "
          f"{len(result.outliers)} outliers ===")
    shown = 0
    for cluster in sorted(evaluation.marked, key=lambda c: -c.size):
        members = result.clusters[cluster.cluster_id]
        name = topic_names.get(cluster.topic_id, cluster.topic_id)
        terms = ", ".join(top_terms(repository, members))
        print(f"  [{cluster.size:4d} docs] {name:40s} "
              f"p={cluster.precision:.2f}  terms: {terms}")
        shown += 1
        if shown >= 8:
            remaining = evaluation.n_marked - shown
            if remaining:
                print(f"  ... and {remaining} more marked clusters")
            break

    trends = rank_hot_clusters(result, clusterer.statistics)
    if trends:
        print("  hottest right now (novelty × log size):")
        for trend in trends[:3]:
            members = result.clusters[trend.cluster_id]
            name = "?"
            for cluster in evaluation.marked:
                if cluster.cluster_id == trend.cluster_id:
                    name = topic_names.get(cluster.topic_id,
                                           cluster.topic_id)
            print(f"    novelty={trend.novelty:.2f} "
                  f"momentum={trend.momentum:.2f} "
                  f"size={trend.size:<4d} {name}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--weeks", type=int, default=12,
                        help="number of weeks of stream to process")
    parser.add_argument("--k", type=int, default=16)
    args = parser.parse_args()

    print("generating the synthetic TDT2 news stream ...")
    generator = TDT2Generator(SyntheticCorpusConfig(seed=1998))
    repository = generator.generate()
    topic_names = {t.topic_id: t.name for t in generator.topics}

    model = ForgettingModel(half_life=7.0, life_span=14.0)
    clusterer = IncrementalClusterer(model, k=args.k, seed=0)

    for week in range(1, args.weeks + 1):
        start, end = (week - 1) * 7.0, week * 7.0
        batch = repository.between(start, end)
        if not batch:
            clusterer.statistics.advance_to(end)
            continue
        result = clusterer.process_batch(batch, at_time=end)
        weekly_report(week, repository, clusterer, result, topic_names)

    print("\ndone — note how early bursts (Pope visits Cuba, Superbowl) "
          "leave the report\nas their coverage ends, while sustained "
          "stories (Iraq, Lewinsky) persist.")


if __name__ == "__main__":
    main()
