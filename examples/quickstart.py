#!/usr/bin/env python
"""Quickstart: novelty-based incremental clustering on a toy news feed.

Builds a two-week stream of three drifting topics, feeds it day by day
to the incremental clusterer, and prints the evolving cluster map —
everything the library needs from you is raw text plus timestamps.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    DocumentRepository,
    ForgettingModel,
    IncrementalClusterer,
    evaluate_clustering,
)

TOPICS = {
    "markets": "stocks market shares investors trading rally selloff "
               "earnings forecast exchange",
    "eclipse": "eclipse solar astronomers telescope viewers shadow "
               "moon corona observation sky",
    "election": "election campaign candidate ballot polls debate "
                "turnout primary voters runoff",
}


def build_feed(days=14, seed=11):
    """A DocumentRepository holding the whole simulated feed."""
    rng = random.Random(seed)
    repo = DocumentRepository()
    serial = 0
    for day in range(days):
        for topic, vocabulary in TOPICS.items():
            # the eclipse story only runs in the second week
            if topic == "eclipse" and day < 7:
                continue
            for _ in range(3):
                words = rng.choices(vocabulary.split(), k=40)
                words += rng.choices("city region report today".split(), k=6)
                repo.add_text(
                    doc_id=f"story{serial:04d}",
                    timestamp=day + rng.random(),
                    text=" ".join(words),
                    topic_id=topic,
                )
                serial += 1
    return repo


def top_terms(repository, doc_ids, limit=5):
    """Most frequent stemmed terms across a set of documents."""
    totals = {}
    for doc_id in doc_ids:
        for term_id, count in repository.get(doc_id).term_counts.items():
            totals[term_id] = totals.get(term_id, 0) + count
    ranked = sorted(totals, key=lambda t: totals[t], reverse=True)
    return [repository.vocabulary.term(t) for t in ranked[:limit]]


def main():
    repo = build_feed()

    # β: a story loses half its weight in 3 days; γ: drop it after 9.
    model = ForgettingModel(half_life=3.0, life_span=9.0)
    clusterer = IncrementalClusterer(model, k=3, seed=0)

    result = None
    for day in range(14):
        batch = repo.between(float(day), float(day + 1))
        if not batch:
            continue
        result = clusterer.process_batch(batch, at_time=float(day + 1))
        print(f"day {day + 1:2d}: {result.summary()}")

    print("\nfinal clusters:")
    for cluster_id, members in result.non_empty_clusters():
        terms = ", ".join(top_terms(repo, members))
        print(f"  cluster {cluster_id}: {len(members)} docs — {terms}")

    truth = {d.doc_id: d.topic_id for d in repo
             if d.doc_id in clusterer.statistics}
    evaluation = evaluate_clustering(result.clusters, truth)
    print(f"\nagainst ground truth: micro F1 {evaluation.micro_f1:.2f}, "
          f"topics detected: {evaluation.marked_topics}")


if __name__ == "__main__":
    main()
