"""Tests for the classic spherical K-means baseline."""

import pytest

from repro.baselines import ClassicKMeans
from repro.exceptions import ClusteringError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture(scope="module")
def stream():
    return build_topic_repository(days=5, docs_per_topic_per_day=3, seed=2)


class TestClassicKMeans:
    def test_partitions_all_non_empty_docs(self, stream):
        result = ClassicKMeans(k=4, seed=0).fit(stream.documents())
        clustered = {d for members in result.clusters for d in members}
        assert clustered == set(stream.doc_ids())
        assert result.outliers == ()

    def test_separates_topics(self, stream):
        result = ClassicKMeans(k=4, seed=1).fit(stream.documents())
        truth = {d.doc_id: d.topic_id for d in stream}
        pure = sum(
            1 for members in result.clusters
            if members and len({truth[m] for m in members}) == 1
        )
        assert pure >= 3  # at most one mixed cluster on easy data

    def test_deterministic_given_seed(self, stream):
        docs = stream.documents()
        first = ClassicKMeans(k=3, seed=7).fit(docs)
        second = ClassicKMeans(k=3, seed=7).fit(docs)
        assert first.assignments() == second.assignments()

    def test_objective_non_decreasing(self, stream):
        result = ClassicKMeans(k=4, seed=3).fit(stream.documents())
        history = result.index_history
        for earlier, later in zip(history, history[1:]):
            assert later >= earlier - 1e-9

    def test_fewer_docs_than_k_rejected(self):
        docs = [make_document("a", 0.0, {0: 1})]
        with pytest.raises(ClusteringError):
            ClassicKMeans(k=3).fit(docs)

    def test_empty_documents_become_outliers(self, stream):
        docs = stream.documents() + [make_document("void", 1.0, {})]
        result = ClassicKMeans(k=3, seed=0).fit(docs)
        assert "void" in result.outliers

    def test_no_time_bias(self):
        """Classic K-means must treat identical old and new docs alike —
        the contrast with the novelty method."""
        docs = []
        for i in range(6):
            docs.append(make_document(
                f"old{i}", 0.0, {0: 3, 1: 1}, topic_id="t1"
            ))
            docs.append(make_document(
                f"new{i}", 50.0, {5: 3, 6: 1}, topic_id="t2"
            ))
        result = ClassicKMeans(k=2, seed=0).fit(docs)
        sizes = sorted(len(c) for c in result.clusters)
        assert sizes == [6, 6]
