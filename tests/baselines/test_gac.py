"""Tests for the GAC bucketed group-average baseline."""

import pytest

from repro.baselines import GACClusterer
from repro.exceptions import ClusteringError, ConfigurationError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture(scope="module")
def stream():
    return build_topic_repository(days=4, docs_per_topic_per_day=2, seed=9)


class TestGAC:
    def test_reaches_target_cluster_count(self, stream):
        result = GACClusterer(target_clusters=4).fit(stream.documents())
        assert len(result.non_empty_clusters()) <= 8  # near target
        assert result.converged or result.iterations > 0

    def test_partition_is_lossless(self, stream):
        result = GACClusterer(target_clusters=4).fit(stream.documents())
        clustered = [d for members in result.clusters for d in members]
        assert sorted(clustered) == sorted(stream.doc_ids())
        assert len(clustered) == len(set(clustered))

    def test_topic_coherence(self, stream):
        result = GACClusterer(target_clusters=4).fit(stream.documents())
        truth = {d.doc_id: d.topic_id for d in stream}
        mixed = sum(
            1 for members in result.clusters
            if len({truth[m] for m in members}) > 1
        )
        assert mixed <= 1

    def test_buckets_respect_chronology(self):
        """With bucket_size 2 and no reduction beyond buckets, merges
        happen between temporally adjacent documents first (GAC's
        temporal-proximity priority)."""
        docs = [
            make_document("t0a", 0.0, {0: 3}, topic_id="x"),
            make_document("t0b", 0.1, {0: 3}, topic_id="x"),
            make_document("t9a", 9.0, {0: 3}, topic_id="x"),
            make_document("t9b", 9.1, {0: 3}, topic_id="x"),
        ]
        result = GACClusterer(
            target_clusters=2, bucket_size=2, reduction_factor=0.5,
            recluster_period=None,
        ).fit(docs)
        clusters = {frozenset(m) for m in result.clusters}
        assert frozenset({"t0a", "t0b"}) in clusters
        assert frozenset({"t9a", "t9b"}) in clusters

    def test_recluster_period_validated(self):
        with pytest.raises(ConfigurationError):
            GACClusterer(target_clusters=2, recluster_period=0)

    def test_reduction_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            GACClusterer(target_clusters=2, reduction_factor=1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ClusteringError):
            GACClusterer(target_clusters=2).fit([])

    def test_single_document(self):
        docs = [make_document("only", 0.0, {0: 1})]
        result = GACClusterer(target_clusters=1).fit(docs)
        assert result.clusters == (("only",),)

    def test_group_average_identity(self):
        """clustering_index equals Σ|C|·avg-pairwise-cosine, sanity-
        checked on two identical documents (cosine 1.0)."""
        docs = [
            make_document("a", 0.0, {0: 2, 1: 1}),
            make_document("b", 0.1, {0: 2, 1: 1}),
        ]
        result = GACClusterer(target_clusters=1).fit(docs)
        assert result.clustering_index == pytest.approx(2.0, abs=1e-9)
