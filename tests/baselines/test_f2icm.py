"""Tests for the F²ICM predecessor baseline."""

import pytest

from repro import CorpusStatistics, ForgettingModel
from repro.baselines import F2ICMClusterer
from repro.exceptions import ClusteringError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture(scope="module")
def fitted():
    repo = build_topic_repository(days=5, docs_per_topic_per_day=3, seed=1)
    model = ForgettingModel(half_life=7.0, life_span=30.0)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=5.0
    )
    result = F2ICMClusterer(k=4).fit(stats.documents(), stats)
    return repo, stats, result


class TestF2ICM:
    def test_k_clusters_each_seeded(self, fitted):
        _, _, result = fitted
        assert result.k == 4
        assert all(len(members) >= 1 for members in result.clusters)

    def test_single_pass(self, fitted):
        _, _, result = fitted
        assert result.iterations == 1
        assert result.converged

    def test_coverage(self, fitted):
        repo, _, result = fitted
        clustered = {d for members in result.clusters for d in members}
        assert clustered | set(result.outliers) == set(repo.doc_ids())

    def test_seeds_are_diverse_on_separable_topics(self, fitted):
        """With 4 well-separated topics and diversity screening, the 4
        seeds should span at least 3 topics."""
        repo, _, result = fitted
        truth = {d.doc_id: d.topic_id for d in repo}
        seed_topics = {truth[members[0]] for members in result.clusters}
        assert len(seed_topics) >= 3

    def test_recent_documents_preferred_as_seeds(self):
        """Seed power is dw-weighted: identical content, different age —
        the newer document must win the seed slot."""
        model = ForgettingModel(half_life=2.0)
        stats = CorpusStatistics(model)
        old = make_document("old", 0.0, {0: 2, 1: 1})
        new = make_document("new", 10.0, {0: 2, 1: 1})
        stats.observe([old], at_time=0.0)
        stats.observe([new], at_time=10.0)
        result = F2ICMClusterer(k=1).fit(stats.documents(), stats)
        assert result.clusters[0][0] == "new"

    def test_fewer_docs_than_k_rejected(self, fitted):
        _, stats, _ = fitted
        with pytest.raises(ClusteringError):
            F2ICMClusterer(k=99).fit(stats.documents()[:3], stats)

    def test_empty_doc_never_seed(self):
        model = ForgettingModel(half_life=2.0)
        stats = CorpusStatistics(model)
        docs = [
            make_document("real", 0.0, {0: 3}),
            make_document("void", 0.0, {}),
        ]
        stats.observe(docs, at_time=0.0)
        result = F2ICMClusterer(k=1).fit(docs, stats)
        assert result.clusters[0][0] == "real"
        assert "void" in result.outliers
