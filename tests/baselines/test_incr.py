"""Tests for the INCR single-pass baseline."""

import pytest

from repro.baselines import INCRClusterer
from repro.exceptions import ClusteringError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture(scope="module")
def stream():
    return build_topic_repository(days=5, docs_per_topic_per_day=2, seed=6)


class TestINCR:
    def test_single_pass_covers_everything(self, stream):
        result = INCRClusterer(threshold=0.3).fit(stream.documents())
        clustered = {d for members in result.clusters for d in members}
        assert clustered == set(stream.doc_ids())

    def test_first_document_seeds_first_cluster(self, stream):
        result = INCRClusterer(threshold=0.3).fit(stream.documents())
        earliest = min(stream, key=lambda d: (d.timestamp, d.doc_id))
        assert result.clusters[0][0] == earliest.doc_id

    def test_high_threshold_many_clusters(self, stream):
        low = INCRClusterer(threshold=0.1).fit(stream.documents())
        high = INCRClusterer(threshold=0.95).fit(stream.documents())
        assert len(high.non_empty_clusters()) >= len(
            low.non_empty_clusters()
        )

    def test_topic_coherence_at_moderate_threshold(self, stream):
        result = INCRClusterer(threshold=0.3).fit(stream.documents())
        truth = {d.doc_id: d.topic_id for d in stream}
        for members in result.clusters:
            topics = {truth[m] for m in members}
            assert len(topics) == 1

    def test_time_window_blocks_stale_clusters(self):
        """A cluster beyond the document window cannot absorb new docs
        even with identical content."""
        docs = [
            make_document(f"early{i}", float(i), {0: 5}, topic_id="t")
            for i in range(3)
        ]
        docs += [
            make_document(f"mid{i}", 10.0 + i, {9: 5}, topic_id="u")
            for i in range(4)
        ]
        docs.append(make_document("late", 20.0, {0: 5}, topic_id="t"))
        result = INCRClusterer(threshold=0.3, window_size=4).fit(docs)
        late_cluster = next(
            members for members in result.clusters if "late" in members
        )
        assert late_cluster == ("late",)  # forced to seed a new cluster

    def test_empty_input_rejected(self):
        with pytest.raises(ClusteringError):
            INCRClusterer().fit([])

    def test_empty_documents_are_outliers(self, stream):
        docs = stream.documents() + [make_document("void", 0.0, {})]
        result = INCRClusterer(threshold=0.3).fit(docs)
        assert "void" in result.outliers
