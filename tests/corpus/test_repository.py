"""Unit tests for repro.corpus.DocumentRepository."""

import pytest

from repro import DocumentRepository
from repro.exceptions import DuplicateDocumentError, UnknownDocumentError
from tests.conftest import make_document


class TestIngestion:
    def test_add_text_processes_through_pipeline(self):
        repo = DocumentRepository()
        doc = repo.add_text("d1", 0.0, "Asian markets fell; markets crashed.")
        assert doc.term_counts[repo.vocabulary.id("market")] == 2
        assert repo.size == 1

    def test_add_text_grows_shared_vocabulary(self):
        repo = DocumentRepository()
        repo.add_text("d1", 0.0, "alpha beta")
        repo.add_text("d2", 1.0, "beta gamma")
        assert len(repo.vocabulary) == 3

    def test_same_term_same_id_across_documents(self):
        repo = DocumentRepository()
        d1 = repo.add_text("d1", 0.0, "shared term")
        d2 = repo.add_text("d2", 1.0, "shared word")
        shared_id = repo.vocabulary.id("share")
        assert shared_id in d1.term_counts
        assert shared_id in d2.term_counts

    def test_add_prebuilt_document(self):
        repo = DocumentRepository()
        doc = make_document("d1", 0.0, {0: 1})
        assert repo.add(doc) is doc
        assert repo.get("d1") is doc

    def test_add_all(self):
        repo = DocumentRepository()
        docs = [make_document(f"d{i}", float(i), {0: 1}) for i in range(3)]
        assert repo.add_all(docs) == docs
        assert repo.size == 3

    def test_duplicate_id_rejected(self):
        repo = DocumentRepository()
        repo.add_text("d1", 0.0, "text")
        with pytest.raises(DuplicateDocumentError):
            repo.add_text("d1", 1.0, "other")

    def test_metadata_stored(self):
        repo = DocumentRepository()
        doc = repo.add_text("d1", 0.0, "body", topic_id="t1",
                            source="CNN", title="headline")
        assert (doc.topic_id, doc.source, doc.title) == (
            "t1", "CNN", "headline",
        )


class TestAccess:
    def test_get_unknown_raises(self):
        with pytest.raises(UnknownDocumentError):
            DocumentRepository().get("missing")

    def test_contains(self):
        repo = DocumentRepository()
        repo.add_text("d1", 0.0, "text")
        assert "d1" in repo
        assert "d2" not in repo

    def test_iteration_in_arrival_order(self):
        repo = DocumentRepository()
        for i in (3, 1, 2):
            repo.add_text(f"d{i}", float(i), "text here")
        assert [d.doc_id for d in repo] == ["d3", "d1", "d2"]

    def test_doc_ids(self):
        repo = DocumentRepository()
        repo.add_text("a", 0.0, "x y")
        repo.add_text("b", 1.0, "x y")
        assert repo.doc_ids() == ["a", "b"]

    def test_between_half_open(self):
        repo = DocumentRepository()
        for i in range(5):
            repo.add(make_document(f"d{i}", float(i), {0: 1}))
        selected = repo.between(1.0, 3.0)
        assert [d.doc_id for d in selected] == ["d1", "d2"]

    def test_len(self):
        repo = DocumentRepository()
        assert len(repo) == 0
        repo.add_text("d1", 0.0, "text")
        assert len(repo) == 1


class TestRemoval:
    def test_remove_returns_document(self):
        repo = DocumentRepository()
        doc = repo.add_text("d1", 0.0, "text")
        assert repo.remove("d1") is doc
        assert "d1" not in repo

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownDocumentError):
            DocumentRepository().remove("missing")

    def test_remove_all(self):
        repo = DocumentRepository()
        repo.add_text("a", 0.0, "x y")
        repo.add_text("b", 1.0, "x y")
        removed = repo.remove_all(["a", "b"])
        assert [d.doc_id for d in removed] == ["a", "b"]
        assert repo.size == 0

    def test_removed_id_can_be_readded(self):
        # ids are not *reused* by the library, but re-adding after an
        # explicit removal is legal (e.g. corrections re-delivered)
        repo = DocumentRepository()
        repo.add_text("d1", 0.0, "text")
        repo.remove("d1")
        repo.add_text("d1", 5.0, "updated text")
        assert repo.get("d1").timestamp == 5.0
