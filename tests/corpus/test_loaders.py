"""Unit tests for JSONL save/load round-tripping."""

import json

import pytest

from repro import DocumentRepository, Vocabulary, load_jsonl, save_jsonl
from tests.conftest import build_topic_repository


class TestRoundTrip:
    def test_roundtrip_preserves_documents(self, tmp_path):
        repo = build_topic_repository(days=2)
        path = tmp_path / "corpus.jsonl"
        written = save_jsonl(repo.documents(), repo.vocabulary, path)
        assert written == repo.size

        vocab = Vocabulary()
        loaded = load_jsonl(path, vocab)
        assert len(loaded) == repo.size
        by_id = {d.doc_id: d for d in loaded}
        for original in repo:
            restored = by_id[original.doc_id]
            assert restored.timestamp == original.timestamp
            assert restored.topic_id == original.topic_id
            assert restored.length == original.length
            # term strings (not ids) must match across vocabularies
            original_terms = {
                repo.vocabulary.term(t): c
                for t, c in original.term_counts.items()
            }
            restored_terms = {
                vocab.term(t): c for t, c in restored.term_counts.items()
            }
            assert original_terms == restored_terms

    def test_loading_into_existing_vocabulary_reuses_ids(self, tmp_path):
        repo = DocumentRepository()
        repo.add_text("d1", 0.0, "alpha beta")
        path = tmp_path / "one.jsonl"
        save_jsonl(repo.documents(), repo.vocabulary, path)
        loaded = load_jsonl(path, repo.vocabulary)
        assert loaded[0].term_counts == repo.get("d1").term_counts

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_jsonl(path, Vocabulary()) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        record = {"doc_id": "d", "timestamp": 0.0, "terms": {"x": 1}}
        path.write_text("\n" + json.dumps(record) + "\n\n")
        assert len(load_jsonl(path, Vocabulary())) == 1


class TestErrors:
    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"doc_id": "d"\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_jsonl(path, Vocabulary())

    def test_missing_required_field(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        path.write_text(json.dumps({"doc_id": "d", "timestamp": 0.0}) + "\n")
        with pytest.raises(ValueError, match="missing field 'terms'"):
            load_jsonl(path, Vocabulary())

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_jsonl(tmp_path / "nope.jsonl", Vocabulary())
