"""Unit tests for repro.corpus.Document."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Document
from tests.conftest import make_document


class TestConstruction:
    def test_basic_fields(self):
        doc = Document("d1", 3.5, {0: 2, 1: 1}, topic_id="t", source="APW",
                       title="headline")
        assert doc.doc_id == "d1"
        assert doc.timestamp == 3.5
        assert doc.topic_id == "t"
        assert doc.source == "APW"
        assert doc.title == "headline"

    def test_length_is_token_total(self):
        assert make_document("d", 0.0, {0: 2, 1: 3}).length == 5

    def test_len_dunder(self):
        assert len(make_document("d", 0.0, {0: 2})) == 2

    def test_zero_counts_dropped(self):
        doc = make_document("d", 0.0, {0: 2, 1: 0})
        assert 1 not in doc.term_counts
        assert doc.length == 2

    def test_empty_document(self):
        doc = make_document("d", 0.0, {})
        assert doc.is_empty
        assert doc.length == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_document("d", 0.0, {0: -1})

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            make_document("", 0.0, {0: 1})

    def test_non_numeric_timestamp_rejected(self):
        with pytest.raises(TypeError):
            Document("d", "today", {0: 1})  # type: ignore[arg-type]

    def test_immutable(self):
        doc = make_document("d", 0.0, {0: 1})
        with pytest.raises(AttributeError):
            doc.doc_id = "other"  # type: ignore[misc]

    def test_term_counts_copied_from_input(self):
        source = {0: 1}
        doc = make_document("d", 0.0, source)
        source[0] = 99
        assert doc.term_counts[0] == 1


class TestTermProbability:
    def test_matches_share(self):
        doc = make_document("d", 0.0, {0: 1, 1: 3})
        assert math.isclose(doc.term_probability(1), 0.75)

    def test_missing_term_zero(self):
        assert make_document("d", 0.0, {0: 1}).term_probability(9) == 0.0

    def test_empty_document_zero(self):
        assert make_document("d", 0.0, {}).term_probability(0) == 0.0

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 20),
                           min_size=1, max_size=20))
    def test_probabilities_sum_to_one(self, counts):
        doc = make_document("d", 0.0, counts)
        total = sum(doc.term_probability(t) for t in counts)
        assert math.isclose(total, 1.0)
