"""Unit tests for the synthetic TDT2-like generator."""

import pytest

from repro import SyntheticCorpusConfig, TDT2Generator, split_into_windows
from repro.corpus.synthetic import (
    TABLE2_WINDOW_DOCS,
    TDT2_DOCUMENT_TOTAL,
    TDT2_TOPIC_CATALOG,
    TDT2_TOPIC_TOTAL,
)
from repro.exceptions import ConfigurationError


def small_config(seed=7, total=400):
    return SyntheticCorpusConfig(
        seed=seed,
        total_documents=total,
        n_topics=len(TDT2_TOPIC_CATALOG),
    )


class TestCatalog:
    def test_catalog_matches_paper_figures_topics(self):
        by_id = {tid: (count, name) for tid, count, name in TDT2_TOPIC_CATALOG}
        assert by_id["20001"] == (1034, "Asian Economic Crisis")
        assert by_id["20002"] == (923, "Monica Lewinsky Case")
        assert by_id["20074"] == (50, "Nigerian Protest Violence")
        assert by_id["20077"] == (117, "Unabomber")
        assert by_id["20078"] == (15, "Denmark Strike")

    def test_catalog_counts_below_corpus_total(self):
        assert sum(c for _, c, _ in TDT2_TOPIC_CATALOG) <= TDT2_DOCUMENT_TOTAL


class TestTopicConstruction:
    def test_full_config_builds_96_topics(self):
        generator = TDT2Generator(SyntheticCorpusConfig(seed=1))
        assert len(generator.topics) == TDT2_TOPIC_TOTAL

    def test_topic_counts_sum_to_total(self):
        generator = TDT2Generator(SyntheticCorpusConfig(seed=1))
        assert (
            sum(t.count for t in generator.topics) == TDT2_DOCUMENT_TOTAL
        )

    def test_scaled_down_corpus_rescales_counts(self):
        generator = TDT2Generator(small_config(total=400))
        assert sum(t.count for t in generator.topics) == 400
        assert all(t.count >= 1 for t in generator.topics)

    def test_window_weights_normalised(self):
        generator = TDT2Generator(small_config())
        for topic in generator.topics:
            assert abs(sum(topic.window_weights) - 1.0) < 1e-9

    def test_keywords_unique_across_topics(self):
        generator = TDT2Generator(small_config())
        seen = set()
        for topic in generator.topics:
            overlap = seen & set(topic.keywords)
            assert not overlap
            seen |= set(topic.keywords)

    def test_topic_by_id(self):
        generator = TDT2Generator(small_config())
        assert generator.topic_by_id("20001").name == "Asian Economic Crisis"
        with pytest.raises(KeyError):
            generator.topic_by_id("99999")

    def test_too_few_topics_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticCorpusConfig(n_topics=10)

    def test_target_smaller_than_catalogue_terminates(self):
        """Regression: totals below the topic count used to loop forever
        in the drift-fixing passes (every count pinned at the floor)."""
        config = SyntheticCorpusConfig(seed=5, total_documents=60)
        generator = TDT2Generator(config)
        assert sum(t.count for t in generator.topics) == 60
        repo = generator.generate()
        assert repo.size == 60

    def test_single_window_config(self):
        """Regression: the calibration spill used to index out of range
        when the stream has only one window."""
        config = SyntheticCorpusConfig(
            seed=1, n_windows=1, window_days=178.0,
            last_window_days=178.0, total_documents=200,
            n_topics=len(TDT2_TOPIC_CATALOG),
        )
        repo = TDT2Generator(config).generate()
        assert repo.size == 200

    def test_default_topics_with_small_total_terminates(self):
        """total_documents=300 with the full 96-topic default config."""
        config = SyntheticCorpusConfig(seed=5, total_documents=300)
        repo = TDT2Generator(config).generate()
        assert repo.size == 300


class TestGeneration:
    def test_document_count_and_ordering(self):
        generator = TDT2Generator(small_config())
        repo = generator.generate()
        assert repo.size == 400
        times = [d.timestamp for d in repo]
        assert times == sorted(times)

    def test_deterministic_across_instances(self):
        first = TDT2Generator(small_config(seed=11)).generate()
        second = TDT2Generator(small_config(seed=11)).generate()
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert [d.term_counts for d in first] == [
            d.term_counts for d in second
        ]

    def test_seed_changes_output(self):
        first = TDT2Generator(small_config(seed=11)).generate()
        second = TDT2Generator(small_config(seed=12)).generate()
        assert [d.term_counts for d in first] != [
            d.term_counts for d in second
        ]

    def test_all_docs_within_stream_span(self):
        config = small_config()
        repo = TDT2Generator(config).generate()
        for doc in repo:
            assert 0.0 <= doc.timestamp < config.total_days

    def test_labels_cover_topics(self):
        repo = TDT2Generator(small_config()).generate()
        labels = {d.topic_id for d in repo}
        assert None not in labels
        assert "20001" in labels

    def test_unlabeled_noise_documents(self):
        config = SyntheticCorpusConfig(
            seed=7,
            total_documents=200,
            n_topics=len(TDT2_TOPIC_CATALOG),
            unlabeled_per_day=1.0,
        )
        repo = TDT2Generator(config).generate()
        unlabeled = [d for d in repo if d.topic_id is None]
        assert len(unlabeled) == int(config.total_days)
        assert repo.size == 200 + len(unlabeled)

    def test_documents_have_plausible_lengths(self):
        config = small_config()
        repo = TDT2Generator(config).generate()
        for doc in list(repo)[:50]:
            assert doc.length > 10  # stemming/stopwords shrink it a bit

    def test_figure_topic_window_shapes(self):
        """20077 (Unabomber) must live in windows 1 and 4 only —
        the shape the paper's Figure 6 narrative depends on."""
        config = SyntheticCorpusConfig(seed=3)
        repo = TDT2Generator(config).generate()
        windows = split_into_windows(
            repo.documents(), config.window_days, end=config.total_days
        )
        counts = [
            sum(1 for d in w.documents if d.topic_id == "20077")
            for w in windows
        ]
        assert counts[0] > 50
        assert 5 <= counts[3] <= 20
        assert counts[1] == counts[2] == counts[4] == counts[5] == 0

    def test_window_doc_totals_track_table2(self):
        config = SyntheticCorpusConfig(seed=1998)
        repo = TDT2Generator(config).generate()
        windows = split_into_windows(
            repo.documents(), config.window_days, end=config.total_days
        )
        for window, paper in zip(windows, TABLE2_WINDOW_DOCS):
            measured = len(window)
            assert abs(measured - paper) / paper < 0.25, (
                f"window {window.index}: {measured} vs paper {paper}"
            )
