"""Tests for MinHash near-duplicate detection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NearDuplicateIndex, deduplicate
from repro.corpus.dedup import MinHasher, jaccard
from tests.conftest import make_document


def doc(doc_id, term_ids, t=0.0):
    return make_document(doc_id, t, {tid: 1 for tid in term_ids})


class TestJaccard:
    def test_identical(self):
        a = doc("a", range(10))
        assert jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert jaccard(doc("a", [0, 1]), doc("b", [2, 3])) == 0.0

    def test_partial(self):
        value = jaccard(doc("a", [0, 1, 2]), doc("b", [1, 2, 3]))
        assert value == pytest.approx(0.5)

    def test_counts_ignored(self):
        a = make_document("a", 0.0, {0: 10, 1: 1})
        b = make_document("b", 0.0, {0: 1, 1: 10})
        assert jaccard(a, b) == 1.0

    def test_both_empty(self):
        assert jaccard(doc("a", []), doc("b", [])) == 1.0


class TestMinHasher:
    def test_signature_deterministic(self):
        hasher = MinHasher(seed=1)
        assert hasher.signature([1, 2, 3]) == hasher.signature([3, 2, 1])

    def test_identical_sets_identical_signatures(self):
        hasher = MinHasher(seed=1)
        assert MinHasher.estimate(
            hasher.signature(range(20)), hasher.signature(range(20))
        ) == 1.0

    def test_signature_length(self):
        hasher = MinHasher(n_hashes=32, seed=0)
        assert len(hasher.signature([1])) == 32

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimate((1, 2), (1,))

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(0, 500), min_size=5, max_size=60),
           st.sets(st.integers(0, 500), min_size=5, max_size=60))
    def test_estimate_tracks_jaccard(self, a, b):
        """With 256 hashes the estimate lands within ~0.2 of the true
        Jaccard similarity (3-4 sigma)."""
        hasher = MinHasher(n_hashes=256, seed=3)
        estimate = MinHasher.estimate(
            hasher.signature(a), hasher.signature(b)
        )
        union = len(a | b)
        truth = len(a & b) / union if union else 1.0
        assert abs(estimate - truth) < 0.2


class TestNearDuplicateIndex:
    def test_exact_duplicate_found(self):
        index = NearDuplicateIndex(threshold=0.9, seed=1)
        index.add(doc("original", range(30)))
        duplicates = index.find_duplicates(doc("copy", range(30)))
        assert duplicates == [("original", 1.0)]

    def test_near_duplicate_above_threshold(self):
        index = NearDuplicateIndex(threshold=0.8, seed=1)
        index.add(doc("original", range(30)))
        edited = doc("edited", list(range(28)) + [100, 101])
        duplicates = index.find_duplicates(edited)
        assert duplicates
        assert duplicates[0][0] == "original"
        assert duplicates[0][1] == pytest.approx(28 / 32)

    def test_unrelated_not_flagged(self):
        index = NearDuplicateIndex(threshold=0.8, seed=1)
        index.add(doc("original", range(30)))
        assert index.find_duplicates(doc("other", range(100, 130))) == []

    def test_no_false_positives_by_construction(self):
        """Candidates are verified by exact Jaccard, so everything
        reported really is >= threshold."""
        index = NearDuplicateIndex(threshold=0.7, seed=2)
        originals = [doc(f"d{i}", range(i, i + 25)) for i in range(0, 60, 3)]
        for original in originals:
            index.add(original)
        probe = doc("probe", range(9, 34))
        by_id = {d.doc_id: d for d in originals}
        for doc_id, similarity in index.find_duplicates(probe):
            assert jaccard(probe, by_id[doc_id]) >= 0.7
            assert math.isclose(similarity, jaccard(probe, by_id[doc_id]))

    def test_add_returns_duplicates_then_indexes(self):
        index = NearDuplicateIndex(threshold=0.9, seed=1)
        assert index.add(doc("a", range(20))) == []
        assert index.add(doc("b", range(20))) == [("a", 1.0)]
        assert len(index) == 2
        assert "a" in index

    def test_banding_validation(self):
        with pytest.raises(ValueError):
            NearDuplicateIndex(n_hashes=64, bands=10)


class TestDeduplicate:
    def test_first_wins_chronologically(self):
        docs = [
            doc("later_copy", range(30), t=5.0),
            doc("first", range(30), t=1.0),
            doc("unique", range(100, 130), t=2.0),
        ]
        kept, removed = deduplicate(docs, threshold=0.9)
        assert {d.doc_id for d in kept} == {"first", "unique"}
        assert removed == {"later_copy": "first"}

    def test_chain_of_copies_maps_to_original(self):
        docs = [
            doc("v1", range(30), t=0.0),
            doc("v2", range(30), t=1.0),
            doc("v3", range(30), t=2.0),
        ]
        kept, removed = deduplicate(docs, threshold=0.9)
        assert [d.doc_id for d in kept] == ["v1"]
        assert removed == {"v2": "v1", "v3": "v1"}

    def test_no_duplicates_all_kept(self):
        docs = [doc(f"d{i}", range(i * 50, i * 50 + 20), t=float(i))
                for i in range(5)]
        kept, removed = deduplicate(docs, threshold=0.8)
        assert len(kept) == 5
        assert removed == {}

    def test_empty_input(self):
        assert deduplicate([]) == ([], {})
