"""Tests for stream batching/replay helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ForgettingModel, IncrementalClusterer, iter_batches, replay
from tests.conftest import build_topic_repository, make_document


def docs_at(times):
    return [
        make_document(f"d{i}", t, {0: 1}) for i, t in enumerate(times)
    ]


class TestIterBatches:
    def test_slices_are_half_open(self):
        batches = list(iter_batches(docs_at([0.0, 0.9, 1.0, 1.5]), 1.0))
        assert [len(b) for _, b in batches] == [2, 2]
        assert [t for t, _ in batches] == [1.0, 2.0]

    def test_empty_slices_skipped_by_default(self):
        batches = list(iter_batches(docs_at([0.0, 5.5]), 1.0))
        assert len(batches) == 2

    def test_include_empty_keeps_clock_ticks(self):
        batches = list(
            iter_batches(docs_at([0.0, 5.5]), 1.0, include_empty=True)
        )
        assert len(batches) == 6
        assert sum(1 for _, b in batches if not b) == 4

    def test_unsorted_input_ordered(self):
        batches = list(iter_batches(docs_at([2.5, 0.5]), 1.0))
        assert batches[0][1][0].timestamp == 0.5

    def test_explicit_origin(self):
        batches = list(iter_batches(docs_at([1.5]), 1.0, origin=0.0))
        assert batches[0][0] == 2.0

    def test_origin_after_first_document_rejected(self):
        with pytest.raises(ValueError):
            list(iter_batches(docs_at([0.0]), 1.0, origin=5.0))

    def test_no_documents(self):
        assert list(iter_batches([], 1.0)) == []

    def test_invalid_width(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            list(iter_batches(docs_at([0.0]), 0.0))

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0,
                              allow_nan=False), max_size=30),
           st.floats(min_value=0.25, max_value=10.0, allow_nan=False))
    def test_batches_partition_the_stream(self, times, width):
        docs = docs_at(times)
        batches = list(iter_batches(docs, width))
        flattened = [d.doc_id for _, b in batches for d in b]
        assert sorted(flattened) == sorted(d.doc_id for d in docs)
        for at_time, batch in batches:
            for doc in batch:
                assert at_time - width <= doc.timestamp + 1e-9
                assert doc.timestamp < at_time


class TestReplay:
    def test_matches_manual_loop(self):
        repo = build_topic_repository(days=6, seed=4)
        model = ForgettingModel(half_life=7.0, life_span=14.0)

        manual = IncrementalClusterer(model, k=3, seed=1)
        for day in range(6):
            # replay feeds batches in (timestamp, doc_id) order; match it
            batch = sorted(
                (d for d in repo if int(d.timestamp) == day),
                key=lambda d: (d.timestamp, d.doc_id),
            )
            manual.process_batch(batch, at_time=float(day + 1))

        driven = IncrementalClusterer(model, k=3, seed=1)
        results = replay(driven, repo.documents(), batch_days=1.0,
                         origin=0.0)
        assert len(results) == 6
        assert (
            sorted(map(sorted, results[-1].clusters))
            == sorted(map(sorted, manual.last_result.clusters))
        )

    def test_on_batch_callback(self):
        repo = build_topic_repository(days=3, seed=5)
        model = ForgettingModel(half_life=7.0)
        clusterer = IncrementalClusterer(model, k=2, seed=1)
        seen = []
        replay(clusterer, repo.documents(), batch_days=1.0, origin=0.0,
               on_batch=lambda t, batch, result: seen.append(
                   (t, len(batch), result.n_documents)))
        assert len(seen) == 3
        assert seen[0][0] == 1.0

    def test_quiet_gaps_advance_clock(self):
        docs = [
            make_document("a", 0.5, {0: 2}),
            make_document("b", 9.5, {0: 2}),
        ]
        model = ForgettingModel(half_life=2.0, life_span=4.0)
        clusterer = IncrementalClusterer(model, k=1, seed=0)
        replay(clusterer, docs, batch_days=1.0)
        # doc "a" must have expired during the quiet gap
        assert "a" not in clusterer.statistics
        assert "b" in clusterer.statistics
