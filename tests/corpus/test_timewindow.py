"""Unit tests for time windows and the window splitter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import TimeWindow, split_into_windows
from repro.exceptions import ConfigurationError
from tests.conftest import make_document


def docs_at(times, topic=None):
    return [
        make_document(f"d{i}", t, {0: 1}, topic_id=topic)
        for i, t in enumerate(times)
    ]


class TestTimeWindow:
    def test_span(self):
        window = TimeWindow(0, 0.0, 30.0, ())
        assert window.span_days == 30.0

    def test_rejects_documents_outside_bounds(self):
        with pytest.raises(ConfigurationError):
            TimeWindow(0, 0.0, 10.0, tuple(docs_at([10.0])))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            TimeWindow(0, 10.0, 5.0, ())

    def test_topic_ids_first_seen_order(self):
        docs = [
            make_document("a", 0.0, {0: 1}, topic_id="t2"),
            make_document("b", 1.0, {0: 1}, topic_id="t1"),
            make_document("c", 2.0, {0: 1}, topic_id="t2"),
        ]
        window = TimeWindow(0, 0.0, 10.0, tuple(docs))
        assert window.topic_ids() == ["t2", "t1"]

    def test_unlabelled_documents_ignored_in_topics(self):
        docs = [
            make_document("a", 0.0, {0: 1}, topic_id=None),
            make_document("b", 1.0, {0: 1}, topic_id="t1"),
        ]
        window = TimeWindow(0, 0.0, 10.0, tuple(docs))
        assert window.topic_ids() == ["t1"]
        assert window.topic_sizes() == {"t1": 1}

    def test_statistics_table2_fields(self):
        docs = (
            docs_at([0.0], topic="a")
            + [make_document("x1", 1.0, {0: 1}, topic_id="b"),
               make_document("x2", 2.0, {0: 1}, topic_id="b"),
               make_document("x3", 3.0, {0: 1}, topic_id="b")]
        )
        window = TimeWindow(0, 0.0, 10.0, tuple(docs))
        stats = window.statistics()
        assert stats["documents"] == 4
        assert stats["topics"] == 2
        assert stats["min_topic_size"] == 1
        assert stats["max_topic_size"] == 3
        assert stats["median_topic_size"] == 2.0
        assert stats["mean_topic_size"] == 2.0

    def test_statistics_empty_window(self):
        stats = TimeWindow(0, 0.0, 10.0, ()).statistics()
        assert stats["documents"] == 0
        assert stats["topics"] == 0


class TestSplitIntoWindows:
    def test_basic_split(self):
        windows = split_into_windows(docs_at([0.5, 10.5, 20.5]), 10.0)
        assert len(windows) == 3
        assert [len(w) for w in windows] == [1, 1, 1]

    def test_boundaries_are_half_open(self):
        windows = split_into_windows(docs_at([0.0, 10.0]), 10.0)
        assert len(windows) == 2
        assert windows[0].documents[0].timestamp == 0.0
        assert windows[1].documents[0].timestamp == 10.0

    def test_empty_middle_window_kept(self):
        windows = split_into_windows(docs_at([0.5, 25.0]), 10.0)
        assert len(windows) == 3
        assert len(windows[1]) == 0

    def test_explicit_end_extends_coverage(self):
        windows = split_into_windows(docs_at([0.5]), 10.0, end=35.0)
        assert len(windows) == 4

    def test_end_on_boundary_opens_no_extra_window(self):
        windows = split_into_windows(docs_at([0.5]), 10.0, end=30.0)
        assert len(windows) == 3

    def test_origin_offset(self):
        windows = split_into_windows(docs_at([5.5]), 10.0, origin=5.0)
        assert windows[0].start == 5.0
        assert len(windows[0]) == 1

    def test_document_before_origin_rejected(self):
        with pytest.raises(ConfigurationError):
            split_into_windows(docs_at([1.0]), 10.0, origin=5.0)

    def test_no_documents(self):
        assert split_into_windows([], 10.0) == []

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            split_into_windows(docs_at([0.0]), 0.0)

    def test_documents_sorted_within_window(self):
        windows = split_into_windows(docs_at([3.0, 1.0, 2.0]), 10.0)
        times = [d.timestamp for d in windows[0].documents]
        assert times == sorted(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=40),
           st.floats(min_value=0.5, max_value=50.0, allow_nan=False))
    def test_partition_is_lossless_and_disjoint(self, times, width):
        docs = docs_at(times)
        windows = split_into_windows(docs, width)
        ids = [d.doc_id for w in windows for d in w.documents]
        assert sorted(ids) == sorted(d.doc_id for d in docs)
        for window in windows:
            for doc in window.documents:
                assert window.start <= doc.timestamp < window.end
