"""Tests for the Experiment 1 (Table 1) driver at reduced scale."""

import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig, TDT2_TOPIC_CATALOG
from repro.experiments import ExperimentOneConfig, run_experiment1
from repro.experiments.experiment1 import statistics_update_timings


def small_config():
    return ExperimentOneConfig(
        seed=42,
        days=6,
        k=6,
        corpus=SyntheticCorpusConfig(
            seed=42,
            total_documents=900,
            n_topics=len(TDT2_TOPIC_CATALOG),
        ),
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment1(small_config())


class TestExperimentOne:
    def test_phases_timed(self, result):
        for phase in ("statistics", "clustering"):
            assert result.non_incremental[phase] > 0.0
            assert result.incremental[phase] > 0.0

    def test_incremental_statistics_faster(self, result):
        """The reproduction target: incremental statistics update beats
        the from-scratch rebuild."""
        assert result.speedup("statistics") > 1.0

    def test_document_counts(self, result):
        assert result.total_documents > 0
        assert 0 < result.last_day_documents < result.total_documents

    def test_rows_shape(self, result):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0][0] == "Non-incremental"
        assert rows[1][0] == "Incremental"

    def test_render_mentions_paper(self, result):
        text = result.render()
        assert "Table 1" in text
        assert "paper" in text
        assert "speedup" in text


class TestStatisticsMicroTiming:
    def test_incremental_statistics_much_faster(self):
        non_inc, inc = statistics_update_timings(small_config())
        assert non_inc > inc
