"""Tests for the Experiment 2 (Tables 2/4, Figures 1-4) driver at
reduced scale."""

import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig, TDT2_TOPIC_CATALOG
from repro.experiments import ExperimentTwoConfig, run_experiment2


def small_config():
    return ExperimentTwoConfig(
        seed=42,
        k=8,
        betas=(7.0, 30.0),
        corpus=SyntheticCorpusConfig(
            seed=42,
            total_documents=1200,
            n_topics=len(TDT2_TOPIC_CATALOG),
        ),
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment2(small_config(), windows=(0, 3))


class TestExperimentTwo:
    def test_selected_windows_run_for_both_betas(self, result):
        assert set(result.runs) == {
            (0, 7.0), (0, 30.0), (3, 7.0), (3, 30.0),
        }

    def test_six_windows_described(self, result):
        assert len(result.windows) == 6

    def test_runs_carry_evaluations(self, result):
        for run in result.runs.values():
            assert 0.0 <= run.evaluation.micro_f1 <= 1.0
            assert 0.0 <= run.evaluation.macro_f1 <= 1.0
            assert run.result.n_documents > 0

    def test_table2_rows_cover_all_windows(self, result):
        rows = result.table2_rows()
        assert len(rows) == 6  # six statistics
        assert all(len(row) == 7 for row in rows)  # label + six windows

    def test_render_table2(self, result):
        text = result.render_table2()
        assert "Table 2" in text
        assert "paper" in text

    def test_table4_rows_mark_missing_windows(self, result):
        rows = result.table4_rows(betas=(7.0, 30.0))
        assert len(rows) == 6
        # window 2 was not selected: measured cells show placeholders
        assert "--" in rows[1][1]

    def test_render_table4_includes_paper_reference(self, result):
        text = result.render_table4()
        assert "Table 4" in text
        assert "0.34" in text  # paper's window-1 β=7 micro F1


class TestIncrementalPipeline:
    def test_incremental_pipeline_close_to_batch(self):
        config = small_config()
        batch = run_experiment2(config, windows=(0,))

        config_inc = small_config()
        config_inc.pipeline = "incremental"
        config_inc.batch_days = 10.0
        incremental = run_experiment2(config_inc, windows=(0,))

        for beta in (7.0, 30.0):
            f1_batch = batch.run(0, beta).evaluation.micro_f1
            f1_inc = incremental.run(0, beta).evaluation.micro_f1
            # §6.2.2: "roughly close to each other"
            assert abs(f1_batch - f1_inc) < 0.35

    def test_invalid_pipeline_rejected(self):
        import pytest as _pytest
        config = small_config()
        with _pytest.raises(ValueError):
            type(config)(pipeline="telepathic")
