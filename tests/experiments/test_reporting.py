"""Tests for report rendering helpers."""

import pytest

from repro.experiments.reporting import format_seconds, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0] == "a  | b"
        assert lines[1] == "---+---"
        assert lines[2] == "1  | x"
        assert lines[3] == "22 | yy"

    def test_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_header_wider_than_cells(self):
        text = render_table(["wide header"], [["x"]])
        assert "wide header" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2

    def test_non_string_cells_coerced(self):
        text = render_table(["x"], [[3.14159]])
        assert "3.14159" in text


class TestFormatSeconds:
    def test_paper_style_minutes(self):
        assert format_seconds(95.0) == "1min35sec"
        assert format_seconds(25 * 60 + 21) == "25min21sec"

    def test_sub_minute_keeps_decimals(self):
        assert format_seconds(0.414) == "0.414sec"
        assert format_seconds(12.34) == "12.3sec"

    def test_boundary(self):
        assert format_seconds(60.0) == "1min00sec"
