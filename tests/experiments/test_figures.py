"""Tests for figure helpers (histograms, precision/recall charts)."""

import pytest

from repro import evaluate_clustering
from repro.experiments import (
    precision_recall_chart,
    render_histogram,
    topic_histogram,
)
from tests.conftest import make_document


def docs_for_histogram():
    times = [0.5, 1.5, 6.5, 7.5, 8.0, 20.0]
    docs = [
        make_document(f"d{i}", t, {0: 1}, topic_id="hot")
        for i, t in enumerate(times)
    ]
    docs.append(make_document("other", 3.0, {0: 1}, topic_id="cold"))
    return docs


class TestTopicHistogram:
    def test_weekly_bins(self):
        counts = topic_histogram(docs_for_histogram(), "hot", bin_days=7.0)
        # 0.5, 1.5, 6.5 -> week 1; 7.5, 8.0 -> week 2; 20.0 -> week 3
        assert counts == [3, 2, 1]

    def test_other_topics_excluded(self):
        counts = topic_histogram(docs_for_histogram(), "cold", bin_days=7.0)
        assert counts == [1]

    def test_total_days_pads_bins(self):
        counts = topic_histogram(
            docs_for_histogram(), "hot", bin_days=7.0, total_days=35.0
        )
        assert len(counts) == 5
        assert counts[4] == 0

    def test_missing_topic_empty(self):
        counts = topic_histogram(docs_for_histogram(), "nope", bin_days=7.0,
                                 total_days=14.0)
        assert counts == [0, 0]

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            topic_histogram([], "t", bin_days=0.0)

    def test_counts_sum_to_topic_size(self):
        docs = docs_for_histogram()
        counts = topic_histogram(docs, "hot", bin_days=3.0)
        assert sum(counts) == sum(1 for d in docs if d.topic_id == "hot")


class TestRenderHistogram:
    def test_bars_scale_to_peak(self):
        text = render_histogram([2, 4], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_labels(self):
        text = render_histogram([1], title="Figure 5", bin_label="month")
        assert text.splitlines()[0] == "Figure 5"
        assert "month  1" in text

    def test_all_zero_safe(self):
        text = render_histogram([0, 0])
        assert "#" not in text


class TestPrecisionRecallChart:
    @pytest.fixture
    def evaluation(self):
        truth = {
            "a1": "t1", "a2": "t1", "a3": "t1",
            "b1": "t2", "b2": "t2",
        }
        return evaluate_clustering(
            [["a1", "a2", "a3"], ["b1", "b2"], ["a1x"]], truth
        )

    def test_marked_clusters_listed(self, evaluation):
        chart = precision_recall_chart(evaluation)
        assert "t1" in chart
        assert "t2" in chart
        assert "micro F1" in chart

    def test_unmarked_hidden_by_default(self, evaluation):
        chart = precision_recall_chart(evaluation)
        assert "[" not in chart
        chart_all = precision_recall_chart(evaluation,
                                           include_unmarked=True)
        assert "[" in chart_all

    def test_bars_reflect_values(self, evaluation):
        chart = precision_recall_chart(evaluation, width=10)
        # both marked clusters have precision 1.0 -> a full 10-char bar
        assert "##########" in chart
