"""Tests for detection-latency measurement."""

import pytest

from repro import DetectionRecorder, first_arrivals
from tests.conftest import make_document

TRUTH = {
    "a1": "t1", "a2": "t1", "a3": "t1",
    "b1": "t2", "b2": "t2",
}


class TestFirstArrivals:
    def test_earliest_per_topic(self):
        docs = [
            make_document("a1", 3.0, {0: 1}, topic_id="t1"),
            make_document("a2", 1.0, {0: 1}, topic_id="t1"),
            make_document("b1", 5.0, {0: 1}, topic_id="t2"),
            make_document("n1", 0.0, {0: 1}, topic_id=None),
        ]
        assert first_arrivals(docs) == {"t1": 1.0, "t2": 5.0}

    def test_empty(self):
        assert first_arrivals([]) == {}


class TestDetectionRecorder:
    def test_records_first_detection_only(self):
        recorder = DetectionRecorder(TRUTH)
        assert recorder.observe([["a1", "a2"]], at_time=1.0) == ["t1"]
        # t1 detected again + t2 fresh
        assert recorder.observe(
            [["a1", "a2", "a3"], ["b1", "b2"]], at_time=2.0
        ) == ["t2"]
        report = recorder.report({"t1": 0.5, "t2": 0.5})
        assert report.latency_of("t1") == 0.5
        assert report.latency_of("t2") == 1.5

    def test_unmarked_clusters_do_not_detect(self):
        recorder = DetectionRecorder(TRUTH)
        # 50/50 mix fails the precision threshold
        assert recorder.observe([["a1", "b1"]], at_time=1.0) == []
        report = recorder.report({"t1": 0.0})
        assert report.detected_fraction == 0.0
        assert report.mean_latency is None
        assert report.median_latency is None

    def test_never_detected_topic(self):
        recorder = DetectionRecorder(TRUTH)
        recorder.observe([["a1", "a2"]], at_time=1.0)
        report = recorder.report({"t1": 0.0, "t2": 0.0})
        assert report.detected_fraction == 0.5
        t2 = next(t for t in report.topics if t.topic_id == "t2")
        assert t2.detected_at is None
        assert t2.latency is None

    def test_time_must_advance(self):
        recorder = DetectionRecorder(TRUTH)
        recorder.observe([["a1", "a2"]], at_time=1.0)
        with pytest.raises(ValueError):
            recorder.observe([["a1", "a2"]], at_time=1.0)

    def test_unknown_topic_in_report_raises(self):
        recorder = DetectionRecorder(TRUTH)
        report = recorder.report({"t1": 0.0})
        with pytest.raises(KeyError):
            report.latency_of("nope")

    def test_mean_and_median(self):
        recorder = DetectionRecorder(TRUTH)
        recorder.observe([["a1", "a2"]], at_time=2.0)
        recorder.observe([["a1", "a2"], ["b1", "b2"]], at_time=6.0)
        report = recorder.report({"t1": 0.0, "t2": 0.0})
        assert report.mean_latency == pytest.approx(4.0)
        assert report.median_latency == pytest.approx(4.0)


class TestEndToEndLatency:
    def test_short_half_life_detects_burst_no_later(self):
        """On a stream with a late burst, β=3 must surface the burst
        topic no later than β=90 does (usually strictly earlier)."""
        from repro import ForgettingModel, IncrementalClusterer, iter_batches
        from tests.integration.test_paper_claims import build_burst_stream

        repo = build_burst_stream(seed=4)
        docs = repo.documents()
        truth = {d.doc_id: d.topic_id for d in docs}
        arrivals = first_arrivals(docs)
        detected = {}
        for beta in (3.0, 90.0):
            clusterer = IncrementalClusterer(
                ForgettingModel(half_life=beta), k=3, seed=1
            )
            recorder = DetectionRecorder(truth)
            for at_time, batch in iter_batches(docs, 2.0, origin=0.0):
                result = clusterer.process_batch(batch, at_time=at_time)
                recorder.observe(result.clusters, at_time)
            detected[beta] = recorder.report(arrivals)
        burst_short = detected[3.0].latency_of("burst")
        burst_long = detected[90.0].latency_of("burst")
        assert burst_short is not None
        if burst_long is not None:
            assert burst_short <= burst_long
