"""Tests for the paper's Table 3 contingency table."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ContingencyTable


class TestConstruction:
    def test_from_sets(self):
        table = ContingencyTable.from_sets(
            cluster={"a", "b", "c"}, topic={"b", "c", "d"}, total=10
        )
        assert (table.a, table.b, table.c, table.d) == (2, 1, 1, 6)

    def test_from_sets_disjoint(self):
        table = ContingencyTable.from_sets({"a"}, {"b"}, total=5)
        assert (table.a, table.b, table.c, table.d) == (0, 1, 1, 3)

    def test_from_sets_total_too_small(self):
        with pytest.raises(ValueError):
            ContingencyTable.from_sets({"a", "b"}, {"c"}, total=2)

    def test_negative_cell_rejected(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            ContingencyTable(a=-1, b=0, c=0, d=0)

    def test_total(self):
        assert ContingencyTable(1, 2, 3, 4).total == 10


class TestMeasures:
    def test_paper_formulas(self):
        table = ContingencyTable(a=6, b=2, c=4, d=8)
        assert math.isclose(table.precision, 6 / 8)
        assert math.isclose(table.recall, 6 / 10)
        assert math.isclose(table.f1, 12 / 18)

    def test_f1_is_harmonic_mean(self):
        table = ContingencyTable(a=5, b=3, c=2, d=0)
        p, r = table.precision, table.recall
        assert math.isclose(table.f1, 2 * p * r / (p + r))

    def test_empty_cluster_zero_precision(self):
        assert ContingencyTable(0, 0, 3, 4).precision == 0.0

    def test_empty_topic_zero_recall(self):
        assert ContingencyTable(0, 3, 0, 4).recall == 0.0

    def test_all_zero_f1(self):
        assert ContingencyTable(0, 0, 0, 4).f1 == 0.0

    def test_perfect_cluster(self):
        table = ContingencyTable(a=5, b=0, c=0, d=5)
        assert table.precision == table.recall == table.f1 == 1.0


class TestMerging:
    def test_merged_sums_cells(self):
        merged = ContingencyTable(1, 2, 3, 4).merged(
            ContingencyTable(10, 20, 30, 40)
        )
        assert (merged.a, merged.b, merged.c, merged.d) == (11, 22, 33, 44)

    def test_empty_identity(self):
        table = ContingencyTable(1, 2, 3, 4)
        assert table.merged(ContingencyTable.empty()) == table

    @given(st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50),
                  st.integers(0, 50), st.integers(0, 50)),
        min_size=1, max_size=10,
    ))
    def test_micro_f1_equals_pooled_counts(self, cells):
        """Merging then computing F1 equals F1 of summed counts —
        the definition of micro-averaging."""
        tables = [ContingencyTable(*c) for c in cells]
        merged = ContingencyTable.empty()
        for table in tables:
            merged = merged.merged(table)
        a = sum(c[0] for c in cells)
        b = sum(c[1] for c in cells)
        c_ = sum(c[2] for c in cells)
        denom = 2 * a + b + c_
        expected = 2 * a / denom if denom else 0.0
        assert math.isclose(merged.f1, expected)
