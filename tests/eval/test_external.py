"""Tests for the external clustering measures (purity, NMI, ARI, ...)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ForgettingModel
from repro.eval import (
    adjusted_rand_index,
    inverse_purity,
    normalized_mutual_information,
    purity,
    rand_index,
    recency_weighted_micro_f1,
)
from tests.conftest import make_document

TRUTH = {
    "a1": "t1", "a2": "t1", "a3": "t1", "a4": "t1",
    "b1": "t2", "b2": "t2",
    "c1": "t3", "c2": "t3", "c3": "t3",
}

PERFECT = [["a1", "a2", "a3", "a4"], ["b1", "b2"], ["c1", "c2", "c3"]]
ONE_BLOB = [list(TRUTH)]
SINGLETONS = [[d] for d in TRUTH]


class TestPurity:
    def test_perfect(self):
        assert purity(PERFECT, TRUTH) == 1.0
        assert inverse_purity(PERFECT, TRUTH) == 1.0

    def test_singletons_gam_purity_but_not_inverse(self):
        assert purity(SINGLETONS, TRUTH) == 1.0
        assert inverse_purity(SINGLETONS, TRUTH) == pytest.approx(3 / 9)

    def test_one_blob_gams_inverse_but_not_purity(self):
        assert inverse_purity(ONE_BLOB, TRUTH) == 1.0
        assert purity(ONE_BLOB, TRUTH) == pytest.approx(4 / 9)

    def test_unlabelled_and_outliers_ignored(self):
        truth = dict(TRUTH, x1=None)
        clusters = [["a1", "a2", "x1"]]
        assert purity(clusters, truth) == 1.0

    def test_empty(self):
        assert purity([], TRUTH) == 0.0
        assert inverse_purity([], TRUTH) == 0.0

    def test_outlier_topics_hurt_inverse_purity(self):
        # topic t3 entirely unclustered
        clusters = [["a1", "a2", "a3", "a4"], ["b1", "b2"]]
        assert inverse_purity(clusters, TRUTH) == pytest.approx(6 / 9)


class TestNMI:
    def test_perfect(self):
        assert normalized_mutual_information(PERFECT, TRUTH) == pytest.approx(1.0)

    def test_trivial_partition_zero(self):
        assert normalized_mutual_information(ONE_BLOB, TRUTH) == 0.0

    def test_bounded(self):
        mixed = [["a1", "b1", "c1"], ["a2", "b2", "c2"], ["a3", "a4", "c3"]]
        value = normalized_mutual_information(mixed, TRUTH)
        assert 0.0 <= value < 0.5

    def test_empty(self):
        assert normalized_mutual_information([], TRUTH) == 0.0


class TestRand:
    def test_perfect(self):
        assert rand_index(PERFECT, TRUTH) == 1.0
        assert adjusted_rand_index(PERFECT, TRUTH) == pytest.approx(1.0)

    def test_rand_of_singletons(self):
        # singletons agree on all cross-topic pairs, disagree within
        expected_disagreements = 6 + 1 + 3  # same-topic pairs
        total = 9 * 8 // 2
        assert rand_index(SINGLETONS, TRUTH) == pytest.approx(
            (total - expected_disagreements) / total
        )

    def test_ari_near_zero_for_random_like(self):
        mixed = [["a1", "b1", "c1"], ["a2", "b2", "c2"], ["a3", "a4", "c3"]]
        assert abs(adjusted_rand_index(mixed, TRUTH)) < 0.3

    def test_small_input(self):
        assert rand_index([["a1"]], TRUTH) == 1.0
        assert adjusted_rand_index([["a1"]], TRUTH) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=24))
    def test_ari_upper_bounded_by_one(self, labels):
        truth = {f"d{i}": f"t{label}" for i, label in enumerate(labels)}
        # arbitrary clustering: by index parity
        clusters = [
            [f"d{i}" for i in range(len(labels)) if i % 2 == 0],
            [f"d{i}" for i in range(len(labels)) if i % 2 == 1],
        ]
        value = adjusted_rand_index(clusters, truth)
        assert value <= 1.0 + 1e-12


class TestRecencyWeightedF1:
    def _docs(self):
        return [
            make_document("new1", 10.0, {0: 1}, topic_id="t1"),
            make_document("new2", 10.0, {0: 1}, topic_id="t1"),
            make_document("old1", 0.0, {0: 1}, topic_id="t2"),
            make_document("old2", 0.0, {0: 1}, topic_id="t2"),
        ]

    def test_perfect_is_one(self):
        model = ForgettingModel(half_life=5.0)
        value = recency_weighted_micro_f1(
            [["new1", "new2"], ["old1", "old2"]],
            self._docs(), model, at_time=10.0,
        )
        assert value == pytest.approx(1.0)

    def test_missing_old_topic_barely_hurts(self):
        """Leaving the stale topic unclustered costs little weight."""
        model = ForgettingModel(half_life=2.0)
        value = recency_weighted_micro_f1(
            [["new1", "new2"]], self._docs(), model, at_time=10.0,
        )
        # old docs weigh 2^-5 each; c = 2/32, a = 2
        assert value > 0.95

    def test_missing_new_topic_hurts_badly(self):
        model = ForgettingModel(half_life=2.0)
        value = recency_weighted_micro_f1(
            [["old1", "old2"]], self._docs(), model, at_time=10.0,
        )
        assert value < 0.1

    def test_unmarked_clusters_excluded(self):
        model = ForgettingModel(half_life=5.0)
        # 50/50 cluster fails the 0.6 marking threshold
        value = recency_weighted_micro_f1(
            [["new1", "old1"]], self._docs(), model, at_time=10.0,
        )
        assert value == 0.0

    def test_empty_clustering(self):
        model = ForgettingModel(half_life=5.0)
        assert recency_weighted_micro_f1(
            [], self._docs(), model, at_time=10.0
        ) == 0.0
