"""Tests for micro/macro-averaged F1 (Section 6.2.3)."""

import math

import pytest

from repro import evaluate_clustering

TRUTH = {
    "a1": "sports", "a2": "sports", "a3": "sports", "a4": "sports",
    "b1": "finance", "b2": "finance", "b3": "finance",
    "c1": "politics", "c2": "politics",
}


class TestPerfectClustering:
    def test_all_ones(self):
        clusters = [
            ["a1", "a2", "a3", "a4"],
            ["b1", "b2", "b3"],
            ["c1", "c2"],
        ]
        ev = evaluate_clustering(clusters, TRUTH)
        assert ev.micro_f1 == 1.0
        assert ev.macro_f1 == 1.0
        assert ev.micro_precision == ev.micro_recall == 1.0
        assert ev.n_marked == 3


class TestMixedClustering:
    @pytest.fixture
    def evaluation(self):
        clusters = [
            ["a1", "a2", "a3", "b1"],   # sports, p=0.75 r=0.75
            ["b2", "b3"],               # finance, p=1.0 r=2/3
            ["c1", "a4"],               # tie politics/sports p=0.5 -> unmarked
        ]
        return evaluate_clustering(clusters, TRUTH)

    def test_marked_count(self, evaluation):
        assert evaluation.n_marked == 2

    def test_micro_pools_marked_tables_only(self, evaluation):
        # merged: a=3+2=5, b=1+0=1, c=1+1=2
        assert evaluation.micro.a == 5
        assert evaluation.micro.b == 1
        assert evaluation.micro.c == 2
        assert math.isclose(evaluation.micro_f1, 10 / 13)

    def test_macro_averages_per_cluster(self, evaluation):
        p1, r1 = 0.75, 0.75
        p2, r2 = 1.0, 2 / 3
        assert math.isclose(evaluation.macro_precision, (p1 + p2) / 2)
        assert math.isclose(evaluation.macro_recall, (r1 + r2) / 2)
        f1_1 = 2 * p1 * r1 / (p1 + r1)
        f1_2 = 2 * p2 * r2 / (p2 + r2)
        assert math.isclose(evaluation.macro_f1, (f1_1 + f1_2) / 2)

    def test_macro_f1_pr_harmonic_of_averages(self, evaluation):
        p, r = evaluation.macro_precision, evaluation.macro_recall
        assert math.isclose(evaluation.macro_f1_pr, 2 * p * r / (p + r))

    def test_marked_topics(self, evaluation):
        assert evaluation.marked_topics == ["sports", "finance"]
        assert evaluation.detects_topic("sports")
        assert not evaluation.detects_topic("politics")


class TestDegenerateCases:
    def test_no_marked_clusters(self):
        clusters = [["a1", "b1"], ["a2", "c1"]]
        ev = evaluate_clustering(clusters, TRUTH)
        assert ev.n_marked == 0
        assert ev.micro_f1 == 0.0
        assert ev.macro_f1 == 0.0
        assert ev.macro_f1_pr == 0.0

    def test_empty_clustering(self):
        ev = evaluate_clustering([], TRUTH)
        assert ev.n_marked == 0
        assert ev.micro_f1 == 0.0

    def test_outliers_hurt_recall_not_precision(self):
        """Documents left out of all clusters lower recall (they are in
        'c') but do not affect precision."""
        ev_full = evaluate_clustering([["a1", "a2", "a3", "a4"]], TRUTH)
        ev_partial = evaluate_clustering([["a1", "a2"]], TRUTH)
        assert ev_partial.micro_precision == ev_full.micro_precision == 1.0
        assert ev_partial.micro_recall < ev_full.micro_recall

    def test_duplicate_topic_clusters_both_counted(self):
        clusters = [["a1", "a2"], ["a3", "a4"]]
        ev = evaluate_clustering(clusters, TRUTH)
        assert ev.n_marked == 2
        # micro recall: each cluster misses the other half: a=4, c=4
        assert math.isclose(ev.micro_recall, 0.5)
