"""Tests for cluster -> topic marking (Section 6.2.3 protocol)."""

import pytest

from repro import mark_clusters
from repro.eval.matching import topic_membership


TRUTH = {
    "a1": "sports", "a2": "sports", "a3": "sports", "a4": "sports",
    "b1": "finance", "b2": "finance",
    "c1": "politics",
    "n1": None,
}


class TestTopicMembership:
    def test_inverts_truth(self):
        members = topic_membership(TRUTH)
        assert members["sports"] == {"a1", "a2", "a3", "a4"}
        assert members["finance"] == {"b1", "b2"}

    def test_unlabelled_excluded(self):
        members = topic_membership(TRUTH)
        assert all("n1" not in docs for docs in members.values())


class TestMarking:
    def test_pure_cluster_marked(self):
        marked = mark_clusters([["a1", "a2", "a3"]], TRUTH)
        assert marked[0].topic_id == "sports"
        assert marked[0].precision == 1.0
        assert marked[0].recall == 0.75

    def test_exactly_at_threshold_marked(self):
        """'equal or greater than 0.60' — 3 of 5 is 0.6, marked."""
        marked = mark_clusters([["a1", "a2", "a3", "b1", "b2"]], TRUTH)
        assert marked[0].precision == 0.6
        assert marked[0].topic_id == "sports"

    def test_below_threshold_unmarked_but_inspectable(self):
        marked = mark_clusters([["a1", "a2", "b1", "b2"]], TRUTH)
        assert marked[0].topic_id is None
        assert not marked[0].is_marked
        assert marked[0].best_topic_id in ("sports", "finance")

    def test_custom_threshold(self):
        marked = mark_clusters([["a1", "a2", "b1", "b2"]], TRUTH,
                               threshold=0.5)
        assert marked[0].is_marked

    def test_unlabelled_members_count_against_precision(self):
        marked = mark_clusters([["a1", "a2", "n1"]], TRUTH)
        assert marked[0].precision == pytest.approx(2 / 3)
        assert marked[0].topic_id == "sports"

    def test_cluster_of_only_unlabelled_unmarked(self):
        marked = mark_clusters([["n1"]], TRUTH)
        assert marked[0].topic_id is None
        assert marked[0].best_topic_id is None
        assert marked[0].precision == 0.0

    def test_empty_clusters_skipped(self):
        marked = mark_clusters([[], ["a1", "a2"], []], TRUTH)
        assert len(marked) == 1
        assert marked[0].cluster_id == 1

    def test_two_clusters_may_share_topic(self):
        """The paper's protocol allows several clusters marked with the
        same topic (large topics split across clusters, Section 6.2.3)."""
        marked = mark_clusters([["a1", "a2"], ["a3", "a4"]], TRUTH)
        assert [m.topic_id for m in marked] == ["sports", "sports"]

    def test_tie_broken_by_recall_then_id(self):
        truth = {"x1": "t_a", "x2": "t_b", "x3": "t_b"}
        # cluster has 1 doc of each topic: precision ties at 0.5;
        # t_a recall = 1/1 beats t_b recall = 1/2
        marked = mark_clusters([["x1", "x2"]], truth, threshold=0.4)
        assert marked[0].topic_id == "t_a"

    def test_recall_uses_full_topic_size(self):
        marked = mark_clusters([["a1"]], TRUTH)
        assert marked[0].recall == 0.25

    def test_contingency_d_never_negative(self):
        truth = {"a1": "t", "n1": None, "n2": None}
        marked = mark_clusters([["a1", "n1", "n2"]], truth, threshold=0.3)
        assert marked[0].table.d >= 0
