"""Tests for bootstrap F1 confidence intervals."""

import math

import pytest

from repro import bootstrap_micro_f1, evaluate_clustering
from repro.eval.significance import _document_contributions
from repro.exceptions import ConfigurationError

TRUTH = {
    f"a{i}": "t1" for i in range(10)
} | {
    f"b{i}": "t2" for i in range(6)
}

CLUSTERS = [
    [f"a{i}" for i in range(8)] + ["b0"],   # t1, p=8/9
    [f"b{i}" for i in range(1, 6)],          # t2, p=1
]


class TestDocumentContributions:
    def test_triples_reproduce_micro_f1(self):
        contributions = _document_contributions(CLUSTERS, TRUTH, 0.6)
        a = sum(t[0] for t in contributions.values())
        b = sum(t[1] for t in contributions.values())
        c = sum(t[2] for t in contributions.values())
        expected = evaluate_clustering(CLUSTERS, TRUTH)
        assert expected.micro.a == a
        assert expected.micro.b == b
        assert expected.micro.c == c

    def test_every_labelled_document_has_a_triple(self):
        contributions = _document_contributions(CLUSTERS, TRUTH, 0.6)
        assert set(contributions) == set(TRUTH)

    def test_unlabelled_cluster_members_count_against_precision(self):
        """Regression: unlabelled docs inside a marked cluster carry a
        b-cell in evaluate_clustering and must do so in the bootstrap
        point estimate too."""
        import math as _math

        from repro import evaluate_clustering as _eval

        truth = dict(TRUTH, n1=None, n2=None)
        clusters = [CLUSTERS[0] + ["n1", "n2"], CLUSTERS[1]]
        interval = bootstrap_micro_f1(clusters, truth, n_resamples=100,
                                      seed=1)
        expected = _eval(clusters, truth).micro_f1
        assert _math.isclose(interval.point, expected)


class TestBootstrapMicroF1:
    def test_point_matches_evaluate_clustering(self):
        interval = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=200,
                                      seed=1)
        expected = evaluate_clustering(CLUSTERS, TRUTH).micro_f1
        assert math.isclose(interval.point, expected)

    def test_interval_brackets_point(self):
        interval = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=500,
                                      seed=2)
        assert interval.lower <= interval.point <= interval.upper
        assert 0.0 <= interval.lower
        assert interval.upper <= 1.0

    def test_deterministic_given_seed(self):
        first = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=100, seed=3)
        second = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=100, seed=3)
        assert first == second

    def test_perfect_clustering_degenerate_interval(self):
        truth = {"a": "t", "b": "t", "c": "u", "d": "u"}
        clusters = [["a", "b"], ["c", "d"]]
        interval = bootstrap_micro_f1(clusters, truth, n_resamples=200,
                                      seed=0)
        assert interval.point == 1.0
        assert interval.lower == interval.upper == 1.0
        assert interval.width == 0.0

    def test_wider_interval_for_smaller_samples(self):
        small_truth = {"a0": "t1", "a1": "t1", "b0": "t2", "b1": "t2"}
        small_clusters = [["a0", "a1", "b0"], ["b1"]]
        small = bootstrap_micro_f1(small_clusters, small_truth,
                                   n_resamples=400, seed=4)
        large = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=400,
                                   seed=4)
        assert small.width >= large.width

    def test_no_labelled_documents(self):
        interval = bootstrap_micro_f1([["x"]], {"x": None},
                                      n_resamples=50, seed=0)
        assert interval.point == 0.0
        assert interval.width == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=0)
        with pytest.raises(ConfigurationError):
            bootstrap_micro_f1(CLUSTERS, TRUTH, confidence=1.0)

    def test_str_format(self):
        interval = bootstrap_micro_f1(CLUSTERS, TRUTH, n_resamples=100,
                                      seed=5)
        text = str(interval)
        assert "[" in text and "]" in text and "95%" in text
