"""Regression tests: batch ingestion is transactional (ISSUE 1).

Three historical bugs are pinned here:

1. ``CorpusStatistics.observe`` mutated state (clock + earlier batch
   members) before a bad document mid-batch raised;
2. ``IncrementalClusterer.process_batch``'s cold-start guard counted
   documents that step 2 then expired, so ``NoveltyKMeans.fit`` raised
   *after* the statistics were mutated;
3. ``NonIncrementalClusterer.process_batch`` rolled a failed batch out
   of the archive but kept the statistics rebuild that included it.

In every failure mode the state must be exactly the pre-batch state —
``validate()`` passes, sizes unchanged — and the corrected batch must
be re-sendable.
"""

import pytest

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    NonIncrementalClusterer,
)
from repro.exceptions import ClusteringError, ConfigurationError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture
def model():
    return ForgettingModel(half_life=7.0, life_span=14.0)


def fresh_docs(prefix, n, timestamp, first_term=0):
    """n well-formed single-term documents at ``timestamp``."""
    return [
        make_document(f"{prefix}{i}", timestamp, {first_term + i: 2, 99: 1})
        for i in range(n)
    ]


class TestObserveAtomicity:
    def test_future_doc_mid_batch_leaves_state_untouched(self, model):
        from repro import CorpusStatistics

        stats = CorpusStatistics(model)
        stats.observe(fresh_docs("old", 3, 0.0), at_time=0.0)
        size_before, tdw_before, now_before = (
            stats.size, stats.tdw, stats.now
        )
        bad_batch = fresh_docs("new", 2, 5.0) + [
            make_document("future", 9.0, {7: 1})
        ]
        with pytest.raises(ConfigurationError):
            stats.observe(bad_batch, at_time=5.0)
        # nothing mutated: no partial insert, no clock advance
        assert stats.size == size_before
        assert stats.tdw == tdw_before
        assert stats.now == now_before
        assert "new0" not in stats
        stats.validate()

    def test_intra_batch_duplicate_rejected_before_mutation(self, model):
        from repro import CorpusStatistics

        stats = CorpusStatistics(model)
        doc = make_document("twin", 0.0, {0: 1})
        with pytest.raises(ConfigurationError):
            stats.observe(
                [make_document("a", 0.0, {1: 1}), doc, doc], at_time=0.0
            )
        assert stats.size == 0
        assert stats.now is None
        stats.validate()

    def test_duplicate_of_tracked_doc_rejected_before_mutation(self, model):
        from repro import CorpusStatistics

        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        with pytest.raises(ConfigurationError):
            stats.observe(
                [make_document("b", 1.0, {1: 1}),
                 make_document("a", 1.0, {0: 1})],
                at_time=1.0,
            )
        assert stats.size == 1
        assert "b" not in stats
        assert stats.now == 0.0
        stats.validate()

    def test_rejected_batch_is_resendable(self, model):
        from repro import CorpusStatistics

        stats = CorpusStatistics(model)
        good = fresh_docs("d", 4, 1.0)
        with pytest.raises(ConfigurationError):
            stats.observe(good + [make_document("future", 9.0, {5: 1})],
                          at_time=1.0)
        # the same good documents go through once corrected
        assert stats.observe(good, at_time=1.0) == 4
        assert stats.size == 4
        stats.validate()


class TestIncrementalColdStartGuard:
    def test_expiring_batch_fails_cleanly(self, model):
        """Backdated docs expire in step 2; the guard must re-check.

        8 documents pass the pre-check (8 >= k=4), but 5 of them are
        older than the life span and expire immediately, leaving 3
        active — the historical bug let ``fit`` raise *after* the
        statistics were poisoned.
        """
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        batch = fresh_docs("fresh", 3, 20.0) + fresh_docs(
            "stale", 5, 1.0, first_term=10
        )
        with pytest.raises(ClusteringError):
            clusterer.process_batch(batch, at_time=20.0)
        # full rollback: corpus empty again, clock reset, no history
        assert clusterer.statistics.size == 0
        assert clusterer.statistics.now is None
        assert clusterer.history == []
        assert clusterer.assignments() == {}
        clusterer.statistics.validate()

    def test_failed_batch_is_resendable_with_reinforcements(self, model):
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        batch = fresh_docs("fresh", 3, 20.0) + fresh_docs(
            "stale", 5, 1.0, first_term=10
        )
        with pytest.raises(ClusteringError):
            clusterer.process_batch(batch, at_time=20.0)
        # same documents re-sent later with one more fresh doc succeed
        reinforced = batch + fresh_docs("extra", 1, 21.0, first_term=20)
        result = clusterer.process_batch(reinforced, at_time=21.0)
        assert result.n_documents + len(result.outliers) == 4  # stale gone
        assert clusterer.statistics.size == 4
        clusterer.statistics.validate()

    def test_zero_vector_cold_start_rolls_back(self, model):
        """All-empty vectors make seeding fail after the statistics ran."""
        clusterer = IncrementalClusterer(model, k=2, seed=0)
        empty = [make_document(f"e{i}", 1.0, {}) for i in range(3)]
        with pytest.raises(ClusteringError):
            clusterer.process_batch(empty, at_time=1.0)
        assert clusterer.statistics.size == 0
        assert clusterer.statistics.now is None
        clusterer.statistics.validate()
        # real documents still go through afterwards
        result = clusterer.process_batch(
            fresh_docs("d", 3, 1.5), at_time=1.5
        )
        assert clusterer.statistics.size == 3
        assert result.n_documents >= 2

    def test_warm_state_survives_failed_batch(self, model):
        """A failure mid-stream must not disturb the previous clustering."""
        repo = build_topic_repository(days=3, docs_per_topic_per_day=2,
                                      seed=6)
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        clusterer.process_batch(repo.documents(), at_time=3.0)
        size_before = clusterer.statistics.size
        assignments_before = clusterer.assignments()
        history_before = len(clusterer.history)
        bad = [make_document("future", 99.0, {0: 1})]
        with pytest.raises(ConfigurationError):
            clusterer.process_batch(bad, at_time=4.0)
        assert clusterer.statistics.size == size_before
        assert clusterer.assignments() == assignments_before
        assert len(clusterer.history) == history_before
        clusterer.statistics.validate()
        # and the stream continues as if the bad batch never happened
        result = clusterer.process_batch(
            fresh_docs("next", 2, 4.0), at_time=4.0
        )
        assert clusterer.statistics.size == size_before + 2
        assert result is clusterer.last_result


class TestNonIncrementalRollback:
    def test_statistics_restored_on_failure(self, model):
        repo = build_topic_repository(days=2, docs_per_topic_per_day=2,
                                      seed=7)
        clusterer = NonIncrementalClusterer(model, k=4, seed=0)
        clusterer.process_batch(repo.documents(), at_time=2.0)
        stats_before = clusterer.statistics
        archive_before = len(clusterer.archive)
        # jump far enough that the whole archive (incl. batch) expires
        doomed = fresh_docs("doom", 2, 100.0)
        with pytest.raises(ClusteringError):
            clusterer.process_batch(doomed, at_time=100.0)
        # archive AND statistics both point at the pre-batch state
        assert clusterer.statistics is stats_before
        assert len(clusterer.archive) == archive_before
        assert all(d.doc_id.startswith("d") for d in clusterer.archive)
        clusterer.statistics.validate()

    def test_first_batch_failure_leaves_virgin_state(self, model):
        clusterer = NonIncrementalClusterer(model, k=8, seed=0)
        with pytest.raises(ClusteringError):
            clusterer.process_batch(fresh_docs("d", 3, 0.0), at_time=0.0)
        assert clusterer.statistics is None
        assert clusterer.archive == []
        assert clusterer.history == []

    def test_failed_batch_is_resendable(self, model):
        repo = build_topic_repository(days=2, docs_per_topic_per_day=2,
                                      seed=8)
        clusterer = NonIncrementalClusterer(model, k=4, seed=0)
        clusterer.process_batch(repo.documents(), at_time=2.0)
        # at t=100 everything (archive and batch) has expired
        doomed = fresh_docs("doom", 3, 3.0)
        with pytest.raises(ClusteringError):
            clusterer.process_batch(doomed, at_time=100.0)
        # the identical documents succeed at a sane time
        result = clusterer.process_batch(doomed, at_time=3.0)
        assert result is clusterer.last_result
        assert {d.doc_id for d in clusterer.statistics.documents()} \
            >= {d.doc_id for d in doomed}


class TestEngineParityThroughPipeline:
    """Seeded sparse-vs-dense parity, warm starts included."""

    @pytest.mark.parametrize("criterion", ["g", "avg"])
    def test_engines_agree_across_batches(self, model, criterion):
        repo = build_topic_repository(days=4, docs_per_topic_per_day=2,
                                      seed=9)
        batches = [
            [d for d in repo if int(d.timestamp) == day]
            for day in range(4)
        ]
        runs = {}
        for engine in ("sparse", "dense"):
            clusterer = IncrementalClusterer(model, k=3, seed=13,
                                             engine=engine)
            clusterer.kmeans.criterion = criterion
            for day, batch in enumerate(batches):
                clusterer.process_batch(batch, at_time=float(day + 1))
            runs[engine] = clusterer
        for day in range(4):
            sparse = runs["sparse"].history[day]
            dense = runs["dense"].history[day]
            assert sparse.assignments() == dense.assignments(), (
                f"engines diverge at batch {day} "
                f"(criterion={criterion!r})"
            )
            assert set(sparse.outliers) == set(dense.outliers)
        assert runs["sparse"].assignments() == runs["dense"].assignments()
