"""Property-based tests for the extended K-means over random corpora."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusStatistics, ForgettingModel, NoveltyKMeans
from tests.conftest import make_document

# random mini-corpora: 4-14 docs over a 12-term vocabulary, 0-5 days old
corpora = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.dictionaries(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=1, max_value=5),
            min_size=1,
            max_size=6,
        ),
    ),
    min_size=4,
    max_size=14,
)


def build(stats_docs):
    model = ForgettingModel(half_life=3.0)
    docs = [
        make_document(f"d{i}", t, counts)
        for i, (t, counts) in enumerate(stats_docs)
    ]
    stats = CorpusStatistics.from_scratch(model, docs, at_time=5.0)
    return docs, stats


class TestKMeansInvariants:
    @settings(max_examples=40, deadline=None)
    @given(corpora, st.integers(min_value=1, max_value=4))
    def test_partition_property(self, stats_docs, k):
        """Every document lands in exactly one cluster or the outlier
        list, regardless of input."""
        docs, stats = build(stats_docs)
        result = NoveltyKMeans(k=min(k, len(docs)), seed=0).fit(docs, stats)
        clustered = [d for members in result.clusters for d in members]
        assert len(clustered) == len(set(clustered))
        assert set(clustered) | set(result.outliers) == {
            d.doc_id for d in docs
        }
        assert not set(clustered) & set(result.outliers)

    @settings(max_examples=30, deadline=None)
    @given(corpora, st.integers(min_value=1, max_value=4))
    def test_clustering_index_non_negative(self, stats_docs, k):
        """G is a sum of non-negative similarity averages."""
        docs, stats = build(stats_docs)
        result = NoveltyKMeans(k=min(k, len(docs)), seed=1).fit(docs, stats)
        assert result.clustering_index >= -1e-15
        assert all(g >= -1e-15 for g in result.index_history)

    @settings(max_examples=30, deadline=None)
    @given(corpora, st.integers(min_value=1, max_value=4))
    def test_backends_numerically_agree(self, stats_docs, k):
        """The engine-equivalence contract, stated precisely: for any
        fixed assignment, both backends report the same clustering
        index and the same *best gain value* for every document.

        (Full-run assignment equality is NOT an invariant: exact gain
        ties — symmetric documents, disjoint documents — are broken by
        float summation order, which differs between the engines and
        can cascade to different local optima. The fixed-seed
        equivalence tests in test_kmeans.py cover realistic,
        tie-free inputs end to end.)"""
        from repro.core.kmeans import _DenseBackend, _SparseBackend
        from repro.vectors.tfidf import NoveltyTfidfWeighter

        docs, stats = build(stats_docs)
        k = min(k, len(docs))
        vectors = NoveltyTfidfWeighter(stats).weighted_vectors(docs)
        sparse = _SparseBackend(k, vectors, "g")
        dense = _DenseBackend(k, vectors, "g")
        for i, doc in enumerate(docs):
            if i % 2 == 0:  # half assigned round-robin, half loose
                sparse.add(i % k, doc.doc_id)
                dense.add(i % k, doc.doc_id)
        assert math.isclose(
            sparse.clustering_index(), dense.clustering_index(),
            rel_tol=1e-9, abs_tol=1e-15,
        )
        for doc in docs:
            gain_sparse = sparse.best_gain(doc.doc_id)[1]
            gain_dense = dense.best_gain(doc.doc_id)[1]
            assert math.isclose(gain_sparse, gain_dense,
                                rel_tol=1e-9, abs_tol=1e-15)

    @settings(max_examples=25, deadline=None)
    @given(corpora, st.integers(min_value=0, max_value=3))
    def test_deterministic(self, stats_docs, seed):
        docs, stats = build(stats_docs)
        k = min(3, len(docs))
        first = NoveltyKMeans(k=k, seed=seed).fit(docs, stats)
        second = NoveltyKMeans(k=k, seed=seed).fit(docs, stats)
        assert first.assignments() == second.assignments()
        assert first.index_history == second.index_history

    @settings(max_examples=25, deadline=None)
    @given(corpora)
    def test_warm_start_accepts_any_prior_assignment(self, stats_docs):
        """Warm starting from an arbitrary valid assignment never
        crashes and still yields a partition."""
        docs, stats = build(stats_docs)
        k = min(3, len(docs))
        initial = {
            doc.doc_id: i % k for i, doc in enumerate(docs)
        }
        result = NoveltyKMeans(k=k, seed=0).fit(
            docs, stats, initial_assignment=initial
        )
        clustered = {d for members in result.clusters for d in members}
        assert clustered | set(result.outliers) == {
            d.doc_id for d in docs
        }

    @settings(max_examples=20, deadline=None)
    @given(corpora, st.booleans())
    def test_g_history_monotone_under_g_criterion(self, stats_docs,
                                                  rescue):
        """Within one run, every per-document move and every accepted
        rescue swap has non-negative ΔG, so the iteration history is
        non-decreasing (rescue may steer to a *different* optimum than a
        rescue-free run — cross-run comparison is not an invariant)."""
        docs, stats = build(stats_docs)
        k = min(3, len(docs))
        result = NoveltyKMeans(
            k=k, seed=3, rescue_outliers=rescue
        ).fit(docs, stats)
        history = result.index_history
        for earlier, later in zip(history, history[1:]):
            assert later >= earlier - max(1e-12, abs(earlier) * 1e-9)
