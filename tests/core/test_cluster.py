"""Tests for Cluster: Eq. 19-26 against brute-force pairwise sums."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, SparseVector
from repro.exceptions import UnknownDocumentError

vector_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    max_size=8,
).map(SparseVector)


def brute_force_avg_sim(vectors):
    """Eq. 18 computed literally: mean over ordered distinct pairs."""
    n = len(vectors)
    if n < 2:
        return 0.0
    total = 0.0
    for v, w in itertools.permutations(vectors, 2):
        total += v.dot(w)
    return total / (n * (n - 1))


def filled_cluster(vectors):
    cluster = Cluster(0)
    for i, vector in enumerate(vectors):
        cluster.add(f"d{i}", vector)
    return cluster


class TestAccounting:
    def test_empty_cluster(self):
        cluster = Cluster(0)
        assert cluster.size == 0
        assert cluster.is_empty
        assert cluster.avg_sim() == 0.0
        assert cluster.index_contribution() == 0.0

    def test_singleton_avg_sim_zero(self):
        cluster = filled_cluster([SparseVector({0: 1.0})])
        assert cluster.avg_sim() == 0.0

    def test_pair_avg_sim_is_their_similarity(self):
        v = SparseVector({0: 1.0, 1: 2.0})
        w = SparseVector({0: 3.0})
        cluster = filled_cluster([v, w])
        assert math.isclose(cluster.avg_sim(), v.dot(w))

    def test_representative_is_member_sum(self):
        v = SparseVector({0: 1.0})
        w = SparseVector({0: 2.0, 1: 1.0})
        cluster = filled_cluster([v, w])
        assert cluster.representative.allclose(v + w)

    def test_ss_is_sum_of_self_similarities(self):
        vectors = [SparseVector({0: 2.0}), SparseVector({1: 3.0})]
        cluster = filled_cluster(vectors)
        expected = sum(v.dot(v) for v in vectors)
        assert math.isclose(cluster.ss, expected)

    def test_eq22_identity(self):
        """cr_sim(C,C) = |C|(|C|-1)·avg_sim(C) + ss(C)."""
        vectors = [
            SparseVector({0: 1.0, 1: 0.5}),
            SparseVector({1: 2.0}),
            SparseVector({0: 0.5, 2: 1.0}),
        ]
        cluster = filled_cluster(vectors)
        n = cluster.size
        lhs = cluster.self_similarity
        rhs = n * (n - 1) * cluster.avg_sim() + cluster.ss
        assert math.isclose(lhs, rhs, rel_tol=1e-12)

    def test_duplicate_member_rejected(self):
        cluster = filled_cluster([SparseVector({0: 1.0})])
        with pytest.raises(ValueError):
            cluster.add("d0", SparseVector({1: 1.0}))

    def test_remove_unknown_rejected(self):
        with pytest.raises(UnknownDocumentError):
            Cluster(0).remove("ghost")

    def test_member_roundtrip(self):
        v = SparseVector({0: 1.5})
        cluster = Cluster(0)
        cluster.add("a", v)
        assert cluster.member_vector("a") == v
        assert cluster.member_ids() == ["a"]
        assert "a" in cluster
        returned = cluster.remove("a")
        assert returned == v
        assert cluster.is_empty

    def test_emptied_cluster_resets_exactly(self):
        cluster = Cluster(0)
        cluster.add("a", SparseVector({0: 1e-8}))
        cluster.remove("a")
        assert cluster.self_similarity == 0.0
        assert cluster.ss == 0.0
        assert len(cluster.representative) == 0

    def test_clear(self):
        cluster = filled_cluster([SparseVector({0: 1.0})] )
        cluster.clear()
        assert cluster.is_empty
        assert cluster.avg_sim() == 0.0


class TestBruteForceAgreement:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(vector_strategy, min_size=0, max_size=8))
    def test_avg_sim_matches_brute_force(self, vectors):
        cluster = filled_cluster(vectors)
        expected = brute_force_avg_sim(vectors)
        assert math.isclose(cluster.avg_sim(), expected,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vector_strategy, min_size=1, max_size=7),
           vector_strategy)
    def test_eq26_what_if_added(self, vectors, candidate):
        """avg_sim_if_added must equal actually adding the document."""
        cluster = filled_cluster(vectors)
        predicted = cluster.avg_sim_if_added(candidate)
        expected = brute_force_avg_sim(vectors + [candidate])
        assert math.isclose(predicted, expected,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vector_strategy, min_size=3, max_size=7),
           st.integers(min_value=0, max_value=6))
    def test_what_if_removed(self, vectors, index):
        index = index % len(vectors)
        cluster = filled_cluster(vectors)
        predicted = cluster.avg_sim_if_removed(f"d{index}")
        remaining = [v for i, v in enumerate(vectors) if i != index]
        expected = brute_force_avg_sim(remaining)
        assert math.isclose(predicted, expected,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vector_strategy, min_size=1, max_size=7),
           vector_strategy)
    def test_g_gain_matches_contribution_delta(self, vectors, candidate):
        """g_gain_if_added must equal Δ(|C|·avg_sim) measured directly."""
        cluster = filled_cluster(vectors)
        before = cluster.index_contribution()
        predicted_gain = cluster.g_gain_if_added(candidate)
        cluster.add("candidate", candidate)
        after = cluster.index_contribution()
        assert math.isclose(predicted_gain, after - before,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(vector_strategy, min_size=2, max_size=8),
           st.integers(min_value=0, max_value=7))
    def test_add_remove_roundtrip_preserves_accounting(self, vectors, index):
        """Removing what was added restores cr_sim and ss exactly
        (within float tolerance) — the §4.4 deletion formulas."""
        index = index % len(vectors)
        cluster = filled_cluster(vectors)
        crpp_before = cluster.self_similarity
        ss_before = cluster.ss
        extra = SparseVector({0: 1.25, 31: 2.0})
        cluster.add("extra", extra)
        cluster.remove("extra")
        assert math.isclose(cluster.self_similarity, crpp_before,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(cluster.ss, ss_before,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(vector_strategy, min_size=1, max_size=8))
    def test_refresh_is_noop_on_clean_state(self, vectors):
        cluster = filled_cluster(vectors)
        crpp = cluster.self_similarity
        ss = cluster.ss
        cluster.refresh()
        assert math.isclose(cluster.self_similarity, crpp,
                            rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(cluster.ss, ss, rel_tol=1e-9, abs_tol=1e-12)


class TestRebuild:
    def test_rebuild_from_members_reweights(self):
        cluster = filled_cluster(
            [SparseVector({0: 1.0}), SparseVector({1: 1.0})]
        )
        fresh = {
            "d0": SparseVector({0: 2.0}),
            "d1": SparseVector({1: 2.0}),
        }
        cluster.rebuild_from_members(fresh)
        assert cluster.representative.allclose(
            SparseVector({0: 2.0, 1: 2.0})
        )

    def test_rebuild_drops_expired_members(self):
        cluster = filled_cluster(
            [SparseVector({0: 1.0}), SparseVector({1: 1.0})]
        )
        cluster.rebuild_from_members({"d1": SparseVector({1: 2.0})})
        assert cluster.member_ids() == ["d1"]
        assert cluster.size == 1
