"""Tests for topic-thread tracking across clustering snapshots."""

import pytest

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    TopicTracker,
)
from repro.exceptions import ConfigurationError
from tests.conftest import build_topic_repository


def run_tracked_stream(repo, days, k=4, threshold=0.3, patience=1,
                       beta=7.0, gamma=None):
    model = ForgettingModel(half_life=beta, life_span=gamma)
    clusterer = IncrementalClusterer(model, k=k, seed=0)
    tracker = TopicTracker(threshold=threshold, patience=patience)
    snapshots = []
    for day in range(days):
        batch = [d for d in repo if int(d.timestamp) == day]
        if not batch:
            clusterer.statistics.advance_to(float(day + 1))
            continue
        result = clusterer.process_batch(batch, at_time=float(day + 1))
        snapshot = tracker.update(
            result,
            clusterer.statistics.documents(),
            clusterer.statistics,
            at_time=float(day + 1),
        )
        snapshots.append(snapshot)
    return clusterer, tracker, snapshots


class TestThreadContinuity:
    def test_stable_topics_form_long_threads(self):
        repo = build_topic_repository(days=8, docs_per_topic_per_day=2,
                                      topics=["sports", "finance"], seed=1)
        _, tracker, snapshots = run_tracked_stream(repo, days=8, k=2)
        long_threads = [
            t for t in tracker.threads.values() if len(t) >= 7
        ]
        assert len(long_threads) == 2
        # after the first snapshot, no births on a stable stream
        assert all(not s.born for s in snapshots[1:])

    def test_first_snapshot_births_equal_clusters(self):
        repo = build_topic_repository(days=3, seed=2)
        _, tracker, snapshots = run_tracked_stream(repo, days=3, k=4)
        first = snapshots[0]
        assert len(first.born) == len(first.cluster_to_thread)
        assert not first.continued
        assert not first.retired

    def test_emerging_topic_births_thread(self):
        """A topic appearing mid-stream creates exactly one new thread."""
        repo = build_topic_repository(days=6, docs_per_topic_per_day=2,
                                      topics=["sports", "finance"], seed=3)
        late = build_topic_repository(days=2, docs_per_topic_per_day=3,
                                      topics=["science"], seed=4)
        for i, doc in enumerate(late.documents()):
            repo.add_text(
                f"late{i}", 4.0 + doc.timestamp / 2.0,
                " ".join(
                    late.vocabulary.term(t)
                    for t, c in doc.term_counts.items() for _ in range(c)
                ),
                topic_id="science",
            )
        _, tracker, snapshots = run_tracked_stream(repo, days=6, k=3)
        births_after_start = [
            tid for s in snapshots[1:] for tid in s.born
        ]
        assert len(births_after_start) >= 1

    def test_vanished_topic_retires_thread(self):
        """A topic that stops and expires retires its thread."""
        repo = build_topic_repository(days=3, docs_per_topic_per_day=3,
                                      topics=["sports"], seed=5)
        steady = build_topic_repository(days=9, docs_per_topic_per_day=2,
                                        topics=["finance"], seed=6)
        for i, doc in enumerate(steady.documents()):
            repo.add_text(
                f"fin{i}", doc.timestamp,
                " ".join(
                    steady.vocabulary.term(t)
                    for t, c in doc.term_counts.items() for _ in range(c)
                ),
                topic_id="finance",
            )
        _, tracker, snapshots = run_tracked_stream(
            repo, days=9, k=2, gamma=4.0, beta=2.0, patience=1,
        )
        retired = [t for t in tracker.threads.values() if t.retired]
        assert retired, "the sports thread should retire after expiry"

    def test_cluster_to_thread_is_bijective(self):
        repo = build_topic_repository(days=5, seed=7)
        _, _, snapshots = run_tracked_stream(repo, days=5, k=4)
        for snapshot in snapshots:
            threads = list(snapshot.cluster_to_thread.values())
            assert len(threads) == len(set(threads))


class TestTrackerQueries:
    def test_active_threads_sorted_by_recency(self):
        repo = build_topic_repository(days=5, seed=8)
        _, tracker, _ = run_tracked_stream(repo, days=5, k=4)
        actives = tracker.active_threads()
        seen = [t.last_seen for t in actives]
        assert seen == sorted(seen, reverse=True)

    def test_thread_of_cluster(self):
        repo = build_topic_repository(days=4, seed=9)
        _, tracker, snapshots = run_tracked_stream(repo, days=4, k=4)
        last = snapshots[-1]
        for cluster_id, thread_id in last.cluster_to_thread.items():
            thread = tracker.thread_of_cluster(cluster_id)
            assert thread is not None
            assert thread.thread_id == thread_id

    def test_span_and_len(self):
        repo = build_topic_repository(days=6, topics=["sports"], seed=10)
        _, tracker, _ = run_tracked_stream(repo, days=6, k=1)
        thread = next(iter(tracker.threads.values()))
        assert len(thread) == 6
        assert thread.span == 5.0  # first event day1 .. last day6


class TestTrackerValidation:
    def test_time_must_advance(self):
        repo = build_topic_repository(days=2, seed=11)
        clusterer = IncrementalClusterer(
            ForgettingModel(half_life=7.0), k=2, seed=0
        )
        tracker = TopicTracker()
        result = clusterer.process_batch(repo.documents(), at_time=2.0)
        tracker.update(result, clusterer.statistics.documents(),
                       clusterer.statistics, at_time=2.0)
        with pytest.raises(ValueError):
            tracker.update(result, clusterer.statistics.documents(),
                           clusterer.statistics, at_time=2.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TopicTracker(threshold=1.5)
        with pytest.raises(ConfigurationError):
            TopicTracker(patience=-1)


class TestPruneRetired:
    def test_prune_drops_only_retired(self):
        repo = build_topic_repository(days=3, docs_per_topic_per_day=3,
                                      topics=["sports"], seed=5)
        steady = build_topic_repository(days=9, docs_per_topic_per_day=2,
                                        topics=["finance"], seed=6)
        for i, doc in enumerate(steady.documents()):
            repo.add_text(
                f"fin{i}", doc.timestamp,
                " ".join(
                    steady.vocabulary.term(t)
                    for t, c in doc.term_counts.items() for _ in range(c)
                ),
                topic_id="finance",
            )
        _, tracker, _ = run_tracked_stream(
            repo, days=9, k=2, gamma=4.0, beta=2.0, patience=1,
        )
        retired_before = sum(1 for t in tracker.threads.values()
                             if t.retired)
        active_before = sum(1 for t in tracker.threads.values()
                            if not t.retired)
        assert retired_before >= 1
        removed = tracker.prune_retired()
        assert removed == retired_before
        assert len(tracker.threads) == active_before

    def test_keep_latest(self):
        tracker = TopicTracker()
        from repro.core.tracking import TopicThread
        for i in range(4):
            thread = TopicThread(thread_id=i, born_at=float(i))
            thread.retired = True
            tracker.threads[i] = thread
        removed = tracker.prune_retired(keep_latest=2)
        assert removed == 2
        assert set(tracker.threads) == {2, 3}
