"""Tests for the pluggable engine layer (registry + cross-engine parity).

The three built-in engines implement the same Eq. 19-26 accounting with
different data structures, so under a fixed seed they must produce the
*same clustering*: identical assignments, identical member sets, and a
clustering index ``G`` equal up to float associativity.
"""

import math

import pytest

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    NoveltyKMeans,
)
from repro.core.engines import (
    available_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from repro.core.engines.dense import DenseEngine
from repro.exceptions import ConfigurationError
from repro.forgetting.statistics import CorpusStatistics
from tests.conftest import build_topic_repository

ENGINES = ("sparse", "dense", "matrix", "pruned")


def _has_scipy():
    try:
        import scipy.sparse  # noqa: F401
        return True
    except ImportError:  # pragma: no cover - env without scipy
        return False


needs_scipy = pytest.mark.skipif(
    not _has_scipy(), reason="matrix engine requires scipy"
)


@pytest.fixture(scope="module")
def corpus():
    repo = build_topic_repository(days=6, docs_per_topic_per_day=3, seed=11)
    docs = sorted(repo.documents(), key=lambda d: d.timestamp)
    model = ForgettingModel(half_life=7.0, life_span=14.0)
    statistics = CorpusStatistics.from_scratch(model, docs, at_time=6.0)
    return statistics.documents(), statistics


class TestRegistry:
    def test_builtins_registered(self):
        for name in ENGINES:
            assert name in available_engines()

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_engine("no-such-engine")
        message = str(excinfo.value)
        assert "no-such-engine" in message
        for name in ENGINES:
            assert name in message

    def test_kmeans_rejects_unknown_engine_eagerly(self):
        with pytest.raises(ConfigurationError, match="available engines"):
            NoveltyKMeans(k=4, engine="typo")

    def test_custom_engine_registration(self, corpus):
        docs, statistics = corpus
        calls = []

        def factory(k, vectors, criterion):
            calls.append((k, criterion))
            return DenseEngine(k, vectors, criterion)

        register_engine("custom-test", factory)
        try:
            kmeans = NoveltyKMeans(k=4, seed=0, engine="custom-test")
            result = kmeans.fit(docs, statistics)
            assert calls and calls[0] == (4, "g")
            assert result.n_documents > 0
        finally:
            unregister_engine("custom-test")
        with pytest.raises(ConfigurationError):
            resolve_engine("custom-test")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine("dense", DenseEngine)

    def test_duplicate_registration_with_overwrite(self):
        register_engine("dense", DenseEngine, overwrite=True)
        assert resolve_engine("dense") is DenseEngine


@needs_scipy
class TestEngineParity:
    """dense / sparse / matrix / pruned must agree document-for-document."""

    @pytest.mark.parametrize("criterion", ["g", "avg"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_single_fit_parity(self, corpus, criterion, seed):
        docs, statistics = corpus
        results = {}
        for engine in ENGINES:
            kmeans = NoveltyKMeans(k=4, seed=seed, engine=engine)
            kmeans.criterion = criterion
            results[engine] = kmeans.fit(docs, statistics)
        reference = results["dense"]
        for engine in ("sparse", "matrix", "pruned"):
            result = results[engine]
            assert result.assignments() == reference.assignments(), engine
            assert result.clusters == reference.clusters, engine
            assert math.isclose(
                result.clustering_index,
                reference.clustering_index,
                rel_tol=1e-9,
            ), engine

    def test_multi_window_warm_start_parity(self):
        repo = build_topic_repository(
            days=6, docs_per_topic_per_day=2, seed=3
        )
        batches = [
            [d for d in repo if int(d.timestamp) == day] for day in range(6)
        ]
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterers = {
            engine: IncrementalClusterer(model, k=4, seed=1, engine=engine)
            for engine in ENGINES
        }
        for day, batch in enumerate(batches):
            window = {}
            for engine, clusterer in clusterers.items():
                window[engine] = clusterer.process_batch(
                    batch, at_time=float(day + 1)
                )
            reference = window["dense"]
            for engine in ("sparse", "matrix", "pruned"):
                result = window[engine]
                assert result.assignments() == reference.assignments(), (
                    f"{engine} diverged in window {day}"
                )
                assert math.isclose(
                    result.clustering_index,
                    reference.clustering_index,
                    rel_tol=1e-9,
                ), f"{engine} G diverged in window {day}"

    def test_outlier_parity(self, corpus):
        # k close to the document count forces outliers + empty slots,
        # exercising the engines' reseed/self-similarity paths
        docs, statistics = corpus
        results = {
            engine: NoveltyKMeans(k=4, seed=2, engine=engine).fit(
                docs[:10], statistics
            )
            for engine in ENGINES
        }
        reference = results["dense"]
        for engine in ("sparse", "matrix", "pruned"):
            assert set(results[engine].outliers) == set(reference.outliers)
            assert (
                results[engine].assignments() == reference.assignments()
            )


@needs_scipy
class TestMatrixEngine:
    def test_checkpoint_roundtrips_engine_name(self, tmp_path):
        from repro.persistence import load_checkpoint, save_checkpoint

        repo = build_topic_repository(
            days=3, docs_per_topic_per_day=2, seed=9
        )
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = IncrementalClusterer(
            model, k=3, seed=0, engine="matrix"
        )
        clusterer.process_batch(repo.documents(), at_time=3.0)
        path = tmp_path / "ck.json"
        save_checkpoint(clusterer, repo.vocabulary, path)
        restored, _ = load_checkpoint(path, repo.vocabulary)
        assert restored.kmeans.engine == "matrix"
        # the restored pipeline keeps clustering with the same engine
        result = restored.process_batch([], at_time=3.5)
        assert result.n_documents > 0
