"""Tests for query -> cluster search."""

import pytest

from repro import (
    ClusterSearcher,
    CorpusStatistics,
    ForgettingModel,
    NoveltyKMeans,
)
from repro.exceptions import ConfigurationError
from tests.conftest import build_topic_repository


@pytest.fixture(scope="module")
def searcher_setup():
    repo = build_topic_repository(days=5, docs_per_topic_per_day=3, seed=2)
    model = ForgettingModel(half_life=7.0)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=5.0
    )
    result = NoveltyKMeans(k=4, seed=2).fit(stats.documents(), stats)
    searcher = ClusterSearcher(
        result, repo.documents(), stats, repo.vocabulary
    )
    truth = {d.doc_id: d.topic_id for d in repo}
    cluster_topic = {
        cluster_id: truth[members[0]]
        for cluster_id, members in result.non_empty_clusters()
    }
    return searcher, cluster_topic


class TestSearch:
    def test_topical_query_finds_right_cluster(self, searcher_setup):
        searcher, cluster_topic = searcher_setup
        for query, topic in [
            ("stock market investors", "finance"),
            ("election campaign votes", "politics"),
            ("team players scoring goals", "sports"),
            ("physics laboratory experiments", "science"),
        ]:
            hits = searcher.search(query)
            assert hits, query
            assert cluster_topic[hits[0].cluster_id] == topic, query

    def test_scores_sorted_and_bounded(self, searcher_setup):
        searcher, _ = searcher_setup
        hits = searcher.search("market election game research", limit=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 < score <= 1.0 + 1e-9 for score in scores)

    def test_matched_terms_reported(self, searcher_setup):
        searcher, _ = searcher_setup
        hits = searcher.search("stock market")
        assert hits
        assert set(hits[0].matched_terms) <= {"stock", "market"}
        assert hits[0].matched_terms

    def test_limit_respected(self, searcher_setup):
        searcher, _ = searcher_setup
        hits = searcher.search("market election game research", limit=2)
        assert len(hits) <= 2

    def test_unknown_vocabulary_empty(self, searcher_setup):
        searcher, _ = searcher_setup
        assert searcher.search("xylophone zeppelin") == []

    def test_stopword_only_query_empty(self, searcher_setup):
        searcher, _ = searcher_setup
        assert searcher.search("the of and") == []

    def test_empty_query(self, searcher_setup):
        searcher, _ = searcher_setup
        assert searcher.search("") == []

    def test_invalid_limit(self, searcher_setup):
        searcher, _ = searcher_setup
        with pytest.raises(ConfigurationError):
            searcher.search("market", limit=0)

    def test_query_vector_unit_norm(self, searcher_setup):
        searcher, _ = searcher_setup
        vector = searcher.query_vector("stock market rally")
        assert vector.norm() == pytest.approx(1.0)
