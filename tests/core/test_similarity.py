"""Tests for the novelty similarity: Eq. 16 must equal Eq. 11."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusStatistics, ForgettingModel, NoveltySimilarity
from tests.conftest import make_document

term_counts = st.dictionaries(
    st.integers(min_value=0, max_value=25),
    st.integers(min_value=1, max_value=9),
    min_size=1,
    max_size=10,
)


def build_statistics(counts_list, times):
    model = ForgettingModel(half_life=5.0)
    stats = CorpusStatistics(model)
    clock = 0.0
    for i, (counts, t) in enumerate(zip(counts_list, times)):
        clock = max(clock, t)
        stats.observe(
            [make_document(f"d{i}", t, counts)], at_time=clock
        )
    return stats


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(term_counts, min_size=2, max_size=8),
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=2, max_size=8,
        ),
    )
    def test_eq16_equals_eq11_on_random_corpora(self, counts_list, times):
        """The factorised similarity (weighted-vector dot product) must
        match the direct probabilistic formula on every pair."""
        n = min(len(counts_list), len(times))
        stats = build_statistics(counts_list[:n], sorted(times[:n]))
        similarity = NoveltySimilarity(stats)
        docs = stats.documents()
        for first in docs:
            for second in docs:
                factored = similarity.similarity(first, second)
                direct = similarity.similarity_probabilistic(first, second)
                assert math.isclose(
                    factored, direct, rel_tol=1e-9, abs_tol=1e-15
                )

    def test_symmetry(self):
        stats = build_statistics(
            [{0: 2, 1: 1}, {1: 3, 2: 2}, {0: 1, 2: 1}], [0.0, 1.0, 2.0]
        )
        similarity = NoveltySimilarity(stats)
        docs = stats.documents()
        for a in docs:
            for b in docs:
                assert math.isclose(
                    similarity.similarity(a, b),
                    similarity.similarity(b, a),
                    rel_tol=1e-12,
                )


class TestNoveltyBias:
    def test_identical_content_newer_pair_more_similar(self):
        """Core paper claim (§3): as a document ages, its similarity to
        everything shrinks because Pr(d) shrinks."""
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics(model)
        a_old = make_document("a_old", 0.0, {0: 1, 1: 2})
        b_old = make_document("b_old", 0.0, {0: 2, 1: 1})
        a_new = make_document("a_new", 14.0, {0: 1, 1: 2})
        b_new = make_document("b_new", 14.0, {0: 2, 1: 1})
        stats.observe([a_old, b_old], at_time=0.0)
        stats.observe([a_new, b_new], at_time=14.0)
        similarity = NoveltySimilarity(stats)
        old_pair = similarity.similarity(a_old, b_old)
        new_pair = similarity.similarity(a_new, b_new)
        assert new_pair > old_pair
        # two half-lives on each factor: ratio 2^2 · 2^2 = 16
        assert math.isclose(new_pair / old_pair, 16.0, rel_tol=1e-9)

    def test_disjoint_documents_zero_similarity(self):
        stats = build_statistics([{0: 1}, {1: 1}], [0.0, 0.0])
        similarity = NoveltySimilarity(stats)
        docs = stats.documents()
        assert similarity.similarity(docs[0], docs[1]) == 0.0

    def test_empty_document_zero_similarity(self):
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics(model)
        full = make_document("full", 0.0, {0: 1})
        empty = make_document("empty", 0.0, {})
        stats.observe([full, empty], at_time=0.0)
        similarity = NoveltySimilarity(stats)
        assert similarity.similarity(full, empty) == 0.0
        assert similarity.similarity_probabilistic(full, empty) == 0.0
        assert similarity.self_similarity(empty) == 0.0

    def test_self_similarity_positive(self):
        stats = build_statistics([{0: 2, 1: 1}], [0.0])
        similarity = NoveltySimilarity(stats)
        assert similarity.self_similarity(stats.documents()[0]) > 0.0


class TestBatchHelpers:
    def test_pairwise_matrix_symmetric_and_complete(self):
        stats = build_statistics(
            [{0: 1}, {0: 1, 1: 1}, {1: 2}], [0.0, 1.0, 2.0]
        )
        similarity = NoveltySimilarity(stats)
        matrix = similarity.pairwise_matrix(stats.documents())
        ids = [d.doc_id for d in stats.documents()]
        for i in ids:
            for j in ids:
                assert matrix[i][j] == matrix[j][i]

    def test_vector_cache_and_invalidate(self):
        stats = build_statistics([{0: 1}, {0: 2}], [0.0, 0.0])
        similarity = NoveltySimilarity(stats)
        doc = stats.documents()[0]
        first = similarity.weighted_vector(doc)
        assert similarity.weighted_vector(doc) is first  # cached
        similarity.invalidate()
        assert similarity.weighted_vector(doc) is not first
