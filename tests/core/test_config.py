"""Tests for ClustererConfig and the constructor compatibility layer."""

import dataclasses

import pytest

from repro import (
    ClustererConfig,
    ForgettingModel,
    IncrementalClusterer,
    NonIncrementalClusterer,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def model():
    return ForgettingModel(half_life=7.0, life_span=14.0)


class TestClustererConfig:
    def test_shared_config_builds_both_pipelines(self, model):
        config = ClustererConfig(
            k=6, delta=0.05, max_iterations=12, seed=42, engine="sparse"
        )
        incremental = IncrementalClusterer(model, config)
        baseline = NonIncrementalClusterer(model, config)
        for clusterer in (incremental, baseline):
            assert clusterer.kmeans.k == 6
            assert clusterer.kmeans.delta == 0.05
            assert clusterer.kmeans.max_iterations == 12
            assert clusterer.kmeans.seed == 42
            assert clusterer.kmeans.engine == "sparse"

    def test_config_keyword_and_replace(self, model):
        config = ClustererConfig(k=4)
        fast = dataclasses.replace(config, engine="dense")
        clusterer = IncrementalClusterer(model, config=fast)
        assert clusterer.kmeans.engine == "dense"

    def test_explicit_keywords_override_config(self, model):
        config = ClustererConfig(k=4, seed=1)
        clusterer = IncrementalClusterer(model, config, seed=9,
                                         warm_start=False)
        assert clusterer.kmeans.seed == 9
        assert clusterer.kmeans.k == 4
        assert clusterer.warm_start is False

    def test_pipeline_switches_stay_out_of_config(self):
        names = {f.name for f in dataclasses.fields(ClustererConfig)}
        assert names == {
            "k", "delta", "max_iterations", "seed", "engine",
            "statistics_backend", "recorder",
        }

    def test_k_is_required(self, model):
        with pytest.raises(ConfigurationError, match="k is required"):
            IncrementalClusterer(model)
        with pytest.raises(ConfigurationError, match="k is required"):
            NonIncrementalClusterer(model)

    def test_config_given_twice_rejected(self, model):
        config = ClustererConfig(k=4)
        with pytest.raises(ConfigurationError, match="config"):
            IncrementalClusterer(model, config, config=config)


class TestLegacyPositional:
    """The pre-config positional protocol is gone: TypeError, not warning."""

    def test_keyword_calls_do_not_warn(self, model, recwarn):
        IncrementalClusterer(model, k=4, seed=0)
        NonIncrementalClusterer(model, k=4, seed=0)
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]

    def test_config_positional_is_the_blessed_shape(self, model, recwarn):
        clusterer = IncrementalClusterer(model, ClustererConfig(k=4))
        assert clusterer.kmeans.k == 4
        assert not recwarn.list

    def test_incremental_positionals_raise_with_migration_hint(self, model):
        with pytest.raises(TypeError) as excinfo:
            IncrementalClusterer(model, 5, 0.02, 10, 3, "sparse", False)
        message = str(excinfo.value)
        assert "no longer accepts positional arguments" in message
        # the hint names the keywords the stray positionals map to
        assert "k=..." in message and "engine=..." in message
        assert "repro.api.open_stream" in message

    def test_nonincremental_positionals_raise(self, model):
        with pytest.raises(TypeError, match="no longer accepts positional"):
            NonIncrementalClusterer(model, 5, 0.02)

    def test_single_positional_raises(self, model):
        with pytest.raises(TypeError, match="ClustererConfig"):
            IncrementalClusterer(model, 5, k=5)

    def test_too_many_positionals(self, model):
        with pytest.raises(TypeError, match="positional"):
            NonIncrementalClusterer(
                model, 5, 0.01, 30, 0, "dense", None, "extra"
            )
