"""Tests for the incremental/non-incremental clustering pipelines (§5.2)."""

import math

import pytest

from repro import (
    ForgettingModel,
    IncrementalClusterer,
    NonIncrementalClusterer,
)
from repro.exceptions import ClusteringError
from tests.conftest import build_topic_repository


def day_batches(repo, days):
    return [
        [d for d in repo if int(d.timestamp) == day] for day in range(days)
    ]


@pytest.fixture
def stream():
    repo = build_topic_repository(days=8, docs_per_topic_per_day=2, seed=4)
    return repo, day_batches(repo, 8)


class TestIncrementalClusterer:
    def test_process_stream(self, stream):
        repo, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        for day, batch in enumerate(batches):
            result = clusterer.process_batch(batch, at_time=float(day + 1))
        assert len(clusterer.history) == 8
        assert clusterer.last_result is result
        covered = result.n_documents + len(result.outliers)
        assert covered == repo.size  # nothing expired within 8 days

    def test_expiry_drops_old_documents(self, stream):
        repo, batches = stream
        model = ForgettingModel(half_life=2.0, life_span=4.0)
        clusterer = IncrementalClusterer(model, k=3, seed=0)
        for day, batch in enumerate(batches):
            clusterer.process_batch(batch, at_time=float(day + 1))
        active_ids = set(clusterer.statistics.doc_ids())
        for doc in repo:
            if doc.timestamp < 3.0:
                assert doc.doc_id not in active_ids

    def test_expired_docs_leave_assignments(self, stream):
        _, batches = stream
        model = ForgettingModel(half_life=2.0, life_span=4.0)
        clusterer = IncrementalClusterer(model, k=3, seed=0)
        for day, batch in enumerate(batches):
            clusterer.process_batch(batch, at_time=float(day + 1))
        assignments = clusterer.assignments()
        assert set(assignments) <= set(clusterer.statistics.doc_ids())

    def test_timings_present(self, stream):
        _, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = IncrementalClusterer(model, k=3, seed=0)
        result = clusterer.process_batch(batches[0], at_time=1.0)
        assert "statistics" in result.timings
        assert "clustering" in result.timings

    def test_all_expired_raises(self):
        repo = build_topic_repository(days=1, topics=["sports"])
        model = ForgettingModel(half_life=1.0, life_span=2.0)
        clusterer = IncrementalClusterer(model, k=2, seed=0)
        clusterer.process_batch(repo.documents(), at_time=1.0)
        with pytest.raises(ClusteringError):
            clusterer.process_batch([], at_time=100.0)

    def test_warm_start_cheaper_than_cold(self, stream):
        """Second batch with warm start should need no more iterations
        than a cold restart over the same data."""
        _, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=30.0)

        warm = IncrementalClusterer(model, k=4, seed=0, warm_start=True)
        cold = IncrementalClusterer(model, k=4, seed=0, warm_start=False)
        for day, batch in enumerate(batches):
            warm_result = warm.process_batch(batch, at_time=float(day + 1))
            cold_result = cold.process_batch(batch, at_time=float(day + 1))
        total_warm = sum(r.iterations for r in warm.history[1:])
        total_cold = sum(r.iterations for r in cold.history[1:])
        assert total_warm <= total_cold

    def test_statistics_stay_consistent(self, stream):
        _, batches = stream
        model = ForgettingModel(half_life=3.0, life_span=6.0)
        clusterer = IncrementalClusterer(model, k=3, seed=0)
        for day, batch in enumerate(batches):
            clusterer.process_batch(batch, at_time=float(day + 1))
            clusterer.statistics.validate()


class TestNonIncrementalClusterer:
    def test_rebuilds_from_archive(self, stream):
        repo, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = NonIncrementalClusterer(model, k=4, seed=0)
        for day, batch in enumerate(batches):
            result = clusterer.process_batch(batch, at_time=float(day + 1))
        assert len(clusterer.archive) == repo.size
        covered = result.n_documents + len(result.outliers)
        assert covered == repo.size

    def test_matches_incremental_statistics(self, stream):
        """Paper's future-work question, settled at the statistics level:
        the two pipelines see identical statistics at every step."""
        _, batches = stream
        model = ForgettingModel(half_life=3.0, life_span=9.0)
        incremental = IncrementalClusterer(model, k=3, seed=0)
        non_incremental = NonIncrementalClusterer(model, k=3, seed=0)
        for day, batch in enumerate(batches):
            at = float(day + 1)
            incremental.process_batch(batch, at_time=at)
            non_incremental.process_batch(batch, at_time=at)
            inc = incremental.statistics
            non = non_incremental.statistics
            assert set(inc.doc_ids()) == set(non.doc_ids())
            assert math.isclose(inc.tdw, non.tdw, rel_tol=1e-9)
            for term_id in non.term_ids():
                assert math.isclose(
                    inc.pr_term(term_id), non.pr_term(term_id),
                    rel_tol=1e-9,
                )


class TestFailedBatchSafety:
    def test_cold_start_too_few_docs_leaves_state_untouched(self):
        """Regression: a failed first batch used to poison the
        statistics (documents already ingested, retry impossible)."""
        from tests.conftest import make_document

        model = ForgettingModel(half_life=7.0)
        clusterer = IncrementalClusterer(model, k=8, seed=0)
        docs = [make_document(f"d{i}", 0.0, {0: 1}) for i in range(3)]
        with pytest.raises(ClusteringError):
            clusterer.process_batch(docs, at_time=1.0)
        assert clusterer.statistics.size == 0
        # retry with enough documents succeeds, no duplicate errors
        more = docs + [
            make_document(f"e{i}", 1.0, {i % 4: 1}) for i in range(8)
        ]
        result = clusterer.process_batch(more, at_time=1.5)
        assert result.n_documents + len(result.outliers) == 11

    def test_non_incremental_failed_batch_rolls_back_archive(self):
        from tests.conftest import make_document

        model = ForgettingModel(half_life=7.0)
        clusterer = NonIncrementalClusterer(model, k=8, seed=0)
        docs = [make_document(f"d{i}", 0.0, {0: 1}) for i in range(3)]
        with pytest.raises(ClusteringError):
            clusterer.process_batch(docs, at_time=1.0)
        assert clusterer.archive == []
        more = docs + [
            make_document(f"e{i}", 1.0, {i % 4: 1}) for i in range(8)
        ]
        result = clusterer.process_batch(more, at_time=1.5)
        assert len(clusterer.archive) == 11
