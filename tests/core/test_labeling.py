"""Tests for cluster labeling."""

import pytest

from repro import (
    CorpusStatistics,
    ForgettingModel,
    NoveltyKMeans,
    label_clustering,
)
from repro.core.labeling import (
    corpus_term_counts,
    discriminative_terms,
    representative_terms,
)
from repro.exceptions import ConfigurationError
from tests.conftest import build_topic_repository


@pytest.fixture(scope="module")
def clustered():
    repo = build_topic_repository(days=5, docs_per_topic_per_day=3, seed=2)
    model = ForgettingModel(half_life=7.0)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=5.0
    )
    result = NoveltyKMeans(k=4, seed=2).fit(stats.documents(), stats)
    return repo, stats, result


class TestRepresentativeTerms:
    def test_topic_words_dominate(self, clustered):
        repo, stats, result = clustered
        truth = {d.doc_id: d.topic_id for d in repo}
        by_id = {d.doc_id: d for d in repo}
        for _, member_ids in result.non_empty_clusters():
            topic = truth[member_ids[0]]
            members = [by_id[m] for m in member_ids]
            ranked = representative_terms(
                members, stats, repo.vocabulary, limit=3
            )
            from tests.conftest import TOPIC_VOCABULARY
            from repro.text import stem
            topic_stems = {stem(w) for w in TOPIC_VOCABULARY[topic].split()}
            for term, score in ranked:
                assert term in topic_stems, (topic, term)
                assert score > 0.0

    def test_scores_descending(self, clustered):
        repo, stats, result = clustered
        by_id = {d.doc_id: d for d in repo}
        members = [by_id[m] for m in result.non_empty_clusters()[0][1]]
        ranked = representative_terms(members, stats, repo.vocabulary,
                                      limit=10)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_limit_validated(self, clustered):
        repo, stats, _ = clustered
        with pytest.raises(ConfigurationError):
            representative_terms([], stats, repo.vocabulary, limit=0)


class TestDiscriminativeTerms:
    def test_background_words_suppressed(self, clustered):
        repo, _, result = clustered
        by_id = {d.doc_id: d for d in repo}
        counts = corpus_term_counts(repo.documents())
        members = [by_id[m] for m in result.non_empty_clusters()[0][1]]
        ranked = discriminative_terms(members, counts, repo.vocabulary,
                                      limit=5)
        from repro.text import stem
        background_stems = {stem(w) for w in
                            ("report", "town", "national", "morning",
                             "announcement")}
        top = {term for term, _ in ranked}
        assert not top & background_stems

    def test_corpus_counts_sum(self, clustered):
        repo, _, _ = clustered
        counts = corpus_term_counts(repo.documents())
        assert sum(counts.values()) == sum(d.length for d in repo)


class TestMedoidDocument:
    def test_medoid_is_most_central(self, clustered):
        from repro.core import medoid_document

        repo, stats, result = clustered
        by_id = {d.doc_id: d for d in repo}
        for _, member_ids in result.non_empty_clusters():
            members = [by_id[m] for m in member_ids]
            medoid = medoid_document(members, stats)
            assert medoid in members
            # brute-force check: medoid maximises the mean similarity
            from repro import NoveltySimilarity
            similarity = NoveltySimilarity(stats)

            def mean_sim(doc):
                return sum(
                    similarity.similarity(doc, other)
                    for other in members if other is not doc
                )

            best = max(members, key=mean_sim)
            assert mean_sim(medoid) == pytest.approx(mean_sim(best))

    def test_medoid_edge_cases(self, clustered):
        from repro.core import medoid_document

        repo, stats, _ = clustered
        only = repo.documents()[0]
        assert medoid_document([], stats) is None
        assert medoid_document([only], stats) is only


class TestLabelClustering:
    def test_labels_every_non_empty_cluster(self, clustered):
        repo, stats, result = clustered
        labels = label_clustering(result, repo.documents(),
                                  repo.vocabulary, statistics=stats)
        assert len(labels) == len(result.non_empty_clusters())
        for label in labels:
            assert label.size > 0
            assert len(label.terms) <= 5
            assert str(label) == ", ".join(label.terms)

    def test_without_statistics_uses_discriminative(self, clustered):
        repo, _, result = clustered
        labels = label_clustering(result, repo.documents(),
                                  repo.vocabulary)
        assert labels
        assert all(label.terms for label in labels)

    def test_missing_documents_skipped(self, clustered):
        repo, stats, result = clustered
        some_docs = repo.documents()[: repo.size // 2]
        labels = label_clustering(result, some_docs, repo.vocabulary,
                                  statistics=stats)
        assert all(
            label.size <= len(some_docs) for label in labels
        )
