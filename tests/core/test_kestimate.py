"""Tests for estimate_k (the paper's future-work K estimation)."""

import pytest

from repro import CorpusStatistics, ForgettingModel, estimate_k
from repro.exceptions import ClusteringError, ConfigurationError
from tests.conftest import build_topic_repository


@pytest.fixture(scope="module")
def four_topic_stats():
    repo = build_topic_repository(days=6, docs_per_topic_per_day=3)
    model = ForgettingModel(half_life=7.0)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=6.0
    )
    return stats


class TestEstimateK:
    def test_finds_knee_near_topic_count(self, four_topic_stats):
        stats = four_topic_stats
        estimate = estimate_k(
            stats.documents(), stats, candidates=(2, 4, 6, 8, 12),
            saturation=0.05, seed=1,
        )
        # four topics: G should saturate at or just above K=4
        assert 3 <= estimate.best_k <= 6
        assert estimate.saturated

    def test_curve_recorded_for_every_candidate(self, four_topic_stats):
        stats = four_topic_stats
        estimate = estimate_k(
            stats.documents(), stats, candidates=(2, 4, 8), seed=1
        )
        assert set(estimate.curve) == {2, 4, 8}
        assert all(g >= 0.0 for g in estimate.curve.values())

    def test_gains_computed_between_consecutive_candidates(
        self, four_topic_stats
    ):
        stats = four_topic_stats
        estimate = estimate_k(
            stats.documents(), stats, candidates=(2, 4, 8), seed=1
        )
        gains = estimate.gains()
        assert [k for k, _ in gains] == [4, 8]

    def test_unsaturated_sweep_flagged(self, four_topic_stats):
        """With only under-K candidates the curve keeps climbing."""
        stats = four_topic_stats
        estimate = estimate_k(
            stats.documents(), stats, candidates=(2, 3),
            saturation=0.0001, seed=1,
        )
        if not estimate.saturated:
            assert estimate.best_k == 3

    def test_candidate_validation(self, four_topic_stats):
        stats = four_topic_stats
        with pytest.raises(ConfigurationError):
            estimate_k(stats.documents(), stats, candidates=(8,))
        with pytest.raises(ConfigurationError):
            estimate_k(stats.documents(), stats, candidates=(8, 4))
        with pytest.raises(ConfigurationError):
            estimate_k(stats.documents(), stats, candidates=(4, 8),
                       saturation=1.5)

    def test_oversized_candidate_rejected(self, four_topic_stats):
        stats = four_topic_stats
        with pytest.raises(ClusteringError):
            estimate_k(stats.documents(), stats,
                       candidates=(4, 10_000))
