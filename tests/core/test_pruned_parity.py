"""Property suite: the pruned engine is exact, over random streams.

Extends the backend×engine parity harness
(``tests/integration/test_backend_parity.py``, which already sweeps
``"pruned"`` through its registry parametrisation) with generative
coverage, in two layers:

* **Bit-exactness of the pruning layer.** The same engine with the
  bound filter disabled (margin inflated so every candidate is scored)
  follows the identical float path, so decisions — winner ids *and*
  gain floats — must be *equal*, not merely close. This is the
  skip-only-provable-losers claim of DESIGN.md, and it holds for every
  input, ties included.
* **Decision parity with the exact dense path.** Dense computes Eq.
  25-26 through a different (non-affine) float expression, so on exact
  mathematical gain ties the two paths may order last-ulp-different
  floats differently (the same caveat as sparse-vs-dense, see
  ``test_kmeans_properties``). The tie-robust invariant: the pruned
  winner's gain always matches dense's *maximum* gain to 1e-9, and
  gain values agree decision-for-decision.

Both run over random document streams through both statistics backends
(``"dict"``, ``"columnar"``), which produce the weighted vectors the
engines consume.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusStatistics, ForgettingModel
from repro.core.engines import NO_GAIN
from repro.core.engines import pruned as pruned_module
from repro.core.engines.dense import DenseEngine
from repro.core.engines.pruned import PrunedEngine
from repro.vectors.tfidf import NoveltyTfidfWeighter
from tests.conftest import make_document

# random mini-streams over a 30-term vocabulary: wide enough that, at
# k up to 8, the heavy/light split and the candidate enumeration both
# see real work (12-term corpora make almost every term heavy). The
# upper size crosses the pruned engine's speculation threshold (a
# window needs > 16 pending documents), so the vectorised
# net-stationary fast path is generated alongside the sequential one.
corpora = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.dictionaries(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=1, max_value=5),
            min_size=1,
            max_size=6,
        ),
    ),
    min_size=4,
    max_size=24,
)

BACKENDS = ("dict", "columnar")


def build_vectors(stats_docs, backend):
    model = ForgettingModel(half_life=3.0)
    docs = [
        make_document(f"d{i}", t, counts)
        for i, (t, counts) in enumerate(stats_docs)
    ]
    stats = CorpusStatistics.from_scratch(
        model, docs, at_time=5.0, backend=backend
    )
    return docs, NoveltyTfidfWeighter(stats).weighted_vectors(docs)


def seeded(cls, k, vectors, criterion):
    """Engine with two-thirds of the documents warm-started round-robin."""
    engine = cls(k, vectors, criterion)
    for i, doc_id in enumerate(vectors):
        if i % 3 != 2:
            engine.add(i % k, doc_id)
    return engine


class TestPruningLayerIsExact:
    @settings(max_examples=40, deadline=None)
    @given(
        corpora,
        st.integers(min_value=2, max_value=8),
        st.sampled_from(["g", "avg"]),
        st.sampled_from(BACKENDS),
    )
    def test_bound_filter_never_changes_a_decision(
        self, stats_docs, k, criterion, backend
    ):
        docs, vectors = build_vectors(stats_docs, backend)
        sweep = [d.doc_id for d in docs]
        pruned = seeded(PrunedEngine, k, vectors, criterion)
        decisions = [
            pruned.best_gains(sweep),
            pruned.best_gains(sweep),  # second pass: near-stationary
        ]
        margin = pruned_module.BOUND_MARGIN
        pruned_module.BOUND_MARGIN = 1e30  # every ceiling clears the floor
        try:
            unpruned = seeded(PrunedEngine, k, vectors, criterion)
            reference = [
                unpruned.best_gains(sweep),
                unpruned.best_gains(sweep),
            ]
        finally:
            pruned_module.BOUND_MARGIN = margin
        assert decisions == reference
        assert pruned.members() == unpruned.members()
        assert pruned.clustering_index() == unpruned.clustering_index()


class TestDecisionParityWithDense:
    @settings(max_examples=40, deadline=None)
    @given(
        corpora,
        st.integers(min_value=2, max_value=8),
        st.sampled_from(["g", "avg"]),
        st.sampled_from(BACKENDS),
    )
    def test_gains_match_dense_decision_for_decision(
        self, stats_docs, k, criterion, backend
    ):
        docs, vectors = build_vectors(stats_docs, backend)
        sweep = [d.doc_id for d in docs]
        dense = seeded(DenseEngine, k, vectors, criterion)
        pruned = seeded(PrunedEngine, k, vectors, criterion)
        dense_decisions = dense.best_gains(sweep)
        pruned_decisions = pruned.best_gains(sweep)
        for doc_id, (dc, dg), (pc, pg) in zip(
            sweep, dense_decisions, pruned_decisions
        ):
            if dg == NO_GAIN:
                assert (pc, pg) == (dc, dg), doc_id
                continue
            # the winner's gain must be dense's maximum (tie-robust:
            # on an exact tie either co-maximum is a correct winner,
            # but a pruned-away cluster never is)
            assert math.isclose(pg, dg, rel_tol=1e-9, abs_tol=1e-12), (
                doc_id
            )
            if not math.isclose(pg, dg, rel_tol=1e-12, abs_tol=1e-15):
                continue
            if abs(dg) <= 1e-12:
                # gain sits at the join threshold itself: BLAS vs
                # sequential accumulation can land on either side of
                # exact zero, so the join bit is not comparable
                continue
            # identical (to well past tie tolerance) gains: both
            # engines kept the same membership effect
            assert (pg > 0.0) == (dg > 0.0), doc_id

    @settings(max_examples=25, deadline=None)
    @given(
        corpora,
        st.integers(min_value=2, max_value=6),
        st.sampled_from(BACKENDS),
    )
    def test_structured_streams_assign_identically(
        self, stats_docs, k, backend
    ):
        """On tie-free inputs the full sweep must agree id-for-id.

        Perturbing every term count by a document-unique prime offset
        makes exact gain ties (the only divergence channel, see module
        docstring) not constructible, so full decision equality is a
        real invariant here.
        """
        perturbed = [
            (t, {term: count * 7 + 3 * i + term % 5 + 1
                 for term, count in counts.items()})
            for i, (t, counts) in enumerate(stats_docs)
        ]
        docs, vectors = build_vectors(perturbed, backend)
        sweep = [d.doc_id for d in docs]
        dense = seeded(DenseEngine, k, vectors, "g")
        pruned = seeded(PrunedEngine, k, vectors, "g")
        for _ in range(2):
            dense_decisions = dense.best_gains(sweep)
            pruned_decisions = pruned.best_gains(sweep)
            assert [d[0] for d in pruned_decisions] == [
                d[0] for d in dense_decisions
            ]
            for (_, dg), (_, pg) in zip(
                dense_decisions, pruned_decisions
            ):
                assert pg == dg or math.isclose(
                    pg, dg, rel_tol=1e-9, abs_tol=1e-12
                )
        assert pruned.members() == dense.members()
        assert math.isclose(
            pruned.clustering_index(),
            dense.clustering_index(),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )
