"""Unit tests for the pruned engine's inverted index and bound pruning.

The posting invariant under test is the one DESIGN.md's exactness
argument rests on: ``bit(t, p) set ⇔ rep[p, t] != 0.0`` over the actual
float values, at every point of the membership mutation stream. The
bound-pruning layer is checked bit-for-bit against the same engine with
the prune filter disabled.
"""

import numpy as np
import pytest

from repro.core.engines import pruned as pruned_module
from repro.core.engines.dense import DenseEngine
from repro.core.engines.pruned import PrunedEngine
from repro.obs import InMemoryRecorder, use_recorder
from repro.vectors.sparse import SparseVector


def postings_matrix(engine):
    """Unpack the bitset index into a boolean (n_terms, k) matrix."""
    return np.unpackbits(
        engine._bits.view(np.uint8), axis=1, count=engine.k,
        bitorder="little",
    ).astype(bool)


def assert_posting_invariant(engine):
    expected = (engine._rep != 0.0).T
    actual = postings_matrix(engine)
    assert np.array_equal(actual, expected)
    assert np.array_equal(engine._nzcount, expected.sum(axis=1))


VECTORS = {
    "a": SparseVector({0: 1.0, 1: 2.0}),
    "b": SparseVector({1: 0.5, 2: 1.5}),
    "c": SparseVector({3: 1.0, 4: 0.25}),
    "d": SparseVector({0: 0.75, 4: 1.25}),
}


class TestPostingInvariant:
    def test_tracks_rep_through_adds_and_removes(self):
        engine = PrunedEngine(3, VECTORS, "g")
        assert_posting_invariant(engine)
        for cluster_id, doc_id in [(0, "a"), (0, "b"), (1, "c"), (2, "d")]:
            engine.add(cluster_id, doc_id)
            assert_posting_invariant(engine)
        for cluster_id, doc_id in [(0, "b"), (1, "c"), (0, "a")]:
            engine.remove(cluster_id, doc_id)
            assert_posting_invariant(engine)

    def test_cancellation_to_zero_leaves_posting_set(self):
        # term 0 is carried only by "a": after a's removal the rep
        # coordinate returns to exactly 0.0 while the cluster stays
        # non-empty, and the posting must leave with it
        engine = PrunedEngine(2, VECTORS, "g")
        engine.add(0, "a")
        engine.add(0, "b")
        engine.remove(0, "a")
        assert engine._rep[0, 0] == 0.0
        assert not postings_matrix(engine)[0, 0]
        assert_posting_invariant(engine)

    def test_emptied_cluster_clears_every_posting(self):
        engine = PrunedEngine(2, VECTORS, "g")
        engine.add(0, "a")
        engine.add(0, "d")
        engine.remove(0, "a")
        engine.remove(0, "d")
        # DenseEngine zeroes the whole representative row on emptying;
        # the index must drop all of the cluster's postings with it
        assert not postings_matrix(engine)[:, 0].any()
        assert_posting_invariant(engine)

    def test_survives_a_full_sweep(self):
        engine = PrunedEngine(2, VECTORS, "g")
        engine.add(0, "a")
        engine.add(1, "c")
        engine.best_gains(list(VECTORS))
        assert_posting_invariant(engine)


class TestPrunedDecisions:
    def _seeded(self, cls, criterion="g"):
        engine = cls(3, VECTORS, criterion)
        engine.add(0, "a")
        engine.add(1, "c")
        return engine

    @pytest.mark.parametrize("criterion", ["g", "avg"])
    def test_matches_dense_decisions(self, criterion):
        dense = self._seeded(DenseEngine, criterion)
        pruned = self._seeded(PrunedEngine, criterion)
        dense_decisions = dense.best_gains(list(VECTORS))
        pruned_decisions = pruned.best_gains(list(VECTORS))
        for (dc, dg), (pc, pg) in zip(dense_decisions, pruned_decisions):
            assert pc == dc
            assert pg == pytest.approx(dg, rel=1e-9, abs=1e-15)
        assert pruned.members() == dense.members()

    def test_pruning_disabled_is_bit_identical(self, monkeypatch):
        """The bound filter changes nothing, bit for bit.

        With the margin inflated to 1e30 every candidate's ceiling
        clears the floor, so all candidates are scored — same float
        path, no pruning. Winner ids *and* gain floats must be equal
        exactly, which is the argmax-exactness claim of DESIGN.md.
        """
        sweep = list(VECTORS) + ["b", "a", "d"]
        pruned = self._seeded(PrunedEngine)
        pruned_decisions = pruned.best_gains(sweep)
        monkeypatch.setattr(pruned_module, "BOUND_MARGIN", 1e30)
        unpruned = self._seeded(PrunedEngine)
        unpruned_decisions = unpruned.best_gains(sweep)
        assert pruned_decisions == unpruned_decisions
        assert pruned.members() == unpruned.members()

    def test_disjoint_vocabulary_prunes_candidates(self):
        # clusters over disjoint vocabularies: a probe sharing terms
        # with one cluster must enumerate only that one candidate
        k = 8
        vectors = {
            f"t{p}d{i}": SparseVector({10 * p + i: 1.0, 10 * p: 2.0})
            for p in range(k) for i in range(1, 3)
        }
        probe = "t0d1"
        engine = PrunedEngine(k, vectors, "g")
        for p in range(k):
            engine.add(p, f"t{p}d2")
        decisions = engine.best_gains([probe])
        assert decisions[0][0] == 0
        assert engine._stat_candidates == 1

    def test_bound_prunes_hopeless_candidate(self):
        # probe shares a heavy term with cluster 2 (a big exactly-known
        # gain, the floor) and a tiny light term with cluster 1, whose
        # Cauchy-Schwarz ceiling cannot reach the floor: cluster 1 must
        # be skipped without its dot product, and the decision must
        # still match the exact engine
        k = 8
        vectors = {
            "w1": SparseVector({1: 0.002}),
            "w2": SparseVector({99: 5.0}),
            "w3": SparseVector({99: 3.0}),
            "probe": SparseVector({99: 1.0, 1: 0.001}),
        }

        def seeded(cls):
            engine = cls(k, vectors, "g")
            engine.add(1, "w1")
            engine.add(2, "w2")
            engine.add(3, "w3")
            return engine

        pruned = seeded(PrunedEngine)
        # term 99 sits in two of eight representatives: heavy
        assert pruned._nzcount[pruned._column[99]] == pruned._heavy_cut
        decisions = pruned.best_gains(["probe"])
        assert decisions == seeded(DenseEngine).best_gains(["probe"])
        assert decisions[0][0] == 2
        # one candidate enumerated (cluster 1), zero scored: the bound
        # pruned it, so exactly k - 1 gains were exactly known
        assert pruned._stat_candidates == 1
        assert pruned._stat_scored == k - 1

    def test_heavy_terms_bypass_candidate_enumeration(self):
        # a background term in every representative is "heavy": it must
        # not by itself turn every cluster into a candidate
        k = 8
        vectors = {
            f"t{p}": SparseVector({p: 1.0, 99: 0.5}) for p in range(k)
        }
        vectors["probe"] = SparseVector({0: 1.0, 99: 0.5})
        engine = PrunedEngine(k, vectors, "g")
        for p in range(k):
            engine.add(p, f"t{p}")
        assert engine._nzcount[engine._column[99]] == k
        dense = DenseEngine(k, vectors, "g")
        for p in range(k):
            dense.add(p, f"t{p}")
        assert (
            engine.best_gains(["probe"])[0][0]
            == dense.best_gains(["probe"])[0][0]
        )


class TestObservability:
    def test_sweep_span_and_prune_gauges(self):
        with use_recorder(InMemoryRecorder()) as recorder:
            engine = PrunedEngine(3, VECTORS, "g")
            engine.add(0, "a")
            engine.best_gains(list(VECTORS))
        names = recorder.names()
        assert "engine.pruned.sweep" in names
        assert "engine.pruned.candidates_per_doc" in names
        assert "engine.pruned.scored_per_doc" in names
        fraction = recorder.last("engine.pruned.pruned_fraction")
        assert fraction is not None and 0.0 <= fraction <= 1.0
