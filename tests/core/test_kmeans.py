"""Tests for the extended K-means (Section 4.3)."""

import math

import pytest

from repro import (
    CorpusStatistics,
    ForgettingModel,
    NoveltyKMeans,
)
from repro.exceptions import ClusteringError, ConfigurationError
from tests.conftest import build_topic_repository, make_document


@pytest.fixture(scope="module")
def fitted():
    """One shared clustering of the 4-topic stream (dense engine)."""
    repo = build_topic_repository(days=6, docs_per_topic_per_day=3)
    model = ForgettingModel(half_life=7.0, life_span=30.0)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=6.0
    )
    km = NoveltyKMeans(k=4, seed=2)
    result = km.fit(stats.documents(), stats)
    return repo, stats, result


class TestConfiguration:
    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            NoveltyKMeans(k=0)

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            NoveltyKMeans(k=2, delta=0.0)
        with pytest.raises(ConfigurationError):
            NoveltyKMeans(k=2, delta=1.0)

    def test_invalid_engine(self):
        with pytest.raises(ConfigurationError):
            NoveltyKMeans(k=2, engine="gpu")

    def test_invalid_criterion(self):
        with pytest.raises(ConfigurationError):
            NoveltyKMeans(k=2, criterion="euclid")

    def test_empty_documents_rejected(self):
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics(model)
        with pytest.raises(ClusteringError):
            NoveltyKMeans(k=2).fit([], stats)

    def test_fewer_docs_than_k_rejected(self):
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics(model)
        docs = [make_document("a", 0.0, {0: 1})]
        stats.observe(docs, at_time=0.0)
        with pytest.raises(ClusteringError):
            NoveltyKMeans(k=5).fit(docs, stats)


class TestResultShape:
    def test_every_document_clustered_or_outlier(self, fitted):
        repo, _, result = fitted
        clustered = {d for members in result.clusters for d in members}
        outliers = set(result.outliers)
        assert clustered | outliers == set(repo.doc_ids())
        assert not clustered & outliers

    def test_no_duplicate_assignment(self, fitted):
        _, _, result = fitted
        all_members = [d for members in result.clusters for d in members]
        assert len(all_members) == len(set(all_members))

    def test_k_cluster_slots(self, fitted):
        _, _, result = fitted
        assert result.k == 4

    def test_index_history_recorded(self, fitted):
        _, _, result = fitted
        assert len(result.index_history) == result.iterations
        assert result.clustering_index == result.index_history[-1]

    def test_timings_recorded(self, fitted):
        _, _, result = fitted
        assert result.timings["clustering"] > 0.0

    def test_separable_topics_recovered(self, fitted):
        """Each non-empty cluster should be topic-pure on this stream."""
        repo, _, result = fitted
        truth = {d.doc_id: d.topic_id for d in repo}
        for members in result.clusters:
            if len(members) < 2:
                continue
            topics = {truth[m] for m in members}
            assert len(topics) == 1, f"mixed cluster: {topics}"


class TestEngineEquivalence:
    @pytest.mark.parametrize("criterion", ["g", "avg"])
    def test_sparse_and_dense_agree(self, criterion):
        repo = build_topic_repository(days=4, docs_per_topic_per_day=2,
                                      seed=3)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        docs = stats.documents()
        results = {}
        for engine in ("sparse", "dense"):
            km = NoveltyKMeans(k=3, seed=11, engine=engine,
                               criterion=criterion)
            results[engine] = km.fit(docs, stats)
        sparse, dense = results["sparse"], results["dense"]
        assert sparse.assignments() == dense.assignments()
        assert set(sparse.outliers) == set(dense.outliers)
        assert math.isclose(
            sparse.clustering_index, dense.clustering_index,
            rel_tol=1e-9, abs_tol=1e-15,
        )


class TestConvergence:
    def test_converges_before_cap_on_easy_data(self, fitted):
        _, _, result = fitted
        assert result.converged

    def test_iteration_cap_respected(self):
        repo = build_topic_repository(days=4)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        km = NoveltyKMeans(k=3, seed=1, max_iterations=1)
        result = km.fit(stats.documents(), stats)
        assert result.iterations == 1

    def test_g_non_decreasing_under_g_criterion(self, fitted):
        """Greedy ΔG assignment should not reduce G between iterations
        on this stream (each move has non-negative gain)."""
        _, _, result = fitted
        history = result.index_history
        for earlier, later in zip(history, history[1:]):
            assert later >= earlier * (1.0 - 1e-9)

    def test_deterministic_given_seed(self):
        repo = build_topic_repository(days=4)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        docs = stats.documents()
        first = NoveltyKMeans(k=3, seed=9).fit(docs, stats)
        second = NoveltyKMeans(k=3, seed=9).fit(docs, stats)
        assert first.assignments() == second.assignments()


class TestOutliers:
    def test_disconnected_document_becomes_outlier(self):
        repo = build_topic_repository(days=3, docs_per_topic_per_day=2,
                                      topics=["sports", "finance"])
        # a document sharing no vocabulary with anything else
        repo.add_text("loner", 2.5, "xylophone zeppelin quasar "
                                    "xylophone zeppelin quasar")
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=3.0
        )
        km = NoveltyKMeans(k=2, seed=2, reseed_empty=False)
        result = km.fit(stats.documents(), stats)
        assert "loner" in result.outliers

    def test_empty_document_always_outlier(self):
        repo = build_topic_repository(days=3, topics=["sports"])
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=3.0
        )
        empty = make_document("void", 2.0, {})
        stats.observe([empty], at_time=3.0)
        km = NoveltyKMeans(k=2, seed=2)
        result = km.fit(stats.documents(), stats)
        assert "void" in result.outliers


class TestWarmStart:
    def test_initial_assignment_respected_shape(self):
        repo = build_topic_repository(days=4, seed=5)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        docs = stats.documents()
        cold = NoveltyKMeans(k=4, seed=21).fit(docs, stats)
        warm = NoveltyKMeans(k=4, seed=22).fit(
            docs, stats, initial_assignment=cold.assignments()
        )
        # warm start from a converged state should converge immediately
        assert warm.iterations <= cold.iterations

    def test_unknown_docs_in_initial_assignment_ignored(self):
        repo = build_topic_repository(days=3, topics=["sports"])
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=3.0
        )
        docs = stats.documents()
        km = NoveltyKMeans(k=2, seed=1)
        result = km.fit(
            docs, stats,
            initial_assignment={"ghost": 0, docs[0].doc_id: 1},
        )
        assert result.n_documents + len(result.outliers) == len(docs)

    def test_out_of_range_initial_cluster_rejected(self):
        repo = build_topic_repository(days=3, topics=["sports"])
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=3.0
        )
        docs = stats.documents()
        km = NoveltyKMeans(k=2, seed=1)
        with pytest.raises(ConfigurationError):
            km.fit(docs, stats,
                   initial_assignment={docs[0].doc_id: 7})


class TestOutlierRescue:
    def _starved_setup(self):
        """Warm-started clusters holding two topics; a third topic's
        documents arrive and — without rescue — can never win a slot."""
        repo = build_topic_repository(
            days=4, docs_per_topic_per_day=3,
            topics=["sports", "finance"], seed=7,
        )
        # the emerging topic: 9 fresh docs over a disjoint vocabulary
        # (term ids offset far beyond the established repo's ids)
        import random as random_module

        rng = random_module.Random(8)
        docs = repo.documents()
        fresh = []
        for i in range(9):
            counts = {}
            for _ in range(30):
                term_id = 1000 + rng.randint(0, 9)
                counts[term_id] = counts.get(term_id, 0) + 1
            fresh.append(make_document(
                f"sci_{i}", 3.5, counts, topic_id="science"
            ))
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, docs + fresh, at_time=4.0
        )
        # warm start: both slots taken by the established topics
        truth = {d.doc_id: d.topic_id for d in docs}
        warm = {
            d.doc_id: (0 if truth[d.doc_id] == "sports" else 1)
            for d in docs
        }
        return stats, warm, [d.doc_id for d in fresh]

    def test_starvation_without_rescue(self):
        stats, warm, fresh_ids = self._starved_setup()
        km = NoveltyKMeans(k=2, seed=0, rescue_outliers=False)
        result = km.fit(stats.documents(), stats, initial_assignment=warm)
        assert set(fresh_ids) <= set(result.outliers)

    def test_rescue_recovers_emerging_topic(self):
        stats, warm, fresh_ids = self._starved_setup()
        km = NoveltyKMeans(k=2, seed=0, rescue_outliers=True)
        result = km.fit(stats.documents(), stats, initial_assignment=warm)
        assignments = result.assignments()
        rescued = [d for d in fresh_ids if d in assignments]
        assert len(rescued) == len(fresh_ids)
        # they form one coherent cluster
        assert len({assignments[d] for d in rescued}) == 1

    def test_rescue_increases_clustering_index(self):
        stats, warm, _ = self._starved_setup()
        without = NoveltyKMeans(k=2, seed=0, rescue_outliers=False).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        with_rescue = NoveltyKMeans(k=2, seed=0, rescue_outliers=True).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        assert (
            with_rescue.clustering_index
            > without.clustering_index
        )

    def test_rescue_noop_when_no_useful_outliers(self):
        """With ample slots nothing is starved; rescue must not disturb
        a converged clustering."""
        repo = build_topic_repository(days=4, seed=5)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        plain = NoveltyKMeans(k=4, seed=2).fit(stats.documents(), stats)
        rescued = NoveltyKMeans(k=4, seed=2, rescue_outliers=True).fit(
            stats.documents(), stats
        )
        assert rescued.clustering_index >= plain.clustering_index - 1e-12


class TestSplitRepair:
    def _blob_setup(self):
        """A warm start that begins as one merged blob of two topics
        with an empty slot — per-document moves can never split it."""
        repo = build_topic_repository(
            days=4, docs_per_topic_per_day=3,
            topics=["sports", "finance"], seed=12,
        )
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=4.0
        )
        warm = {d.doc_id: 0 for d in repo.documents()}
        truth = {d.doc_id: d.topic_id for d in repo}
        return stats, warm, truth

    def test_blob_persists_without_repair(self):
        stats, warm, truth = self._blob_setup()
        result = NoveltyKMeans(k=2, seed=0, rescue_outliers=False).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        non_empty = result.non_empty_clusters()
        assert len(non_empty) == 1
        assert len({truth[m] for m in non_empty[0][1]}) == 2

    def test_repair_splits_the_blob(self):
        stats, warm, truth = self._blob_setup()
        result = NoveltyKMeans(k=2, seed=0, rescue_outliers=True).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        non_empty = result.non_empty_clusters()
        assert len(non_empty) == 2
        for _, members in non_empty:
            assert len({truth[m] for m in members}) == 1

    def test_repair_raises_g(self):
        stats, warm, _ = self._blob_setup()
        blob = NoveltyKMeans(k=2, seed=0, rescue_outliers=False).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        split = NoveltyKMeans(k=2, seed=0, rescue_outliers=True).fit(
            stats.documents(), stats, initial_assignment=warm
        )
        assert split.clustering_index > blob.clustering_index

    def test_no_empty_slot_no_split(self):
        """Split repair only fires into an empty slot; a full K never
        gets disturbed."""
        stats, warm, _ = self._blob_setup()
        docs = stats.documents()
        # both slots occupied: blob in 0, one doc in 1
        warm = dict(warm)
        warm[docs[0].doc_id] = 1
        km = NoveltyKMeans(k=2, seed=0, rescue_outliers=True,
                           max_iterations=1)
        result = km.fit(docs, stats, initial_assignment=warm)
        assert len(result.non_empty_clusters()) == 2


class TestCriteria:
    def test_avg_criterion_stricter_than_g(self):
        """The literal Δavg_sim criterion must never assign more
        documents than the ΔG criterion on the same input."""
        repo = build_topic_repository(days=6, docs_per_topic_per_day=3,
                                      seed=8)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=6.0
        )
        docs = stats.documents()
        g_result = NoveltyKMeans(k=4, seed=13, criterion="g").fit(docs, stats)
        avg_result = NoveltyKMeans(k=4, seed=13, criterion="avg").fit(
            docs, stats
        )
        assert len(avg_result.outliers) >= len(g_result.outliers)
