"""Cross-engine contract regressions for the assignment sweep.

Pins the three engine-contract guarantees this layer makes to the
clustering loop:

* the matrix engine's Gram-block cache is LRU-bounded (one full
  sweep's worth of blocks), so long-lived engines probing shifting
  document subsets cannot grow it without bound;
* exactly the *empty-vector* documents decide ``(-1, NO_GAIN)`` — a
  non-empty vector whose self-similarity underflows to 0.0 is still
  scored, identically on every engine;
* a novelty decision (``gain <= 0``) removes the document from its
  cluster without re-adding it, and nothing else: no document is ever
  silently dropped from, or duplicated in, the membership accounting.
"""

import math

import pytest

from repro import CorpusStatistics, ForgettingModel, NoveltyKMeans
from repro.core.engines import NO_GAIN, resolve_engine
from repro.vectors.sparse import SparseVector
from tests.conftest import make_document

ENGINES = ("sparse", "dense", "matrix", "pruned")

pytest.importorskip("scipy.sparse", reason="matrix engine requires scipy")


class TestBlockCacheBound:
    def test_cache_stays_bounded_under_shifting_subsets(self):
        from repro.core.engines.matrix import MatrixEngine

        n_docs, block_size = 40, 8
        vectors = {
            f"d{i:03d}": SparseVector({i % 7: 1.0, 7 + i % 5: 0.5})
            for i in range(n_docs)
        }
        engine = MatrixEngine(4, vectors, "g", block_size=block_size)
        limit = math.ceil(n_docs / block_size)
        assert engine._block_cache_limit == limit
        doc_ids = list(vectors)
        # 25 distinct window starts → 25 distinct block keys; an
        # unbounded cache would hold one dense Gram block per key
        for start in range(25):
            engine.best_gains(doc_ids[start:start + 16])
            assert len(engine._block_cache) <= limit
        # the steady-state full sweep still fits and still works
        decisions = engine.best_gains(doc_ids)
        assert len(decisions) == n_docs
        assert len(engine._block_cache) <= limit

    def test_full_sweep_blocks_all_cached(self):
        from repro.core.engines.matrix import MatrixEngine

        vectors = {
            f"d{i:03d}": SparseVector({i % 7: 1.0})
            for i in range(32)
        }
        engine = MatrixEngine(4, vectors, "g", block_size=8)
        engine.best_gains(list(vectors))
        # the cache exists to serve repeated full sweeps: all four
        # blocks of one pass must be resident at once
        assert len(engine._block_cache) == 4


class TestEmptyDocContract:
    def test_empty_and_underflow_docs_agree_across_engines(self):
        vectors = {
            "topical": SparseVector({0: 1.0, 1: 0.5}),
            "other": SparseVector({1: 2.0, 3: 1.0}),
            "empty": SparseVector({}),
            # non-empty, but w⃗·w⃗ underflows to exactly 0.0 — must be
            # scored (it overlaps "topical"), not treated as empty
            "tiny": SparseVector({0: 1e-200, 2: 1e-200}),
        }
        order = ["empty", "tiny"]
        decisions = {}
        for name in ENGINES:
            engine = resolve_engine(name)(2, vectors, "g")
            engine.add(0, "topical")
            engine.add(1, "other")
            decisions[name] = engine.best_gains(order)
        reference = decisions["dense"]
        assert reference[0] == (-1, NO_GAIN)
        assert reference[1][0] == 0 and reference[1][1] > 0.0
        for name in ENGINES:
            assert [d[0] for d in decisions[name]] == [
                d[0] for d in reference
            ], name

    def test_underflow_doc_survives_speculation(self):
        # enough documents that the matrix engine's vectorised
        # fast path (not just the sequential loop) sees the
        # underflowed vector
        vectors = {
            f"d{i:02d}": SparseVector({i % 3: 1.0}) for i in range(30)
        }
        vectors["tiny"] = SparseVector({0: 1e-200})
        vectors["empty"] = SparseVector({})
        order = list(vectors)
        decisions = {}
        for name in ENGINES:
            engine = resolve_engine(name)(3, vectors, "g")
            for i in range(30):
                engine.add(i % 3, f"d{i:02d}")
            # two identical passes: the second is net-stationary, which
            # is what the speculation path accelerates
            engine.best_gains(order)
            decisions[name] = engine.best_gains(order)
        reference = decisions["dense"]
        assert reference[order.index("empty")] == (-1, NO_GAIN)
        assert reference[order.index("tiny")][0] != -1
        for name in ENGINES:
            assert [d[0] for d in decisions[name]] == [
                d[0] for d in reference
            ], name


class TestMembershipConservation:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_novelty_decision_drops_doc_from_members_only(
        self, engine_name
    ):
        # "loner" shares no vocabulary with any cluster: every gain is
        # 0.0 (novel document), so the sweep must leave it unassigned —
        # removed from membership, in no cluster's member list
        vectors = {
            "a": SparseVector({0: 1.0}),
            "b": SparseVector({0: 0.5, 1: 1.0}),
            "c": SparseVector({1: 2.0}),
            "loner": SparseVector({9: 1.0}),
            "empty": SparseVector({}),
        }
        engine = resolve_engine(engine_name)(2, vectors, "g")
        engine.add(0, "a")
        engine.add(0, "b")
        engine.add(1, "c")
        engine.add(1, "loner")  # warm-started into the wrong cluster
        order = ["a", "b", "c", "loner", "empty"]
        decisions = engine.best_gains(order)
        members = engine.members()
        flat = [doc for cluster in members for doc in cluster]
        assert len(flat) == len(set(flat)), "document in two clusters"
        for doc_id, (cluster_id, gain) in zip(order, decisions):
            if gain > 0.0:
                assert doc_id in members[cluster_id]
                assert engine.cluster_of(doc_id) == cluster_id
            else:
                assert all(doc_id not in c for c in members), (
                    f"{doc_id} kept a stale membership after a "
                    f"novelty decision"
                )
                assert engine.cluster_of(doc_id) is None
        assert set(flat) | {"loner", "empty"} == set(order)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_fit_partitions_docs_with_novelty_outliers(self, engine_name):
        docs = [
            make_document("s1", 0.0, {0: 3, 1: 1}),
            make_document("s2", 0.5, {0: 2, 1: 2}),
            make_document("f1", 1.0, {5: 3, 6: 1}),
            make_document("f2", 1.5, {5: 1, 6: 2}),
            make_document("loner", 2.0, {9: 4}),
            make_document("blank", 2.0, {}),
        ]
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        stats = CorpusStatistics.from_scratch(model, docs, at_time=2.0)
        result = NoveltyKMeans(k=2, seed=0, engine=engine_name).fit(
            docs, stats
        )
        clustered = [d for members in result.clusters for d in members]
        assert len(clustered) == len(set(clustered))
        assert set(clustered) | set(result.outliers) == {
            d.doc_id for d in docs
        }
        assert "blank" in result.outliers
