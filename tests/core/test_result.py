"""Tests for the ClusteringResult value object."""

import pytest

from repro import ClusteringResult


@pytest.fixture
def result():
    return ClusteringResult(
        clusters=(("a", "b"), (), ("c",)),
        outliers=("x",),
        clustering_index=1.5,
        index_history=(1.0, 1.5),
        iterations=2,
        converged=True,
    )


class TestAccessors:
    def test_k_counts_empty_slots(self, result):
        assert result.k == 3

    def test_n_documents_excludes_outliers(self, result):
        assert result.n_documents == 3

    def test_non_empty_clusters(self, result):
        assert result.non_empty_clusters() == [(0, ("a", "b")), (2, ("c",))]

    def test_assignments(self, result):
        assert result.assignments() == {"a": 0, "b": 0, "c": 2}

    def test_labels_with_outlier_sentinel(self, result):
        assert result.labels(["a", "x", "c", "unknown"]) == [0, -1, 2, -1]

    def test_cluster_of(self, result):
        assert result.cluster_of("b") == 0
        assert result.cluster_of("x") is None

    def test_summary_mentions_key_numbers(self, result):
        text = result.summary()
        assert "2 non-empty clusters" in text
        assert "3 docs" in text
        assert "+1 outliers" in text
        assert "converged" in text

    def test_frozen(self, result):
        with pytest.raises(AttributeError):
            result.iterations = 5  # type: ignore[misc]
