"""Unit tests for repro.text.Vocabulary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import VocabularyFrozenError
from repro.text import Vocabulary


class TestVocabulary:
    def test_ids_are_dense_and_first_seen(self):
        vocab = Vocabulary()
        assert vocab.add("stock") == 0
        assert vocab.add("market") == 1
        assert vocab.add("stock") == 0

    def test_roundtrip_term_id(self):
        vocab = Vocabulary(["alpha", "beta"])
        assert vocab.term(vocab.id("beta")) == "beta"

    def test_id_raises_for_unknown(self):
        with pytest.raises(KeyError):
            Vocabulary().id("missing")

    def test_get_with_default(self):
        vocab = Vocabulary(["x"])
        assert vocab.get("x") == 0
        assert vocab.get("missing") == -1
        assert vocab.get("missing", default=99) == 99

    def test_contains_and_len(self):
        vocab = Vocabulary(["a1", "b1"])
        assert "a1" in vocab
        assert "c1" not in vocab
        assert len(vocab) == 2

    def test_iteration_order_matches_ids(self):
        vocab = Vocabulary(["z1", "a1", "m1"])
        assert list(vocab) == ["z1", "a1", "m1"]

    def test_add_counts_maps_terms_to_ids(self):
        vocab = Vocabulary()
        mapped = vocab.add_counts({"cat": 2, "dog": 1})
        assert mapped == {vocab.id("cat"): 2, vocab.id("dog"): 1}

    def test_add_counts_grows_vocabulary(self):
        vocab = Vocabulary(["cat"])
        vocab.add_counts({"dog": 1})
        assert "dog" in vocab

    def test_duplicate_constructor_terms_deduplicated(self):
        vocab = Vocabulary(["a1", "a1", "b1"])
        assert len(vocab) == 2


class TestFreezing:
    def test_freeze_blocks_new_terms(self):
        vocab = Vocabulary(["known"])
        vocab.freeze()
        with pytest.raises(VocabularyFrozenError):
            vocab.add("new")

    def test_freeze_allows_existing_terms(self):
        vocab = Vocabulary(["known"])
        vocab.freeze()
        assert vocab.add("known") == 0

    def test_frozen_property(self):
        vocab = Vocabulary()
        assert not vocab.frozen
        vocab.freeze()
        assert vocab.frozen


class TestVocabularyProperties:
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    max_size=50))
    def test_ids_bijective(self, terms):
        vocab = Vocabulary()
        for term in terms:
            vocab.add(term)
        assert len(vocab) == len(set(terms))
        for term in set(terms):
            assert vocab.term(vocab.id(term)) == term

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=50))
    def test_ids_contiguous_from_zero(self, terms):
        vocab = Vocabulary(terms)
        ids = sorted(vocab.id(t) for t in set(terms))
        assert ids == list(range(len(ids)))
