"""Unit tests for the from-scratch Porter stemmer.

Known-pair cases are taken from Porter's 1980 article examples and the
standard reference vocabulary; property tests assert structural
invariants (idempotence on stems of stems is NOT guaranteed by Porter,
so we assert weaker, true properties).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import PorterStemmer, stem

# (input, expected stem) — spot checks across all algorithm steps.
KNOWN_PAIRS = [
    # step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    # step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    # step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # step 5
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
    # full news-wire words
    ("elections", "elect"),
    ("government", "govern"),
    ("bombing", "bomb"),
    ("crisis", "crisi"),
    ("economic", "econom"),
    ("settlement", "settlement"),
]


@pytest.mark.parametrize("word,expected", KNOWN_PAIRS)
def test_known_pairs(word, expected):
    assert stem(word) == expected


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert stem("a") == "a"
        assert stem("at") == "at"
        assert stem("") == ""

    def test_three_letter_words_mostly_stable(self):
        assert stem("sky") == "sky"
        assert stem("was") == "wa"  # classic Porter quirk

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            stem(123)  # type: ignore[arg-type]

    def test_cache_returns_same_result(self):
        stemmer = PorterStemmer(cache=True)
        first = stemmer.stem("relational")
        second = stemmer.stem("relational")
        assert first == second == "relat"

    def test_uncached_matches_cached(self):
        cached = PorterStemmer(cache=True)
        uncached = PorterStemmer(cache=False)
        for word, _ in KNOWN_PAIRS:
            assert cached.stem(word) == uncached.stem(word)

    def test_callable_protocol(self):
        stemmer = PorterStemmer()
        assert stemmer("running") == stemmer.stem("running")


class TestStemmerProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                   min_size=1, max_size=30))
    def test_never_raises_never_grows(self, word):
        result = stem(word)
        assert isinstance(result, str)
        assert len(result) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                   min_size=3, max_size=30))
    def test_deterministic(self, word):
        assert stem(word) == stem(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                   min_size=1, max_size=30))
    def test_output_is_lowercase_alpha(self, word):
        assert all(ch.islower() for ch in stem(word) if ch.isalpha())

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                   min_size=1, max_size=2))
    def test_one_and_two_letter_words_unchanged(self, word):
        assert stem(word) == word

    @given(st.sampled_from([w for w, _ in KNOWN_PAIRS]))
    def test_same_word_same_stem_across_instances(self, word):
        assert PorterStemmer().stem(word) == PorterStemmer().stem(word)


class TestMemoizedStemmer:
    def test_same_stems_as_wrapped(self):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer()
        porter = PorterStemmer()
        for word in ("relational", "conflated", "caresses", "sky", "ab"):
            assert memo(word) == porter(word)

    def test_hit_miss_accounting(self):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer()
        memo("running")
        memo("running")
        memo("jumping")
        info = memo.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["currsize"] == 2

    def test_lru_eviction_bounds_cache(self):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer(maxsize=3)
        for word in ("alpha", "bravo", "charlie", "delta"):
            memo(word)
        info = memo.cache_info()
        assert info["currsize"] == 3
        memo("alpha")  # evicted (least recent) -> a fresh miss
        assert memo.cache_info()["misses"] == 5

    def test_recently_used_survives_eviction(self):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer(maxsize=2)
        memo("alpha")
        memo("bravo")
        memo("alpha")  # refresh alpha
        memo("charlie")  # evicts bravo, not alpha
        hits_before = memo.cache_info()["hits"]
        memo("alpha")
        assert memo.cache_info()["hits"] == hits_before + 1

    def test_cache_clear_resets(self):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer()
        memo("running")
        memo.cache_clear()
        info = memo.cache_info()
        assert info == {"hits": 0, "misses": 0,
                        "maxsize": 1 << 16, "currsize": 0}

    def test_invalid_maxsize_rejected(self):
        from repro.text.stemmer import MemoizedStemmer

        with pytest.raises(ValueError, match="maxsize"):
            MemoizedStemmer(maxsize=0)

    def test_picklable(self):
        import pickle

        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer()
        memo("running")
        clone = pickle.loads(pickle.dumps(memo))
        assert clone("running") == memo("running")

    @given(st.text(alphabet=st.characters(min_codepoint=97,
                                          max_codepoint=122),
                   min_size=1, max_size=12))
    def test_memo_never_changes_the_answer(self, word):
        from repro.text.stemmer import MemoizedStemmer

        memo = MemoizedStemmer(maxsize=8)
        uncached = PorterStemmer(cache=False)
        assert memo(word) == uncached(word) == memo(word)
