"""Unit tests for repro.text.tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.text import Tokenizer, tokenize


class TestBasicTokenization:
    def test_splits_on_whitespace(self):
        assert tokenize("asian markets fell") == ["asian", "markets", "fell"]

    def test_lowercases(self):
        assert tokenize("Asian MARKETS Fell") == ["asian", "markets", "fell"]

    def test_strips_punctuation(self):
        assert tokenize("Hello, world! (Really?)") == [
            "hello", "world", "really",
        ]

    def test_keeps_internal_apostrophe(self):
        assert tokenize("o'brien's") == ["o'brien's"]

    def test_keeps_internal_hyphen(self):
        assert tokenize("mid-east peace") == ["mid-east", "peace"]

    def test_strips_leading_trailing_apostrophe(self):
        assert tokenize("'quoted'") == ["quoted"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize(" \t\n ") == []

    def test_punctuation_only(self):
        assert tokenize("... !!! ???") == []

    def test_unicode_text_keeps_ascii_tokens(self):
        assert tokenize("café résumé news") == [
            "caf", "sum", "news",
        ]

    def test_order_preserved(self):
        assert tokenize("cc bb aa") == ["cc", "bb", "aa"]

    def test_repeated_tokens_kept(self):
        assert tokenize("spam spam spam") == ["spam"] * 3


class TestNumberHandling:
    def test_year_kept_by_default(self):
        assert "1998" in tokenize("the 1998 olympics")

    def test_short_number_dropped_by_default(self):
        assert tokenize("12 teams") == ["teams"]

    def test_keep_numbers_false_drops_all_digit_tokens(self):
        tok = Tokenizer(keep_numbers=False)
        assert tok.tokens("1998 olympics 42") == ["olympics"]

    def test_min_number_length_configurable(self):
        tok = Tokenizer(min_number_length=2)
        assert tok.tokens("12 teams") == ["12", "teams"]

    def test_alphanumeric_token_not_treated_as_number(self):
        assert tokenize("b2b sales") == ["b2b", "sales"]


class TestConfiguration:
    def test_min_length_filters_short_tokens(self):
        tok = Tokenizer(min_length=4)
        assert tok.tokens("the cat meowed") == ["meowed"]

    def test_min_length_one_keeps_single_letters(self):
        tok = Tokenizer(min_length=1)
        assert tok.tokens("a b c") == ["a", "b", "c"]

    def test_invalid_min_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Tokenizer(min_length=0)

    def test_invalid_min_number_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Tokenizer(min_number_length=-1)

    def test_non_string_input_rejected(self):
        with pytest.raises(TypeError):
            tokenize(42)  # type: ignore[arg-type]

    def test_iter_tokens_is_lazy(self):
        tok = Tokenizer()
        iterator = tok.iter_tokens("one two")
        assert next(iterator) == "one"
        assert next(iterator) == "two"


class TestTokenizerProperties:
    @given(st.text(max_size=200))
    def test_never_raises_and_tokens_are_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()

    @given(st.text(max_size=200))
    def test_tokens_meet_min_length(self, text):
        tok = Tokenizer(min_length=3)
        for token in tok.tokens(text):
            assert len(token) >= 3

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=2, max_size=20))
    def test_pure_word_roundtrips(self, word):
        assert tokenize(word) == [word]

    @given(st.lists(st.text(alphabet="abcdefg", min_size=2, max_size=8),
                    max_size=20))
    def test_token_count_matches_word_count(self, words):
        text = " ".join(words)
        assert len(tokenize(text)) == len(words)
