"""Unit tests for the stop-word list."""

from repro.text import DEFAULT_STOPWORDS, is_stopword


class TestStopwords:
    def test_common_function_words_present(self):
        for word in ("the", "and", "of", "to", "is", "was", "because"):
            assert is_stopword(word), word

    def test_contractions_present(self):
        for word in ("don't", "won't", "isn't", "it's"):
            assert is_stopword(word), word

    def test_news_wire_extras_present(self):
        for word in ("mr", "mrs", "monday", "yesterday"):
            assert is_stopword(word), word

    def test_content_words_absent(self):
        for word in ("market", "election", "olympics", "iraq", "tobacco"):
            assert not is_stopword(word), word

    def test_case_sensitive_lowercase_only(self):
        # the pipeline lowercases before the stop check
        assert not is_stopword("The")

    def test_frozen(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)

    def test_extension_pattern(self):
        extended = DEFAULT_STOPWORDS | {"reuters"}
        assert "reuters" in extended
        assert "reuters" not in DEFAULT_STOPWORDS

    def test_no_empty_entries(self):
        assert "" not in DEFAULT_STOPWORDS
        assert all(word == word.strip() for word in DEFAULT_STOPWORDS)
