"""Unit tests for repro.text.TextPipeline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import TextPipeline, Tokenizer


class TestPipelineStages:
    def test_full_pipeline(self):
        tf = TextPipeline().term_frequencies(
            "The markets rallied; markets rose."
        )
        assert tf == {"market": 2, "ralli": 1, "rose": 1}

    def test_stopwords_removed_before_stemming(self):
        # "was" is a stopword; if stemmed first it would become "wa"
        assert TextPipeline().terms("was") == []

    def test_no_stemmer(self):
        pipeline = TextPipeline(stemmer=None)
        assert pipeline.terms("markets rallied") == ["markets", "rallied"]

    def test_custom_stopwords(self):
        pipeline = TextPipeline(stopwords=frozenset({"markets"}),
                                stemmer=None)
        assert pipeline.terms("the markets fell") == ["the", "fell"]

    def test_empty_stopword_set_keeps_everything(self):
        pipeline = TextPipeline(stopwords=frozenset(), stemmer=None)
        assert pipeline.terms("the cat") == ["the", "cat"]

    def test_custom_tokenizer(self):
        pipeline = TextPipeline(tokenizer=Tokenizer(min_length=6),
                                stemmer=None)
        assert pipeline.terms("short longerword") == ["longerword"]

    def test_empty_text(self):
        assert TextPipeline().term_frequencies("") == {}

    def test_terms_preserve_order(self):
        assert TextPipeline(stemmer=None).terms("zebra apple") == [
            "zebra", "apple",
        ]

    def test_batch(self):
        batch = TextPipeline().batch_term_frequencies(
            ["markets fell", "markets rose"]
        )
        assert len(batch) == 2
        assert batch[0]["market"] == 1


class TestNgrams:
    def test_bigrams_appended(self):
        pipeline = TextPipeline(stemmer=None, max_ngram=2)
        assert pipeline.terms("stock market crash") == [
            "stock", "market", "crash", "stock_market", "market_crash",
        ]

    def test_trigram(self):
        pipeline = TextPipeline(stemmer=None, max_ngram=3)
        terms = pipeline.terms("big bad wolf")
        assert "big_bad_wolf" in terms
        assert "big_bad" in terms

    def test_stopword_breaks_window_semantics(self):
        pipeline = TextPipeline(stemmer=None, max_ngram=2)
        # "of" is removed, the bigram bridges the gap by design
        assert "bank_england" in pipeline.terms("bank of england")

    def test_short_text_no_ngrams(self):
        pipeline = TextPipeline(stemmer=None, max_ngram=2)
        assert pipeline.terms("solo") == ["solo"]

    def test_ngrams_stemmed_components(self):
        pipeline = TextPipeline(max_ngram=2)
        assert "market_ralli" in pipeline.terms("markets rallied")

    def test_invalid_max_ngram(self):
        with pytest.raises(ValueError):
            TextPipeline(max_ngram=0)

    def test_counts_include_ngrams(self):
        pipeline = TextPipeline(stemmer=None, max_ngram=2)
        counts = pipeline.term_frequencies("ab cd ab cd")
        assert counts["ab_cd"] == 2
        assert counts["cd_ab"] == 1


class TestPipelineProperties:
    @given(st.text(max_size=300))
    def test_counts_sum_to_term_sequence_length(self, text):
        pipeline = TextPipeline()
        terms = pipeline.terms(text)
        counts = pipeline.term_frequencies(text)
        assert sum(counts.values()) == len(terms)
        assert set(counts) == set(terms)

    @given(st.text(max_size=300))
    def test_all_counts_positive(self, text):
        for count in TextPipeline().term_frequencies(text).values():
            assert count >= 1


class TestBatchTermFrequencies:
    TEXTS = [
        "Asian markets fell sharply in early trading.",
        "The central bank held interest rates steady.",
        "Stocks rallied; traders cheered the rally.",
        "",
        "Bank of England lending rates rose again today.",
    ] * 30

    def test_serial_matches_per_text_calls(self):
        pipeline = TextPipeline()
        assert pipeline.batch_term_frequencies(self.TEXTS) == [
            pipeline.term_frequencies(text) for text in self.TEXTS
        ]

    def test_parallel_matches_serial(self):
        pipeline = TextPipeline()
        serial = pipeline.batch_term_frequencies(self.TEXTS)
        parallel = pipeline.batch_term_frequencies(
            self.TEXTS, jobs=2, chunk_size=16
        )
        assert parallel == serial

    def test_jobs_one_and_zero_stay_serial(self):
        pipeline = TextPipeline()
        expected = pipeline.batch_term_frequencies(self.TEXTS[:5])
        assert pipeline.batch_term_frequencies(self.TEXTS[:5], jobs=1) \
            == expected
        assert pipeline.batch_term_frequencies(self.TEXTS[:5], jobs=0) \
            == expected

    def test_unpicklable_stage_falls_back_to_serial(self):
        stems = {}
        pipeline = TextPipeline(stemmer=lambda w: stems.setdefault(w, w))
        result = pipeline.batch_term_frequencies(
            self.TEXTS, jobs=2, chunk_size=16
        )
        assert result == [
            pipeline.term_frequencies(text) for text in self.TEXTS
        ]

    def test_emits_span_and_cache_gauges(self):
        from repro.obs import InMemoryRecorder, use_recorder

        pipeline = TextPipeline()
        recorder = InMemoryRecorder()
        with use_recorder(recorder):
            pipeline.batch_term_frequencies(self.TEXTS[:5])
        names = {event.name for event in recorder.events}
        assert "text.batch_terms" in names
        assert "text.stemmer_cache.hits" in names
        assert "text.stemmer_cache.misses" in names

    def test_default_stemmer_is_shared_memo(self):
        from repro.text.stemmer import MemoizedStemmer

        first = TextPipeline()
        second = TextPipeline()
        assert isinstance(first.stemmer, MemoizedStemmer)
        assert first.stemmer is second.stemmer

    def test_stemmer_none_still_disables_stemming(self):
        pipeline = TextPipeline(stemmer=None)
        assert pipeline.term_frequencies("markets rallied") == {
            "markets": 1, "rallied": 1,
        }
