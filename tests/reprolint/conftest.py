"""Make the ``tools/`` directory importable so tests can use reprolint."""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"
if str(_TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(_TOOLS_DIR))
