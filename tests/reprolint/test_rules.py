"""Fixture-file suite for reprolint.

Each rule gets (a) a minimal violating snippet that must fire, (b) the
allowlisted pattern that must stay quiet, and (c) a suppression-comment
check. The snippets are linted in-memory via :func:`lint_source` with a
crafted ``path`` argument, because every rule scopes itself by path.
"""

from __future__ import annotations

from reprolint import lint_source

CORE_PATH = "src/repro/core/example.py"
FORGETTING_PATH = "src/repro/forgetting/example.py"
ENGINES_PATH = "src/repro/core/engines/example.py"
BACKENDS_PATH = "src/repro/forgetting/backends/example.py"
NEUTRAL_PATH = "src/repro/eval/example.py"
TEST_PATH = "tests/core/test_example.py"


def codes(path, source):
    return [violation.code for violation in lint_source(path, source)]


# -- REP001: no wall-clock in the numerics --------------------------------

def test_rep001_fires_on_time_time_in_core():
    assert "REP001" in codes(CORE_PATH, "import time\nt = time.time()\n")


def test_rep001_fires_on_aliased_datetime_now():
    source = "from datetime import datetime as dt\nstamp = dt.now()\n"
    assert "REP001" in codes(FORGETTING_PATH, source)


def test_rep001_fires_on_from_import_of_time():
    source = "from time import time\nt = time()\n"
    assert "REP001" in codes(CORE_PATH, source)


def test_rep001_allows_perf_counter():
    # duration timers measure elapsed seconds, not positions on τ
    source = "import time\nt0 = time.perf_counter()\n"
    assert codes(CORE_PATH, source) == []


def test_rep001_ignores_wall_clock_outside_numeric_packages():
    assert codes("src/repro/obs/sinks.py", "import time\nt = time.time()\n") == []


def test_rep001_suppression_comment():
    source = "import time\nt = time.time()  # reprolint: disable=REP001\n"
    assert codes(CORE_PATH, source) == []


# -- REP002: no float-literal equality ------------------------------------

def test_rep002_fires_on_float_equality():
    assert "REP002" in codes(NEUTRAL_PATH, "ok = x == 0.3\n")


def test_rep002_fires_on_not_equal_and_negative_literal():
    assert "REP002" in codes(NEUTRAL_PATH, "ok = x != -2.5\n")


def test_rep002_allows_zero_sentinel():
    # the structural invariant of vectors/sparse.py: zeros are dropped
    assert codes("src/repro/vectors/sparse.py", "ok = value == 0.0\n") == []


def test_rep002_allows_decay_noop_in_forgetting_layer():
    source = "skip = factor == 1.0\n"
    assert codes("src/repro/forgetting/backends/dict_backend.py", source) == []


def test_rep002_fires_on_one_outside_decay_allowlist():
    assert "REP002" in codes(NEUTRAL_PATH, "ok = x == 1.0\n")


def test_rep002_exempts_test_code():
    # parity suites assert exact bit-equality between engines on purpose
    assert codes(TEST_PATH, "assert a == 0.125\n") == []


def test_rep002_suppression_comment():
    source = "ok = x == 0.3  # reprolint: disable=REP002\n"
    assert codes(NEUTRAL_PATH, source) == []


# -- REP003: registry-only construction -----------------------------------

def test_rep003_fires_on_direct_engine_instantiation():
    source = (
        "from repro.core.engines.dense import DenseEngine\n"
        "engine = DenseEngine(3, {})\n"
    )
    assert "REP003" in codes(CORE_PATH, source)


def test_rep003_fires_on_direct_backend_instantiation():
    source = "backend = ColumnarStatisticsBackend()\n"
    assert "REP003" in codes(NEUTRAL_PATH, source)


def test_rep003_allows_resolve_calls():
    source = (
        "from repro.core.engines import resolve_engine\n"
        "engine = resolve_engine('dense', 3, {})\n"
    )
    assert codes(CORE_PATH, source) == []


def test_rep003_allows_home_package_and_tests():
    source = "engine = DenseEngine(3, {})\n"
    assert codes(ENGINES_PATH, source) == []
    assert codes(BACKENDS_PATH, "b = DictStatisticsBackend()\n") == []
    assert codes(TEST_PATH, source) == []


def test_rep003_suppression_comment():
    source = "engine = DenseEngine(3, {})  # reprolint: disable=REP003\n"
    assert codes(CORE_PATH, source) == []


def test_rep003_fires_on_pipeline_construction_outside_library():
    source = (
        "from repro import IncrementalClusterer\n"
        "clusterer = IncrementalClusterer(model, k=4)\n"
    )
    assert "REP003" in codes("apps/indexer/main.py", source)
    assert "REP003" in codes(
        "scripts/run.py", "c = NonIncrementalClusterer(model, k=4)\n"
    )


def test_rep003_allows_pipeline_construction_inside_library_and_tests():
    source = "clusterer = IncrementalClusterer(model, config)\n"
    assert codes("src/repro/api.py", source) == []
    assert codes(NEUTRAL_PATH, source) == []
    assert codes(TEST_PATH, source) == []


def test_rep003_pipeline_message_points_to_api():
    violations = lint_source(
        "apps/main.py", "c = IncrementalClusterer(model, k=4)\n"
    )
    assert any(
        "repro.api.open_stream" in violation.message
        for violation in violations
    )


# -- REP004: pipeline entry points open spans -----------------------------

SPANLESS_ENTRY = (
    "class IncrementalClusterer:\n"
    "    def process_batch(self, docs):\n"
    "        return docs\n"
    "class NonIncrementalClusterer:\n"
    "    def process_batch(self, docs):\n"
    "        with Span(recorder, 'cluster'):\n"
    "            return docs\n"
)


def test_rep004_fires_on_spanless_entry_point():
    violations = lint_source("src/repro/core/incremental.py", SPANLESS_ENTRY)
    rep004 = [v for v in violations if v.code == "REP004"]
    assert len(rep004) == 1
    assert "IncrementalClusterer.process_batch" in rep004[0].message


def test_rep004_fires_when_entry_point_disappears():
    source = "class IncrementalClusterer:\n    pass\n"
    violations = lint_source("src/repro/core/incremental.py", source)
    assert any(
        v.code == "REP004" and "not found" in v.message for v in violations
    )


def test_rep004_accepts_recorder_span_method():
    source = (
        "class TextPipeline:\n"
        "    def batch_term_frequencies(self, texts):\n"
        "        with resolve(None).span('text.batch_terms'):\n"
        "            return [self.term_frequencies(t) for t in texts]\n"
    )
    violations = lint_source("src/repro/text/pipeline.py", source)
    assert [v for v in violations if v.code == "REP004"] == []


def test_rep004_ignores_unlisted_files():
    assert codes(NEUTRAL_PATH, "def process_batch():\n    pass\n") == []


def test_rep004_file_suppression_comment():
    source = "# reprolint: disable-file=REP004\n" + SPANLESS_ENTRY
    violations = lint_source("src/repro/core/incremental.py", source)
    assert [v for v in violations if v.code == "REP004"] == []


# -- REP005: CorpusStatistics encapsulation -------------------------------

def test_rep005_fires_on_private_attribute_write():
    assert "REP005" in codes(NEUTRAL_PATH, "stats._now = 4.0\n")


def test_rep005_fires_on_private_mapping_mutation():
    source = "clusterer.statistics._docs.update({'d': 1})\n"
    assert "REP005" in codes(NEUTRAL_PATH, source)


def test_rep005_fires_on_subscript_and_del():
    assert "REP005" in codes(NEUTRAL_PATH, "statistics._docs['d'] = doc\n")
    assert "REP005" in codes(NEUTRAL_PATH, "del statistics._docs['d']\n")


def test_rep005_allows_public_api_and_reads():
    source = (
        "stats.observe(batch, at_time=now)\n"
        "count = len(stats._docs)\n"
        "stats.recorder = recorder\n"
    )
    assert codes(NEUTRAL_PATH, source) == []


def test_rep005_allows_forgetting_package_and_tests():
    source = "self._now = 4.0\nstats._now = 4.0\n"
    assert codes(FORGETTING_PATH, source) == []
    assert codes(TEST_PATH, source) == []


def test_rep005_suppression_comment():
    source = "stats._now = 4.0  # reprolint: disable=REP005\n"
    assert codes(NEUTRAL_PATH, source) == []


def test_rep004_covers_durability_entry_points():
    # persistence and recovery are listed entry points now: a spanless
    # recover() must fire just like a spanless process_batch()
    source = "def recover(path):\n    return path\n"
    violations = lint_source("src/repro/durability/recovery.py", source)
    assert any(v.code == "REP004" for v in violations)
    spanned = (
        "def recover(path):\n"
        "    with Span(recorder, 'durability.recover'):\n"
        "        return path\n"
    )
    violations = lint_source("src/repro/durability/recovery.py", spanned)
    assert [v for v in violations if v.code == "REP004"] == []


# -- REP006: checkpoint/journal writes must be atomic ----------------------

DURABILITY_PATH = "src/repro/durability/atomic.py"


def test_rep006_fires_on_open_w_of_checkpoint_path():
    source = (
        "import json\n"
        "with open(checkpoint_path, 'w') as handle:\n"
        "    json.dump(state, handle)\n"
    )
    assert "REP006" in codes(NEUTRAL_PATH, source)


def test_rep006_fires_on_mode_keyword_and_append():
    assert "REP006" in codes(
        NEUTRAL_PATH, "h = open(journal_file, mode='a')\n"
    )


def test_rep006_fires_on_pathlib_open_and_write_text():
    assert "REP006" in codes(
        NEUTRAL_PATH, "h = self.checkpoint_path.open('w')\n"
    )
    assert "REP006" in codes(
        NEUTRAL_PATH, "state.journal.write_text(payload)\n"
    )


def test_rep006_fires_inside_checkpoint_named_function():
    # the path variable gives nothing away, but the function name does
    source = (
        "def save_checkpoint(target):\n"
        "    with open(target, 'w') as handle:\n"
        "        handle.write(payload)\n"
    )
    assert "REP006" in codes(NEUTRAL_PATH, source)


def test_rep006_fires_on_string_literal_path():
    source = "h = open('state.checkpoint.json', 'w')\n"
    assert "REP006" in codes(NEUTRAL_PATH, source)


def test_rep006_allows_reads_and_unrelated_writes():
    source = (
        "a = open(checkpoint_path)\n"
        "b = open(checkpoint_path, 'r')\n"
        "c = open(report_path, 'w')\n"
        "d = output.write_text(payload)\n"
    )
    assert codes(NEUTRAL_PATH, source) == []


def test_rep006_allows_durability_package_and_tests():
    source = "h = open(checkpoint_path, 'w')\n"
    assert codes(DURABILITY_PATH, source) == []
    assert codes(TEST_PATH, source) == []


def test_rep006_suppression_comment():
    source = (
        "h = open(checkpoint_path, 'w')  # reprolint: disable=REP006\n"
    )
    assert codes(NEUTRAL_PATH, source) == []


# -- engine mechanics ------------------------------------------------------

def test_syntax_error_reports_rep000():
    violations = lint_source(NEUTRAL_PATH, "def broken(:\n")
    assert [v.code for v in violations] == ["REP000"]


def test_disable_all_suppresses_everything():
    source = "# reprolint: disable-file=all\nimport time\nt = time.time()\n"
    assert codes(CORE_PATH, source) == []


def test_marker_inside_string_is_inert():
    source = 's = "# reprolint: disable=REP001"\nimport time\nt = time.time()\n'
    assert "REP001" in codes(CORE_PATH, source)


def test_violation_render_format():
    violations = lint_source(CORE_PATH, "import time\nt = time.time()\n")
    rendered = violations[0].render()
    assert rendered.startswith(f"{CORE_PATH}:2:")
    assert "REP001" in rendered
