"""The gate itself: the real tree must be reprolint-clean.

This mirrors the CI job (``python -m reprolint src tests``) so a
violation fails locally before it fails in CI, and exercises the CLI
surface (exit codes, ``--select``, ``--list-rules``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from reprolint import ALL_RULES, lint_paths
from reprolint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_reprolint_clean():
    violations = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(REPO_ROOT / "src" / "repro" / "obs")]) == 0
    assert capsys.readouterr().out == ""


def test_cli_exit_one_on_violation(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n")
    assert main([str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "REP001" in captured.out
    assert "1 violation" in captured.err


def test_cli_select_limits_rules(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\nok = x == 0.3\n")
    assert main(["--select", "REP002", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "REP002" in captured.out
    assert "REP001" not in captured.out


def test_cli_rejects_unknown_rule_code(tmp_path):
    with pytest.raises(SystemExit):
        main(["--select", "REP999", str(tmp_path)])


def test_cli_list_rules_prints_rationales(capsys):
    assert main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in output
    assert "Eq. 1" in output  # rationales cite the paper


def test_every_rule_has_metadata():
    codes = [rule.code for rule in ALL_RULES]
    assert codes == sorted(codes) and len(set(codes)) == len(codes)
    for rule in ALL_RULES:
        assert rule.code.startswith("REP")
        assert rule.name
        assert len(rule.rationale) > 80, rule.code
