"""Unit and property tests for incremental corpus statistics (§3, §5.1).

The load-bearing property: after any sequence of observe/advance/expire
operations, every statistic equals what a from-scratch rebuild computes
at the same clock — Eq. 27-29 are exact, not approximate.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusStatistics, ForgettingModel
from repro.exceptions import (
    ConfigurationError,
    EmptyCorpusError,
    UnknownDocumentError,
)
from tests.conftest import make_document


def doc_batch(prefix, start_id, n, timestamp, terms_range=8):
    return [
        make_document(
            f"{prefix}{start_id + i}",
            timestamp,
            {(start_id + i + j) % terms_range: 1 + j for j in range(3)},
        )
        for i in range(n)
    ]


@pytest.fixture
def model():
    return ForgettingModel(half_life=7.0, life_span=14.0)


class TestWeights:
    def test_new_document_weight_is_one(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        assert stats.dw("a") == 1.0

    def test_decay_follows_eq27(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        stats.advance_to(7.0)
        assert math.isclose(stats.dw("a"), 0.5)
        stats.advance_to(14.0)
        assert math.isclose(stats.dw("a"), 0.25)

    def test_tdw_follows_eq28(self, model):
        """tdw|τ+Δτ = λ^Δτ · tdw|τ + m'."""
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        tdw_before = stats.tdw
        stats.observe(
            [make_document("b", 7.0, {0: 1}),
             make_document("c", 7.0, {1: 1})],
            at_time=7.0,
        )
        expected = model.decay_over(7.0) * tdw_before + 2
        assert math.isclose(stats.tdw, expected)

    def test_backdated_document_gets_decayed_weight(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=7.0)
        assert math.isclose(stats.dw("a"), 0.5)

    def test_future_document_rejected(self, model):
        stats = CorpusStatistics(model)
        with pytest.raises(ConfigurationError):
            stats.observe([make_document("a", 5.0, {0: 1})], at_time=0.0)

    def test_clock_cannot_go_backwards(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=5.0)
        with pytest.raises(ConfigurationError):
            stats.advance_to(4.0)

    def test_duplicate_insert_rejected(self, model):
        stats = CorpusStatistics(model)
        doc = make_document("a", 0.0, {0: 1})
        stats.observe([doc], at_time=0.0)
        with pytest.raises(ConfigurationError):
            stats.observe([doc], at_time=1.0)


class TestProbabilities:
    def test_pr_document_sums_to_one(self, model):
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 5, 0.0), at_time=0.0)
        stats.observe(doc_batch("d", 5, 3, 4.0), at_time=4.0)
        total = sum(stats.pr_document(i) for i in stats.doc_ids())
        assert math.isclose(total, 1.0)

    def test_pr_term_sums_to_one(self, model):
        """Σ_k Pr(t_k) = Σ_k Σ_i Pr(t_k|d_i)Pr(d_i) = Σ_i Pr(d_i) = 1."""
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 6, 0.0), at_time=0.0)
        stats.advance_to(3.0)
        total = sum(stats.term_probabilities().values())
        assert math.isclose(total, 1.0)

    def test_newer_document_more_probable(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("old", 0.0, {0: 1})], at_time=0.0)
        stats.observe([make_document("new", 7.0, {0: 1})], at_time=7.0)
        assert stats.pr_document("new") > stats.pr_document("old")
        assert math.isclose(
            stats.pr_document("new") / stats.pr_document("old"), 2.0
        )

    def test_pr_unseen_term_zero(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        assert stats.pr_term(999) == 0.0
        assert stats.idf(999) == 0.0

    def test_pr_document_empty_corpus_raises(self, model):
        with pytest.raises((EmptyCorpusError, UnknownDocumentError)):
            CorpusStatistics(model).pr_document("a")

    def test_idf_definition(self, model):
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 4, 0.0), at_time=0.0)
        for term_id in stats.term_ids():
            assert math.isclose(
                stats.idf(term_id),
                1.0 / math.sqrt(stats.pr_term(term_id)),
            )


class TestRemovalAndExpiry:
    def test_remove_reverses_contributions(self, model):
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 4, 0.0), at_time=0.0)
        reference = CorpusStatistics.from_scratch(
            model, stats.documents()[1:], at_time=0.0
        )
        stats.remove("d0")
        assert math.isclose(stats.tdw, reference.tdw)
        for term_id in reference.term_ids():
            assert math.isclose(
                stats.pr_term(term_id), reference.pr_term(term_id),
                rel_tol=1e-9,
            )

    def test_remove_unknown_raises(self, model):
        with pytest.raises(UnknownDocumentError):
            CorpusStatistics(model).remove("ghost")

    def test_expire_drops_only_below_epsilon(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("old", 0.0, {0: 1})], at_time=0.0)
        stats.observe([make_document("mid", 7.0, {0: 1})], at_time=7.0)
        stats.observe([make_document("new", 15.0, {0: 1})], at_time=15.0)
        # at t=15: old has λ^15 < ε=λ^14; mid has λ^8 > ε
        expired = stats.expire()
        assert [d.doc_id for d in expired] == ["old"]
        assert set(stats.doc_ids()) == {"mid", "new"}

    def test_from_scratch_applies_expiry(self, model):
        docs = [
            make_document("old", 0.0, {0: 1}),
            make_document("new", 20.0, {0: 1}),
        ]
        stats = CorpusStatistics.from_scratch(model, docs, at_time=20.0)
        assert stats.doc_ids() == ["new"]

    def test_term_vanishes_with_last_holder(self, model):
        stats = CorpusStatistics(model)
        stats.observe([make_document("a", 0.0, {42: 3})], at_time=0.0)
        stats.remove("a")
        assert stats.pr_term(42) == 0.0


class TestIncrementalEqualsFromScratch:
    def test_simple_sequence(self, model):
        incremental = CorpusStatistics(model)
        all_docs = []
        for day, n in ((0.0, 3), (2.0, 4), (5.0, 2), (9.0, 5)):
            batch = doc_batch("d", len(all_docs), n, day)
            all_docs.extend(batch)
            incremental.observe(batch, at_time=day)
            incremental.expire()
            reference = CorpusStatistics.from_scratch(
                model, all_docs, at_time=day
            )
            assert set(incremental.doc_ids()) == set(reference.doc_ids())
            assert math.isclose(incremental.tdw, reference.tdw,
                                rel_tol=1e-9)
            for term_id in reference.term_ids():
                assert math.isclose(
                    incremental.pr_term(term_id),
                    reference.pr_term(term_id),
                    rel_tol=1e-9,
                )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_random_streams(self, steps):
        """Any observe/expire schedule matches a from-scratch rebuild."""
        model = ForgettingModel(half_life=3.0, life_span=9.0)
        incremental = CorpusStatistics(model)
        all_docs = []
        clock = 0.0
        serial = 0
        for gap, n in steps:
            clock += gap
            batch = doc_batch("d", serial, n, clock)
            serial += n
            all_docs.extend(batch)
            incremental.observe(batch, at_time=clock)
            incremental.expire()
        reference = CorpusStatistics.from_scratch(
            model, all_docs, at_time=clock
        )
        assert set(incremental.doc_ids()) == set(reference.doc_ids())
        assert math.isclose(incremental.tdw, reference.tdw, rel_tol=1e-9)
        for doc_id in reference.doc_ids():
            assert math.isclose(
                incremental.dw(doc_id), reference.dw(doc_id), rel_tol=1e-9
            )
        for term_id in reference.term_ids():
            assert math.isclose(
                incremental.pr_term(term_id),
                reference.pr_term(term_id),
                rel_tol=1e-9,
            )

    def test_huge_time_jump_does_not_poison_inserts(self):
        """Regression: one enormous Δτ used to underflow the internal
        term scale to exactly 0.0, crashing every later insert."""
        model = ForgettingModel(half_life=0.1)
        stats = CorpusStatistics(model)
        stats.observe([make_document("old", 0.0, {0: 2})], at_time=0.0)
        stats.advance_to(10_000.0)  # λ^100000 underflows to 0.0
        stats.observe([make_document("new", 10_000.0, {1: 3})],
                      at_time=10_000.0)
        assert stats.pr_term(1) > 0.0
        assert math.isclose(stats.pr_document("new"), 1.0)

    def test_long_stream_scale_folding(self):
        """A years-long daily stream keeps full precision (the internal
        global-scale trick must fold before underflow)."""
        model = ForgettingModel(half_life=0.5, life_span=2.0)
        stats = CorpusStatistics(model)
        for day in range(400):
            stats.observe(
                [make_document(f"d{day}", float(day), {day % 5: 2})],
                at_time=float(day),
            )
            stats.expire()
        stats.validate()
        total = sum(stats.term_probabilities().values())
        assert math.isclose(total, 1.0, rel_tol=1e-9)


class TestClone:
    def test_clone_is_independent(self, model):
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 3, 0.0), at_time=0.0)
        copy = stats.clone()
        copy.observe(doc_batch("x", 0, 2, 1.0), at_time=1.0)
        assert stats.size == 3
        assert copy.size == 5
        stats.validate()
        copy.validate()

    def test_validate_catches_corruption(self, model):
        stats = CorpusStatistics(model)
        stats.observe(doc_batch("d", 0, 3, 0.0), at_time=0.0)
        stats._backend.tdw *= 1.5  # simulate drift
        with pytest.raises(AssertionError):
            stats.validate()


class TestZeroWeightExpiry:
    def test_underflowed_docs_expire_even_without_life_span(self):
        """Regression: with life_span=None a huge gap underflowed all
        weights to 0.0 yet the docs stayed 'active' with tdw == 0."""
        model = ForgettingModel(half_life=0.1, life_span=None)
        stats = CorpusStatistics(model)
        stats.observe([make_document("old", 0.0, {0: 1})], at_time=0.0)
        stats.advance_to(10_000.0)
        expired = stats.expire()
        assert [d.doc_id for d in expired] == ["old"]
        assert stats.size == 0
