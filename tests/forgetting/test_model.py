"""Unit tests for the forgetting model (Eq. 1-2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ForgettingModel
from repro.exceptions import ConfigurationError


class TestParameters:
    def test_paper_experiment1_values(self):
        """β=7, γ=14 — the paper says λ=0.9 and ε=0.25 (they round)."""
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        assert math.isclose(model.decay_factor, 0.9057, abs_tol=5e-5)
        assert math.isclose(model.epsilon, 0.25)

    def test_paper_experiment2_values(self):
        """β=30 corresponds to λ≈0.98 (paper Section 6.2.2)."""
        model = ForgettingModel(half_life=30.0)
        assert math.isclose(model.decay_factor, 0.977, abs_tol=5e-4)

    def test_lambda_satisfies_half_life_identity(self):
        model = ForgettingModel(half_life=11.3)
        assert math.isclose(model.decay_factor ** 11.3, 0.5)

    def test_epsilon_zero_without_life_span(self):
        assert ForgettingModel(half_life=7.0).epsilon == 0.0

    def test_invalid_half_life(self):
        with pytest.raises(ConfigurationError):
            ForgettingModel(half_life=0.0)
        with pytest.raises(ConfigurationError):
            ForgettingModel(half_life=-1.0)

    def test_life_span_shorter_than_half_life_rejected(self):
        with pytest.raises(ConfigurationError):
            ForgettingModel(half_life=7.0, life_span=3.0)

    def test_from_decay_factor_roundtrip(self):
        model = ForgettingModel.from_decay_factor(0.9)
        assert math.isclose(model.decay_factor, 0.9)

    def test_from_decay_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            ForgettingModel.from_decay_factor(1.0)
        with pytest.raises(ConfigurationError):
            ForgettingModel.from_decay_factor(0.0)

    def test_frozen(self):
        model = ForgettingModel(half_life=7.0)
        with pytest.raises(AttributeError):
            model.half_life = 3.0  # type: ignore[misc]


class TestWeights:
    def test_initial_weight_is_one(self):
        model = ForgettingModel(half_life=7.0)
        assert model.weight(acquired_at=5.0, now=5.0) == 1.0

    def test_half_life_halves_weight(self):
        model = ForgettingModel(half_life=7.0)
        assert math.isclose(model.weight(0.0, 7.0), 0.5)
        assert math.isclose(model.weight(0.0, 14.0), 0.25)

    def test_future_acquisition_rejected(self):
        model = ForgettingModel(half_life=7.0)
        with pytest.raises(ConfigurationError):
            model.weight(acquired_at=10.0, now=5.0)

    def test_decay_over_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ForgettingModel(half_life=7.0).decay_over(-1.0)

    def test_is_expired_at_exactly_epsilon_is_false(self):
        """Expiry is strict: dw < ε, not <= (a doc exactly at its life
        span is still active, per Section 5.2 step 2)."""
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        assert not model.is_expired(model.epsilon)
        assert model.is_expired(model.epsilon * 0.999)

    def test_never_expires_without_life_span(self):
        assert not ForgettingModel(half_life=7.0).is_expired(1e-300)


class TestModelProperties:
    @given(st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_decay_is_multiplicative(self, beta, d1, d2):
        """Eq. 27's foundation: λ^(a+b) == λ^a · λ^b."""
        model = ForgettingModel(half_life=beta)
        assert math.isclose(
            model.decay_over(d1 + d2),
            model.decay_over(d1) * model.decay_over(d2),
            rel_tol=1e-9,
        )

    @given(st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    def test_weight_in_unit_interval(self, beta, age):
        model = ForgettingModel(half_life=beta)
        weight = model.weight(0.0, age)
        # extreme age/half-life ratios may underflow to exactly 0.0
        assert 0.0 <= weight <= 1.0

    @given(st.floats(min_value=0.1, max_value=1000.0, allow_nan=False))
    def test_weight_monotone_decreasing(self, beta):
        model = ForgettingModel(half_life=beta)
        weights = [model.weight(0.0, t) for t in (0.0, 1.0, 5.0, 50.0)]
        assert weights == sorted(weights, reverse=True)
