"""Statistics-backend registry and dict/columnar equivalence.

The columnar backend stores the same Eq. 27-29 state as the dict
reference in flat numpy arrays. These tests pin the registry surface
and — the load-bearing property — that the two layouts stay
numerically interchangeable under arbitrary interleavings of
observe/advance/expire/remove.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusStatistics, ForgettingModel
from repro.exceptions import ConfigurationError
from repro.forgetting.backends import (
    ColumnarStatisticsBackend,
    DictStatisticsBackend,
    available_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from tests.conftest import make_document

BACKENDS = ("dict", "columnar")


@pytest.fixture
def model():
    return ForgettingModel(half_life=7.0, life_span=14.0)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_resolve_returns_factories(self):
        assert resolve_backend("dict") is DictStatisticsBackend
        assert resolve_backend("columnar") is ColumnarStatisticsBackend

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="columnar"):
            resolve_backend("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("dict", DictStatisticsBackend)

    def test_register_unregister_roundtrip(self):
        register_backend("test-tmp", DictStatisticsBackend)
        try:
            assert "test-tmp" in available_backends()
        finally:
            unregister_backend("test-tmp")
        assert "test-tmp" not in available_backends()

    def test_statistics_accepts_instance(self, model):
        stats = CorpusStatistics(model, backend=ColumnarStatisticsBackend())
        assert stats.backend_name == "columnar"


# -- property: dict and columnar agree under any interleaving -----------

#: One step of the interleaving. ``observe`` carries a batch of 1-3
#: small documents, ``advance`` a forward time delta, ``remove`` an
#: index into the currently active documents (modulo size).
_STEPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("observe"),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=7),  # term seed
                    st.integers(min_value=1, max_value=4),  # count
                ),
                min_size=1,
                max_size=3,
            ),
        ),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.1, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.tuples(st.just("expire"), st.none()),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=99)),
    ),
    min_size=1,
    max_size=12,
)


def _run_program(steps, backend, life_span):
    model = ForgettingModel(half_life=7.0, life_span=life_span)
    stats = CorpusStatistics(model, backend=backend)
    clock = 0.0
    next_id = 0
    for action, payload in steps:
        if action == "observe":
            batch = []
            for term_seed, count in payload:
                batch.append(
                    make_document(
                        f"d{next_id}", clock,
                        {term_seed: count, (term_seed + 3) % 11: 1},
                    )
                )
                next_id += 1
            stats.observe(batch, at_time=clock)
        elif action == "advance":
            clock += payload
            stats.advance_to(clock)
        elif action == "expire":
            stats.expire()
        elif action == "remove":
            ids = stats.doc_ids()
            if ids:
                stats.remove(ids[payload % len(ids)])
    return stats


def _assert_parity(a, b):
    assert a.size == b.size
    assert a.doc_ids() == b.doc_ids()
    assert math.isclose(a.tdw, b.tdw, rel_tol=1e-9, abs_tol=1e-12)
    for doc_id in a.doc_ids():
        assert math.isclose(
            a.dw(doc_id), b.dw(doc_id), rel_tol=1e-9, abs_tol=1e-12
        )
    # float residues of removal can differ by ulps between layouts
    # (dict deletes masses <= 0, columnar zeroes the column), so term
    # id sets are compared only where probability mass is material
    terms_a = {t for t in a.term_ids() if a.pr_term(t) > 1e-12}
    terms_b = {t for t in b.term_ids() if b.pr_term(t) > 1e-12}
    assert terms_a == terms_b
    for term_id in set(a.term_ids()) | set(b.term_ids()):
        assert math.isclose(
            a.pr_term(term_id), b.pr_term(term_id),
            rel_tol=1e-9, abs_tol=1e-12,
        )


class TestDictColumnarParity:
    @settings(max_examples=120, deadline=None)
    @given(steps=_STEPS)
    def test_interleaving_parity_with_lifespan(self, steps):
        a = _run_program(steps, "dict", life_span=14.0)
        b = _run_program(steps, "columnar", life_span=14.0)
        _assert_parity(a, b)

    @settings(max_examples=60, deadline=None)
    @given(steps=_STEPS)
    def test_interleaving_parity_without_lifespan(self, steps):
        a = _run_program(steps, "dict", life_span=None)
        b = _run_program(steps, "columnar", life_span=None)
        _assert_parity(a, b)

    @settings(max_examples=40, deadline=None)
    @given(steps=_STEPS)
    def test_columnar_survives_its_own_validate(self, steps):
        stats = _run_program(steps, "columnar", life_span=14.0)
        stats.validate()

    def test_clone_is_independent(self, model):
        stats = CorpusStatistics(model, backend="columnar")
        stats.observe([make_document("d0", 0.0, {0: 2, 1: 1})], 0.0)
        fork = stats.clone()
        assert fork.backend_name == "columnar"
        fork.observe([make_document("d1", 1.0, {2: 3})], 1.0)
        assert stats.size == 1 and fork.size == 2
        stats.validate()
        fork.validate()


class TestExpireFastPath:
    def test_no_lifespan_expire_skips_counters(self):
        """Satellite: expire() with no life span must not emit events."""
        from repro.obs import InMemoryRecorder

        model = ForgettingModel(half_life=7.0, life_span=None)
        for backend in BACKENDS:
            recorder = InMemoryRecorder()
            stats = CorpusStatistics(model, recorder=recorder,
                                     backend=backend)
            stats.observe([make_document("d0", 0.0, {0: 1})], 0.0)
            stats.advance_to(50.0)
            assert stats.expire() == []
            assert "statistics.docs_expired" not in recorder.counters()

    def test_no_lifespan_underflow_still_expires(self):
        """The fast path must stand aside once a weight hits 0.0."""
        model = ForgettingModel(half_life=7.0, life_span=None)
        for backend in BACKENDS:
            stats = CorpusStatistics(model, backend=backend)
            stats.observe([make_document("d0", 0.0, {0: 1})], 0.0)
            # 2^-(t/7) underflows past the smallest subnormal
            stats.advance_to(7.0 * 1100.0)
            expired = stats.expire()
            assert [d.doc_id for d in expired] == ["d0"]
            assert stats.size == 0


class TestRemoveClampCounter:
    def test_clamp_emits_counter(self):
        """Satellite: tdw clamped to 0.0 on remove must be observable."""
        from repro.obs import InMemoryRecorder

        model = ForgettingModel(half_life=7.0, life_span=None)
        for backend in BACKENDS:
            recorder = InMemoryRecorder()
            stats = CorpusStatistics(model, recorder=recorder,
                                     backend=backend)
            stats.observe([make_document("d0", 0.0, {0: 1})], 0.0)
            # force a negative residue: the backend's running tdw is
            # nudged below the stored weight before removal
            stats._backend.tdw = stats._backend.tdw * (1.0 - 1e-12) - 1e-9
            stats.remove("d0")
            assert recorder.counters().get("statistics.tdw_clamped") == 1.0
            assert stats.tdw == 0.0

    def test_clean_remove_emits_no_clamp(self):
        from repro.obs import InMemoryRecorder

        model = ForgettingModel(half_life=7.0, life_span=None)
        for backend in BACKENDS:
            recorder = InMemoryRecorder()
            stats = CorpusStatistics(model, recorder=recorder,
                                     backend=backend)
            stats.observe([make_document("d0", 0.0, {0: 1}),
                           make_document("d1", 0.0, {1: 1})], 0.0)
            stats.remove("d0")
            assert "statistics.tdw_clamped" not in recorder.counters()
