"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main
from repro.corpus.loaders import save_jsonl
from tests.conftest import build_topic_repository


@pytest.fixture
def stream_file(tmp_path):
    repo = build_topic_repository(days=6, docs_per_topic_per_day=2, seed=1)
    path = tmp_path / "stream.jsonl"
    save_jsonl(repo.documents(), repo.vocabulary, path)
    return path


class TestGenerate:
    def test_writes_scaled_corpus(self, tmp_path, capsys):
        output = tmp_path / "corpus.jsonl"
        code = main([
            "generate", "--output", str(output),
            "--seed", "5", "--total-docs", "300",
        ])
        assert code == 0
        assert "wrote 300 documents" in capsys.readouterr().out
        assert output.exists()
        assert sum(1 for _ in open(output)) == 300


class TestCluster:
    def test_clusters_stream_and_reports(self, stream_file, capsys):
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final clusters:" in out
        assert "micro F1" in out  # topic labels present -> evaluation

    def test_quiet_suppresses_batch_lines(self, stream_file, capsys):
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--quiet",
        ])
        out = capsys.readouterr().out
        assert "t=" not in out
        assert "final clusters:" in out

    def test_checkpoint_roundtrip(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "3",
            "--checkpoint", str(state), "--quiet",
        ])
        assert code == 0
        assert state.exists()
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--batch-days", "3", "--quiet",
        ])
        assert code == 0
        assert "resumed from" in capsys.readouterr().out

    def test_engine_flag_roundtrips_checkpoint(self, stream_file, tmp_path,
                                               capsys):
        pytest.importorskip("scipy")
        import json

        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "3", "--engine", "matrix",
            "--checkpoint", str(state), "--quiet",
        ])
        assert code == 0
        assert json.loads(state.read_text())["kmeans"]["engine"] == "matrix"
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--batch-days", "3", "--quiet",
        ])
        assert code == 0
        assert "engine 'matrix'" in capsys.readouterr().out

    def test_engine_override_on_resume(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.json"
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "3",
            "--checkpoint", str(state), "--quiet",
        ])
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--engine", "sparse",
            "--batch-days", "3", "--quiet",
        ])
        assert code == 0
        assert "engine 'sparse'" in capsys.readouterr().out

    def test_unknown_engine_rejected(self, stream_file):
        with pytest.raises(SystemExit):
            main([
                "cluster", "--input", str(stream_file),
                "--engine", "no-such-engine",
            ])

    def test_empty_input_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["cluster", "--input", str(empty)])
        assert code == 1
        assert "no documents" in capsys.readouterr().err

    def test_missing_input_clean_error(self, tmp_path, capsys):
        code = main(["cluster", "--input", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "file not found" in err
        assert "Traceback" not in err

    def test_bad_parameter_clean_error(self, stream_file, capsys):
        code = main(["cluster", "--input", str(stream_file), "--k", "0"])
        assert code == 2
        assert "k must be >= 1" in capsys.readouterr().err

    def test_corrupt_checkpoint_clean_error(self, stream_file, tmp_path,
                                            capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        code = main(["cluster", "--input", str(stream_file),
                     "--resume", str(bad)])
        assert code == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestDurability:
    def test_checkpoint_creates_missing_parent_dirs(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "not" / "yet" / "there" / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "3",
            "--checkpoint", str(state), "--quiet",
        ])
        assert code == 0
        assert state.exists()
        assert "checkpoint written to" in capsys.readouterr().out

    def test_unwritable_checkpoint_fails_before_clustering(
        self, stream_file, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main([
            "cluster", "--input", str(stream_file),
            "--checkpoint", str(blocker / "state.json"), "--quiet",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot create checkpoint directory" in captured.err
        assert "t=" not in captured.out  # no batch ever ran

    def test_checkpoint_every_requires_checkpoint(
        self, stream_file, capsys
    ):
        code = main([
            "cluster", "--input", str(stream_file),
            "--checkpoint-every", "2",
        ])
        assert code == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(
        self, stream_file, tmp_path, capsys
    ):
        code = main([
            "cluster", "--input", str(stream_file),
            "--checkpoint", str(tmp_path / "state.json"),
            "--checkpoint-every", "0",
        ])
        assert code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_periodic_checkpoints_and_journal_on_disk(
        self, stream_file, tmp_path, capsys
    ):
        import json

        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2",
            "--checkpoint", str(state), "--checkpoint-every", "2",
            "--quiet",
        ])
        assert code == 0
        final = json.loads(state.read_text())
        assert final["sequence"] == 3  # 6 days / 2-day batches
        assert (tmp_path / "state.json.bak").exists()
        assert (tmp_path / "state.json.journal").exists()

    def test_resume_recovers_from_backup_generation(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2",
            "--checkpoint", str(state), "--quiet",
        ])
        assert code == 0
        capsys.readouterr()
        state.write_text("{torn by a crash")
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--batch-days", "2", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered from" in out
        assert "state.json.bak" in out

    def test_resume_replays_journaled_batches(
        self, stream_file, tmp_path, capsys
    ):
        """With a sparse checkpoint cadence, the tail of the run lives
        only in the journal — resume must replay it."""
        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2",
            "--checkpoint", str(state), "--checkpoint-every", "100",
            "--quiet",
        ])
        assert code == 0
        capsys.readouterr()
        # drop the final flush back to the anchor: the journal alone
        # must carry the whole run
        import json

        from repro.durability.journal import read_journal

        assert json.loads(state.read_text())["sequence"] == 3
        journal = tmp_path / "state.json.journal"
        anchor_header = read_journal(journal)
        assert anchor_header.base_sequence == 3  # rotated at close

    def test_crash_resume_replays_and_continues(
        self, stream_file, tmp_path, capsys, monkeypatch
    ):
        """Kill the run mid-stream (checkpoint write explodes), then
        resume: the journaled batches come back and the run finishes."""
        import os

        state = tmp_path / "state.json"
        real_replace = os.replace
        calls = {"n": 0}

        def dies_on_third_checkpoint(src, dst):
            if str(dst) == str(state):
                calls["n"] += 1
                if calls["n"] >= 3:
                    raise OSError("simulated power loss")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", dies_on_third_checkpoint)
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2",
            "--checkpoint", str(state), "--quiet",
        ])
        assert code == 2  # the crash surfaced as an error
        monkeypatch.undo()
        capsys.readouterr()

        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--checkpoint", str(state),
            "--batch-days", "2", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "final clusters:" in out


class TestTrace:
    def test_trace_writes_valid_jsonl(self, stream_file, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--quiet",
            "--trace", str(trace),
        ])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        lines = trace.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        names = {record["name"] for record in records}
        # all three pipeline phases present in the trace
        assert "pipeline.statistics" in names
        assert "kmeans.vectorise" in names
        assert "pipeline.clustering" in names
        for record in records:
            assert record["kind"] in ("counter", "gauge", "span")
            assert isinstance(record["value"], (int, float))
            assert "t" in record

    def test_trace_with_resume(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.json"
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "3",
            "--checkpoint", str(state), "--quiet",
        ])
        capsys.readouterr()
        trace = tmp_path / "trace.jsonl"
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--batch-days", "3", "--quiet",
            "--trace", str(trace),
        ])
        assert code == 0
        assert trace.read_text().strip()  # resumed pipeline was traced


class TestExperiments:
    def test_experiment1_small(self, capsys, monkeypatch):
        import repro.experiments.experiment1 as exp1
        from repro.corpus.synthetic import (
            SyntheticCorpusConfig, TDT2_TOPIC_CATALOG,
        )

        original = exp1.ExperimentOneConfig

        def small_config(seed, unlabeled_per_day):
            return original(
                seed=seed,
                days=5,
                k=4,
                corpus=SyntheticCorpusConfig(
                    seed=seed,
                    total_documents=600,
                    n_topics=len(TDT2_TOPIC_CATALOG),
                ),
            )

        monkeypatch.setattr(exp1, "ExperimentOneConfig", small_config)
        code = main(["experiment1", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "speedup" in out

    def test_experiment2_selected_window(self, capsys, monkeypatch):
        import repro.experiments.experiment2 as exp2
        from repro.corpus.synthetic import (
            SyntheticCorpusConfig, TDT2_TOPIC_CATALOG,
        )

        original_init = exp2.ExperimentTwoConfig

        def small_config(seed, betas):
            return original_init(
                seed=seed, betas=betas, k=6,
                corpus=SyntheticCorpusConfig(
                    seed=seed,
                    total_documents=800,
                    n_topics=len(TDT2_TOPIC_CATALOG),
                ),
            )

        monkeypatch.setattr(exp2, "ExperimentTwoConfig", small_config)
        code = main([
            "experiment2", "--seed", "3", "--windows", "1", "--betas", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 4" in out


class TestReport:
    def test_quick_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(["report", "--quick", "--seed", "5",
                     "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "# Reproduction report" in text
        assert "Table 1" in text
        assert "Table 4" in text
        assert "speedup" in text

    def test_quick_report_to_stdout(self, capsys):
        code = main(["report", "--quick", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Table 2" in out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestStatsBackendFlag:
    def test_backend_flag_round_trips_checkpoint(self, stream_file,
                                                 tmp_path, capsys):
        import json

        state = tmp_path / "state.json"
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--quiet",
            "--stats-backend", "columnar", "--checkpoint", str(state),
        ])
        assert code == 0
        assert json.load(open(state))["statistics_backend"] == "columnar"

        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--quiet",
        ])
        assert code == 0

    def test_backend_override_on_resume(self, stream_file, tmp_path,
                                        capsys):
        state = tmp_path / "state.json"
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--quiet",
            "--checkpoint", str(state),
        ])
        code = main([
            "cluster", "--input", str(stream_file),
            "--resume", str(state), "--stats-backend", "columnar",
            "--quiet",
        ])
        assert code == 0

    def test_backends_give_identical_reports(self, stream_file, capsys):
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--seed", "7",
        ])
        dict_out = capsys.readouterr().out
        main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--seed", "7",
            "--stats-backend", "columnar",
        ])
        columnar_out = capsys.readouterr().out
        assert columnar_out == dict_out

    def test_unknown_backend_rejected(self, stream_file, capsys):
        with pytest.raises(SystemExit):
            main([
                "cluster", "--input", str(stream_file),
                "--stats-backend", "nope",
            ])


class TestJobsFlag:
    def test_jobs_flag_accepted_on_terms_input(self, stream_file, capsys):
        code = main([
            "cluster", "--input", str(stream_file),
            "--k", "4", "--batch-days", "2", "--jobs", "2", "--quiet",
        ])
        assert code == 0

    def test_raw_text_records_cluster_end_to_end(self, tmp_path, capsys):
        import json

        path = tmp_path / "raw.jsonl"
        topics = [
            "asian markets fell sharply stocks tumbled",
            "election campaign votes polls candidate",
            "storm rainfall flooding rivers weather",
        ]
        with open(path, "w") as handle:
            for i in range(30):
                handle.write(json.dumps({
                    "doc_id": f"r{i}",
                    "timestamp": float(i % 5),
                    "text": topics[i % 3] + f" filler{i % 3}",
                }) + "\n")
        for jobs in ("1", "2"):
            code = main([
                "cluster", "--input", str(path),
                "--k", "3", "--batch-days", "2",
                "--jobs", jobs, "--quiet",
            ])
            assert code == 0
            assert "final clusters:" in capsys.readouterr().out
