"""Periodic checkpointing cadence and commit-hook integration."""

from __future__ import annotations

import pytest

from repro import Checkpointer
from repro.durability.journal import read_journal
from repro.exceptions import ConfigurationError
from repro.persistence import read_checkpoint_state

from tests.durability.conftest import (
    assert_state_matches,
    build_batches,
    fingerprint,
    make_clusterer,
    reference_states,
)


@pytest.fixture(scope="module")
def stream():
    return build_batches(days=6)


def checkpoint_sequence(path):
    return read_checkpoint_state(path).get("sequence")


class TestCadence:
    def test_interval_must_be_positive(self, stream, tmp_path):
        vocabulary, _ = stream
        with pytest.raises(ConfigurationError, match=">= 1"):
            Checkpointer(
                make_clusterer(), vocabulary,
                tmp_path / "state.json", every=0,
            )

    def test_construction_anchors_pair_on_disk(self, stream, tmp_path):
        vocabulary, _ = stream
        path = tmp_path / "state.json"
        checkpointer = Checkpointer(make_clusterer(), vocabulary, path)
        assert checkpoint_sequence(path) == 0
        contents = read_journal(checkpointer.journal_path)
        assert contents.base_sequence == 0
        assert contents.entries == ()
        checkpointer.close()

    def test_every_window_by_default(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(clusterer, vocabulary, path)
        clusterer.add_commit_hook(checkpointer.record_batch)
        for n, (at_time, batch) in enumerate(batches, start=1):
            clusterer.process_batch(batch, at_time=at_time)
            assert checkpoint_sequence(path) == n
            assert read_journal(checkpointer.journal_path).entries == ()
        checkpointer.close()

    def test_every_n_checkpoints_on_multiples(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=3
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for n, (at_time, batch) in enumerate(batches, start=1):
            clusterer.process_batch(batch, at_time=at_time)
            due = (n // 3) * 3
            assert checkpoint_sequence(path) == due
            journal = read_journal(checkpointer.journal_path)
            assert journal.base_sequence == due
            assert len(journal.entries) == n - due
        checkpointer.close()

    def test_close_flushes_pending_batches(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        with Checkpointer(
            clusterer, vocabulary, path, every=100
        ) as checkpointer:
            clusterer.add_commit_hook(checkpointer.record_batch)
            for at_time, batch in batches:
                clusterer.process_batch(batch, at_time=at_time)
            assert checkpoint_sequence(path) == 0
        assert checkpoint_sequence(path) == len(batches)
        assert checkpointer.journal_path.exists()

    def test_close_twice_is_idempotent(self, stream, tmp_path):
        vocabulary, _ = stream
        checkpointer = Checkpointer(
            make_clusterer(), vocabulary, tmp_path / "state.json"
        )
        checkpointer.close()
        checkpointer.close()

    def test_final_checkpoint_matches_live_state(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = make_clusterer()
        with Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=4
        ) as checkpointer:
            clusterer.add_commit_hook(checkpointer.record_batch)
            for at_time, batch in batches:
                clusterer.process_batch(batch, at_time=at_time)
        references = reference_states(batches)
        assert fingerprint(clusterer) == references[len(batches)]
        assert checkpoint_sequence(checkpointer.checkpoint_path) == len(
            batches
        )


class TestCommitHookContract:
    def test_rejected_batch_is_never_journaled(self, stream, tmp_path):
        """Transactional ingestion: a batch that fails validation must
        not reach the journal — replaying it would poison recovery."""
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        at_time, batch = batches[0]
        clusterer.process_batch(batch, at_time=at_time)
        with pytest.raises(ConfigurationError):
            clusterer.process_batch(batch, at_time=at_time + 1.0)
        contents = read_journal(checkpointer.journal_path)
        assert [e.sequence for e in contents.entries] == [1]
        assert checkpointer.sequence == 1
        checkpointer.close()

    def test_journaled_state_recovers_after_rejection(
        self, stream, tmp_path
    ):
        """After a rejected batch, the journal still reconstructs the
        committed prefix exactly."""
        from repro import recover

        vocabulary, batches = stream
        clusterer = make_clusterer()
        path = tmp_path / "state.json"
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)
        with pytest.raises(ConfigurationError):
            clusterer.process_batch(
                batches[0][1], at_time=batches[1][0] + 1.0
            )
        # crash here: no close(), recover from disk
        recovery = recover(path)
        assert recovery.sequence == 2
        references = reference_states(batches)
        assert_state_matches(recovery.clusterer, references[2])
