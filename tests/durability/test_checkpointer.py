"""Periodic checkpointing cadence and commit-hook integration."""

from __future__ import annotations

import pytest

from repro import Checkpointer
from repro.durability.journal import read_journal
from repro.exceptions import ConfigurationError
from repro.persistence import read_checkpoint_state

from tests.durability.conftest import (
    assert_state_matches,
    build_batches,
    fingerprint,
    make_clusterer,
    reference_states,
)


@pytest.fixture(scope="module")
def stream():
    return build_batches(days=6)


def checkpoint_sequence(path):
    return read_checkpoint_state(path).get("sequence")


class TestCadence:
    def test_interval_must_be_positive(self, stream, tmp_path):
        vocabulary, _ = stream
        with pytest.raises(ConfigurationError, match=">= 1"):
            Checkpointer(
                make_clusterer(), vocabulary,
                tmp_path / "state.json", every=0,
            )

    def test_construction_anchors_pair_on_disk(self, stream, tmp_path):
        vocabulary, _ = stream
        path = tmp_path / "state.json"
        checkpointer = Checkpointer(make_clusterer(), vocabulary, path)
        assert checkpoint_sequence(path) == 0
        contents = read_journal(checkpointer.journal_path)
        assert contents.base_sequence == 0
        assert contents.entries == ()
        checkpointer.close()

    def test_every_window_by_default(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(clusterer, vocabulary, path)
        clusterer.add_commit_hook(checkpointer.record_batch)
        for n, (at_time, batch) in enumerate(batches, start=1):
            clusterer.process_batch(batch, at_time=at_time)
            assert checkpoint_sequence(path) == n
            assert read_journal(checkpointer.journal_path).entries == ()
        checkpointer.close()

    def test_every_n_checkpoints_on_multiples(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=3
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for n, (at_time, batch) in enumerate(batches, start=1):
            clusterer.process_batch(batch, at_time=at_time)
            due = (n // 3) * 3
            assert checkpoint_sequence(path) == due
            journal = read_journal(checkpointer.journal_path)
            assert journal.base_sequence == due
            assert len(journal.entries) == n - due
        checkpointer.close()

    def test_close_flushes_pending_batches(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        with Checkpointer(
            clusterer, vocabulary, path, every=100
        ) as checkpointer:
            clusterer.add_commit_hook(checkpointer.record_batch)
            for at_time, batch in batches:
                clusterer.process_batch(batch, at_time=at_time)
            assert checkpoint_sequence(path) == 0
        assert checkpoint_sequence(path) == len(batches)
        assert checkpointer.journal_path.exists()

    def test_close_twice_is_idempotent(self, stream, tmp_path):
        vocabulary, _ = stream
        checkpointer = Checkpointer(
            make_clusterer(), vocabulary, tmp_path / "state.json"
        )
        checkpointer.close()
        checkpointer.close()

    def test_final_checkpoint_matches_live_state(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = make_clusterer()
        with Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=4
        ) as checkpointer:
            clusterer.add_commit_hook(checkpointer.record_batch)
            for at_time, batch in batches:
                clusterer.process_batch(batch, at_time=at_time)
        references = reference_states(batches)
        assert fingerprint(clusterer) == references[len(batches)]
        assert checkpoint_sequence(checkpointer.checkpoint_path) == len(
            batches
        )


class TestCommitHookContract:
    def test_rejected_batch_is_never_journaled(self, stream, tmp_path):
        """Transactional ingestion: a batch that fails validation must
        not reach the journal — replaying it would poison recovery."""
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        at_time, batch = batches[0]
        clusterer.process_batch(batch, at_time=at_time)
        with pytest.raises(ConfigurationError):
            clusterer.process_batch(batch, at_time=at_time + 1.0)
        contents = read_journal(checkpointer.journal_path)
        assert [e.sequence for e in contents.entries] == [1]
        assert checkpointer.sequence == 1
        checkpointer.close()

    def test_journaled_state_recovers_after_rejection(
        self, stream, tmp_path
    ):
        """After a rejected batch, the journal still reconstructs the
        committed prefix exactly."""
        from repro import recover

        vocabulary, batches = stream
        clusterer = make_clusterer()
        path = tmp_path / "state.json"
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)
        with pytest.raises(ConfigurationError):
            clusterer.process_batch(
                batches[0][1], at_time=batches[1][0] + 1.0
            )
        # crash here: no close(), recover from disk
        recovery = recover(path)
        assert recovery.sequence == 2
        references = reference_states(batches)
        assert_state_matches(recovery.clusterer, references[2])


class TestShutdown:
    """close()/abort() semantics, including racing a live writer."""

    def test_close_is_idempotent(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=3
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])
        checkpointer.close()
        assert checkpointer.closed
        checkpointer.close()  # second close is a clean no-op
        assert checkpoint_sequence(checkpointer.checkpoint_path) == 1

    def test_close_mid_window_flushes_pending_checkpoint(
        self, stream, tmp_path
    ):
        """every=3 with 2 committed batches: the periodic checkpoint
        never fired, so close() must write one — otherwise those
        batches exist only in the journal."""
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=3
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)
        assert checkpoint_sequence(checkpointer.checkpoint_path) == 0
        checkpointer.close()
        assert checkpoint_sequence(checkpointer.checkpoint_path) == 2
        # and the journal was rotated against the final checkpoint
        contents = read_journal(checkpointer.journal_path)
        assert contents.base_sequence == 2
        assert contents.entries == ()

    def test_close_without_pending_batches_writes_nothing_new(
        self, stream, tmp_path
    ):
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=1
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])
        before = checkpointer.checkpoint_path.stat().st_mtime_ns
        checkpointer.close()
        assert checkpointer.checkpoint_path.stat().st_mtime_ns == before

    def test_concurrent_close_closes_exactly_once(self, stream, tmp_path):
        """Two racing closers (the service shutdown path plus a with-
        block exit) must not double-flush or error."""
        import threading

        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)

        errors = []

        def closer() -> None:
            try:
                checkpointer.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert checkpointer.closed
        assert checkpoint_sequence(checkpointer.checkpoint_path) == 2

    def test_record_batch_racing_close_never_tears(self, stream, tmp_path):
        """A writer committing its final batch while close() runs: the
        batch is either fully journaled before the final checkpoint, or
        it fails — never half-written."""
        import threading

        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])

        start = threading.Barrier(2)
        outcome = {}

        def commit() -> None:
            start.wait()
            try:
                clusterer.process_batch(
                    batches[1][1], at_time=batches[1][0]
                )
                outcome["committed"] = True
            except BaseException:  # noqa: BLE001 - journal closed race
                outcome["committed"] = False

        def shutdown() -> None:
            start.wait()
            checkpointer.close()

        threads = [
            threading.Thread(target=commit),
            threading.Thread(target=shutdown),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        # whatever interleaving happened, the on-disk state is one of
        # the two consistent outcomes
        sequence = checkpoint_sequence(checkpointer.checkpoint_path)
        if outcome["committed"] and sequence == 2:
            pass  # batch won the race and made the final checkpoint
        else:
            assert sequence == 1  # close won; checkpoint holds batch 1

    def test_abort_skips_final_checkpoint(self, stream, tmp_path):
        """abort() is the crash hatch: journal entries survive, the
        checkpoint stays stale, and recovery replays the difference."""
        from repro import recover

        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:3]:
            clusterer.process_batch(batch, at_time=at_time)
        checkpointer.abort()
        assert checkpointer.closed
        # checkpoint is the construction-time image...
        assert checkpoint_sequence(checkpointer.checkpoint_path) == 0
        # ...but the journal kept every committed batch
        contents = read_journal(checkpointer.journal_path)
        assert [e.sequence for e in contents.entries] == [1, 2, 3]
        recovery = recover(tmp_path / "state.json")
        assert recovery.sequence == 3
        assert_state_matches(
            recovery.clusterer, reference_states(batches)[3]
        )

    def test_record_batch_after_close_raises(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json"
        )
        checkpointer.close()
        with pytest.raises(Exception):
            checkpointer.record_batch(batches[0][1], batches[0][0])
