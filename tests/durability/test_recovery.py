"""Fault injection: kill the pipeline at every crash point, recover,
and assert the restored state is a batch-prefix of the uninterrupted
run — with the surviving checkpoint never corrupt or truncated."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import Checkpointer, recover
from repro.durability.atomic import backup_path
from repro.exceptions import CheckpointError
from repro.persistence import read_checkpoint_state

from tests.durability.conftest import (
    assert_state_matches,
    crash_images,
    make_clusterer,
)


class TestCrashAtEveryCommit:
    @pytest.mark.parametrize("every", [1, 3, 100])
    def test_recovery_lands_on_the_exact_prefix(
        self, stream, references, tmp_path, every
    ):
        """Crash right after any batch commit: nothing acknowledged is
        lost, whatever the checkpoint cadence — the journal holds the
        tail the checkpoint hasn't absorbed."""
        vocabulary, batches = stream
        images = crash_images(
            tmp_path, vocabulary, batches, every=every
        )
        for n, image in enumerate(images):
            # the image's checkpoint must itself be intact...
            state = read_checkpoint_state(image)
            assert state.get("sequence") == (n // every) * every
            # ...and recovery must reach exactly the crashed prefix
            recovery = recover(image)
            assert recovery.sequence == n
            assert recovery.replayed_batches == n - (n // every) * every
            assert not recovery.used_backup
            assert not recovery.journal_truncated
            assert_state_matches(recovery.clusterer, references[n])

    def test_recovered_run_can_continue(self, stream, references, tmp_path):
        """A recovered clusterer keeps clustering — and a second crash
        after that still recovers."""
        vocabulary, batches = stream
        images = crash_images(
            tmp_path / "first", vocabulary, batches[:3], every=2
        )
        recovery = recover(images[3])
        clusterer = recovery.clusterer
        path = tmp_path / "second" / "state.json"
        checkpointer = Checkpointer(
            clusterer, recovery.vocabulary, path,
            every=2, sequence=recovery.sequence,
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[3:]:
            clusterer.process_batch(batch, at_time=at_time)
        # crash again: no close()
        second = recover(path)
        assert second.sequence == len(batches)
        assert_state_matches(second.clusterer, references[len(batches)])


class TestTornCheckpointWrites:
    def test_torn_replace_recovers_from_backup(
        self, stream, references, tmp_path, monkeypatch
    ):
        """Power loss between the two renames of a checkpoint write:
        the primary is already rotated to .bak and the new file never
        landed. The journal still reaches the crashed batch."""
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(clusterer, vocabulary, path)
        clusterer.add_commit_hook(checkpointer.record_batch)
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])

        real_replace = os.replace

        def torn(src, dst):
            if Path(dst).name == "state.json":
                raise OSError("simulated power loss mid-replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", torn)
        with pytest.raises(OSError):
            clusterer.process_batch(batches[1][1], at_time=batches[1][0])
        monkeypatch.undo()

        assert not path.exists()          # torn away
        assert backup_path(path).exists()  # previous generation intact
        recovery = recover(path)
        assert recovery.used_backup
        assert recovery.sequence == 2
        assert recovery.replayed_batches == 1
        assert_state_matches(recovery.clusterer, references[2])

    def test_corrupt_primary_falls_back_to_backup(
        self, stream, references, tmp_path
    ):
        """Bit rot in the primary checkpoint is caught by the checksum
        and the .bak generation serves."""
        vocabulary, batches = stream
        images = crash_images(tmp_path, vocabulary, batches[:3], every=1)
        image = images[3]
        raw = image.read_bytes()
        flip = raw.find(b'"now"')
        image.write_bytes(raw[:flip] + b'"nqw"' + raw[flip + 5:])

        recovery = recover(image)
        assert recovery.used_backup
        # the .bak holds sequence 2; its journal (base 3) is from the
        # rotted primary's future and is rightly discarded
        assert recovery.sequence == 2
        assert recovery.replayed_batches == 0
        assert_state_matches(recovery.clusterer, references[2])

    def test_both_generations_corrupt_raises(self, stream, tmp_path):
        vocabulary, batches = stream
        images = crash_images(tmp_path, vocabulary, batches[:2], every=1)
        image = images[2]
        image.write_text("{torn")
        backup_path(image).write_text("also torn")
        with pytest.raises(CheckpointError, match="no recoverable"):
            recover(image)

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            recover(tmp_path / "never-written.json")


class TestJournalFaults:
    def test_torn_journal_tail_recovers_shorter_prefix(
        self, stream, references, tmp_path
    ):
        """Crash mid-append: the half-written final line is discarded
        and recovery lands one batch earlier — still a prefix."""
        vocabulary, batches = stream
        images = crash_images(
            tmp_path, vocabulary, batches, every=100
        )
        image = images[len(batches)]
        journal = image.with_name(image.name + ".journal")
        lines = journal.read_bytes().rstrip(b"\n").split(b"\n")
        journal.write_bytes(
            b"\n".join(lines[:-1]) + b"\n"
            + lines[-1][: len(lines[-1]) // 2]
        )

        recovery = recover(image)
        assert recovery.journal_truncated
        assert recovery.sequence == len(batches) - 1
        assert_state_matches(
            recovery.clusterer, references[len(batches) - 1]
        )

    def test_unreadable_journal_header_recovers_checkpoint_alone(
        self, stream, references, tmp_path
    ):
        vocabulary, batches = stream
        images = crash_images(tmp_path, vocabulary, batches[:4], every=2)
        image = images[3]  # checkpoint at 2, journal holds batch 3
        journal = image.with_name(image.name + ".journal")
        journal.write_text("{torn")

        recovery = recover(image)
        assert recovery.sequence == 2
        assert recovery.replayed_batches == 0
        assert_state_matches(recovery.clusterer, references[2])

    def test_missing_journal_recovers_checkpoint_alone(
        self, stream, references, tmp_path
    ):
        vocabulary, batches = stream
        images = crash_images(tmp_path, vocabulary, batches[:3], every=1)
        image = images[3]
        image.with_name(image.name + ".journal").unlink()
        recovery = recover(image)
        assert recovery.sequence == 3
        assert_state_matches(recovery.clusterer, references[3])

    def test_journal_ahead_of_valid_primary_raises(
        self, stream, tmp_path
    ):
        """A valid primary checkpoint paired with a journal from its
        future means mixed-up files: recovery must refuse rather than
        silently drop acknowledged batches."""
        vocabulary, batches = stream
        old = crash_images(tmp_path / "old", vocabulary, batches[:1])
        new = crash_images(tmp_path / "new", vocabulary, batches[:3])
        with pytest.raises(CheckpointError, match="ahead of"):
            recover(
                old[1],  # checkpoint at sequence 1 ...
                journal_path=new[3].with_name(new[3].name + ".journal"),
            )  # ... paired with a journal rotated at base 3

    def test_fsync_failure_midrun_still_recovers_a_prefix(
        self, stream, references, tmp_path, monkeypatch
    ):
        """An I/O error while journaling batch n: the caller sees the
        failure, and recovery lands on batch n-1 or n (the line may or
        may not have reached the disk) — never anything else."""
        vocabulary, batches = stream
        path = tmp_path / "state.json"
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            clusterer.process_batch(batches[2][1], at_time=batches[2][0])
        monkeypatch.undo()

        recovery = recover(path)
        assert recovery.sequence in (2, 3)
        assert_state_matches(
            recovery.clusterer, references[recovery.sequence]
        )
