"""Fixtures and state-fingerprint helpers for the durability suite.

The acceptance property of :mod:`repro.durability`: after *any* crash,
``recover()`` lands on a state equal to some batch-prefix of the
uninterrupted run, and the newest surviving checkpoint is never corrupt
or truncated. "Equal" is exact for everything structural — the clock,
the active document ids, the assignment — and to 1e-12 *relative* for
the float aggregates (tdw, per-document weights): a restore decays each
weight in one ``λ^(now−T)`` step where the live run accumulated the
same product batch by batch, and floating-point powers compose only to
~1 ulp (the tolerance the seed round-trip tests already use).
"""

from __future__ import annotations

import math
import shutil
from pathlib import Path
from typing import Any, Dict, List, Tuple

import pytest

from repro import (
    Checkpointer,
    Document,
    ForgettingModel,
    IncrementalClusterer,
    Vocabulary,
)
from tests.conftest import build_topic_repository

Batch = Tuple[float, List[Document]]
Fingerprint = Dict[str, Any]

#: Relative tolerance for restored float aggregates (see module doc).
REL_TOL = 1e-12


def build_batches(
    days: int = 8,
    topics: Tuple[str, ...] = ("sports", "finance"),
    seed: int = 3,
) -> Tuple[Vocabulary, List[Batch]]:
    """A small two-topic stream cut into daily ``(at_time, batch)``."""
    repo = build_topic_repository(
        days=days, docs_per_topic_per_day=2, topics=list(topics),
        seed=seed,
    )
    batches: List[Batch] = []
    for day in range(days):
        batch = [d for d in repo if int(d.timestamp) == day]
        batches.append((float(day + 1), batch))
    return repo.vocabulary, batches


def make_clusterer(**kwargs: Any) -> IncrementalClusterer:
    model = ForgettingModel(half_life=7.0, life_span=14.0)
    defaults: Dict[str, Any] = {"k": 3, "seed": 1}
    defaults.update(kwargs)
    return IncrementalClusterer(model, **defaults)


def fingerprint(clusterer: IncrementalClusterer) -> Fingerprint:
    """Everything a prefix-equality assertion compares."""
    stats = clusterer.statistics
    return {
        "now": stats.now,
        "doc_ids": tuple(sorted(stats.doc_ids())),
        "assignment": dict(clusterer.assignments()),
        "weights": {d: stats.dw(d) for d in stats.doc_ids()},
        "tdw": stats.tdw,
    }


def reference_states(batches: List[Batch], **kwargs: Any) -> List[Fingerprint]:
    """Fingerprints of the uninterrupted run, one per batch prefix.

    ``reference_states(batches)[s]`` is the state after ``s`` batches;
    index 0 is the never-fed clusterer — recovery's sequence number
    indexes straight into this list.
    """
    clusterer = make_clusterer(**kwargs)
    states = [fingerprint(clusterer)]
    for at_time, batch in batches:
        clusterer.process_batch(batch, at_time=at_time)
        states.append(fingerprint(clusterer))
    return states


def assert_state_matches(
    recovered: IncrementalClusterer,
    reference: Fingerprint,
    rel_tol: float = REL_TOL,
) -> None:
    """Recovered state equals a reference prefix (see module doc)."""
    got = fingerprint(recovered)
    assert got["now"] == reference["now"]
    assert got["doc_ids"] == reference["doc_ids"]
    assert got["assignment"] == reference["assignment"]
    assert math.isclose(got["tdw"], reference["tdw"], rel_tol=rel_tol)
    for doc_id, weight in reference["weights"].items():
        assert math.isclose(
            got["weights"][doc_id], weight, rel_tol=rel_tol
        ), doc_id


def crash_images(
    workdir: Path,
    vocabulary: Vocabulary,
    batches: List[Batch],
    every: int = 1,
    **kwargs: Any,
) -> List[Path]:
    """Run the stream under a :class:`Checkpointer`, photographing the
    on-disk artifacts after every commit.

    Each returned path is the checkpoint inside an independent copy of
    the run directory exactly as a crash at that instant would leave it
    (the run is never ``close()``-d, so no final flush ever happens).
    ``crash_images(...)[i]`` crashed right after batch ``i`` committed.
    """
    live = workdir / "live"
    live.mkdir(parents=True)
    clusterer = make_clusterer(**kwargs)
    checkpointer = Checkpointer(
        clusterer, vocabulary, live / "state.json", every=every
    )
    clusterer.add_commit_hook(checkpointer.record_batch)
    images: List[Path] = []

    def snap() -> None:
        dest = workdir / f"crash{len(images)}"
        shutil.copytree(live, dest)
        images.append(dest / "state.json")

    snap()
    for at_time, batch in batches:
        clusterer.process_batch(batch, at_time=at_time)
        snap()
    return images


@pytest.fixture(scope="module")
def stream() -> Tuple[Vocabulary, List[Batch]]:
    return build_batches()


@pytest.fixture(scope="module")
def references(stream: Tuple[Vocabulary, List[Batch]]) -> List[Fingerprint]:
    _, batches = stream
    return reference_states(batches)
