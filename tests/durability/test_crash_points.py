"""Property-based fault injection: a kill at *any* byte offset of the
journal or checkpoint still recovers onto some batch prefix."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import recover

from tests.durability.conftest import (
    assert_state_matches,
    build_batches,
    crash_images,
    reference_states,
)

DAYS = 6


@pytest.fixture(scope="module")
def corpus():
    return build_batches(days=DAYS)


@pytest.fixture(scope="module")
def prefix_states(corpus):
    _, batches = corpus
    return reference_states(batches)


@pytest.fixture(scope="module")
def journal_heavy_image(corpus, tmp_path_factory):
    """Final crash image of a run that never checkpointed after the
    anchor: all six batches live only in the journal."""
    vocabulary, batches = corpus
    images = crash_images(
        tmp_path_factory.mktemp("journal-heavy"), vocabulary, batches,
        every=100,
    )
    return images[DAYS]


@pytest.fixture(scope="module")
def checkpoint_heavy_image(corpus, tmp_path_factory):
    """Final crash image of an every-window run: primary at sequence 6,
    .bak at 5, freshly rotated (empty) journal."""
    vocabulary, batches = corpus
    images = crash_images(
        tmp_path_factory.mktemp("checkpoint-heavy"), vocabulary, batches,
        every=1,
    )
    return images[DAYS]


def scratch_copy(image: Path) -> Path:
    """An independent, mutable copy of a crash image's directory."""
    scratch = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    dest = scratch / "img"
    shutil.copytree(image.parent, dest)
    return dest / image.name


class TestRandomKillOffsets:
    @given(data=st.data())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_journal_killed_at_any_offset(
        self, journal_heavy_image, prefix_states, data
    ):
        image = scratch_copy(journal_heavy_image)
        journal = image.with_name(image.name + ".journal")
        raw = journal.read_bytes()
        offset = data.draw(
            st.integers(min_value=0, max_value=len(raw)), label="offset"
        )
        journal.write_bytes(raw[:offset])

        recovery = recover(image)
        assert 0 <= recovery.sequence <= DAYS
        assert_state_matches(
            recovery.clusterer, prefix_states[recovery.sequence]
        )
        shutil.rmtree(image.parent.parent)

    @given(data=st.data())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_checkpoint_killed_at_any_offset(
        self, checkpoint_heavy_image, prefix_states, data
    ):
        """Truncate or bit-flip the primary checkpoint anywhere: either
        it still verifies whole, or the .bak generation serves — never
        a garbage state."""
        image = scratch_copy(checkpoint_heavy_image)
        raw = image.read_bytes()
        truncate = data.draw(st.booleans(), label="truncate")
        if truncate:
            offset = data.draw(
                st.integers(min_value=0, max_value=len(raw)),
                label="offset",
            )
            image.write_bytes(raw[:offset])
            intact = offset == len(raw)
        else:
            offset = data.draw(
                st.integers(min_value=0, max_value=len(raw) - 1),
                label="offset",
            )
            image.write_bytes(
                raw[:offset]
                + bytes([raw[offset] ^ 0x20])
                + raw[offset + 1:]
            )
            intact = False

        recovery = recover(image)
        if intact:
            assert recovery.sequence == DAYS
        else:
            # the primary died; the .bak (one checkpoint older) serves
            assert recovery.used_backup
            assert recovery.sequence == DAYS - 1
        assert_state_matches(
            recovery.clusterer, prefix_states[recovery.sequence]
        )
        shutil.rmtree(image.parent.parent)
