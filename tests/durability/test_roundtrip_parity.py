"""Checkpoint round-trip parity across the storage/engine matrix.

Every combination of statistics backend (dict, columnar) and numerical
engine (dense, matrix) must round-trip through a checkpoint onto a
state whose assignment is exact and whose statistics and clustering
index G agree with the live run to 1e-9 relative.
"""

from __future__ import annotations

import math

import pytest

from repro.persistence import load_checkpoint, save_checkpoint

from tests.durability.conftest import build_batches, make_clusterer

BACKENDS = ("dict", "columnar")
ENGINES = ("dense", "matrix")
REL_TOL = 1e-9


def term_probability_by_string(clusterer, vocabulary):
    return {
        vocabulary.term(term_id): probability
        for term_id, probability in
        clusterer.statistics.term_probabilities().items()
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", ENGINES)
class TestParityMatrix:
    def test_round_trip_matches_live_state(
        self, backend, engine, tmp_path
    ):
        if engine == "matrix":
            pytest.importorskip(
                "scipy.sparse", reason="matrix engine requires scipy"
            )
        vocabulary, batches = build_batches(days=6)
        clusterer = make_clusterer(
            engine=engine, statistics_backend=backend
        )
        result = None
        for at_time, batch in batches:
            result = clusterer.process_batch(batch, at_time=at_time)

        path = tmp_path / "state.json"
        save_checkpoint(clusterer, vocabulary, path)
        # a fresh vocabulary: restores must not depend on the original
        # term-id numbering
        restored, restored_vocabulary = load_checkpoint(
            path, statistics_backend=backend
        )
        assert restored.kmeans.engine == engine
        assert restored.statistics.backend_name == backend

        # structural state: exact
        assert restored.assignments() == clusterer.assignments()
        assert restored.statistics.now == clusterer.statistics.now
        assert sorted(restored.statistics.doc_ids()) == sorted(
            clusterer.statistics.doc_ids()
        )

        # statistics: 1e-9 relative
        assert math.isclose(
            restored.statistics.tdw, clusterer.statistics.tdw,
            rel_tol=REL_TOL,
        )
        for doc_id in clusterer.statistics.doc_ids():
            assert math.isclose(
                restored.statistics.dw(doc_id),
                clusterer.statistics.dw(doc_id),
                rel_tol=REL_TOL,
            ), doc_id
        live_terms = term_probability_by_string(clusterer, vocabulary)
        restored_terms = term_probability_by_string(
            restored, restored_vocabulary
        )
        assert live_terms.keys() == restored_terms.keys()
        for term, probability in live_terms.items():
            assert math.isclose(
                restored_terms[term], probability, rel_tol=REL_TOL
            ), term

        # G: re-cluster both at the same clock and compare Eq. 17
        at_time = clusterer.statistics.now
        live = clusterer.process_batch([], at_time=at_time)
        again = restored.process_batch([], at_time=at_time)
        assert again.clusters == live.clusters
        assert again.outliers == live.outliers
        assert math.isclose(
            again.clustering_index, live.clustering_index,
            rel_tol=REL_TOL,
        )
        assert result is not None
