"""follow(): the public committed-batch iterator, and replica resume."""

from __future__ import annotations

import threading

import pytest

from repro import Checkpointer, Vocabulary
from repro.durability import FollowedBatch, follow, recover
from repro.exceptions import JournalError

from .conftest import (
    assert_state_matches,
    build_batches,
    make_clusterer,
    reference_states,
)


@pytest.fixture
def checkpointed_run(tmp_path):
    """A live checkpointed run plus helpers to push batches through it."""
    vocabulary, batches = build_batches(days=6)
    clusterer = make_clusterer()
    checkpointer = Checkpointer(
        clusterer, vocabulary, tmp_path / "state.json", every=100
    )
    clusterer.add_commit_hook(checkpointer.record_batch)
    return vocabulary, batches, clusterer, checkpointer


class TestFollow:
    def test_yields_committed_batches_in_order(self, checkpointed_run):
        vocabulary, batches, clusterer, checkpointer = checkpointed_run
        for at_time, batch in batches[:4]:
            clusterer.process_batch(batch, at_time=at_time)

        observed = list(follow(
            checkpointer.journal_path, poll_interval=0.01, timeout=0.05
        ))
        assert [b.sequence for b in observed] == [1, 2, 3, 4]
        assert [b.at_time for b in observed] == [
            at_time for at_time, _ in batches[:4]
        ]
        for followed, (_, batch) in zip(observed, batches):
            assert isinstance(followed, FollowedBatch)
            assert [d.doc_id for d in followed.documents] == [
                d.doc_id for d in batch
            ]

    def test_after_skips_already_seen(self, checkpointed_run):
        _, batches, clusterer, checkpointer = checkpointed_run
        for at_time, batch in batches[:4]:
            clusterer.process_batch(batch, at_time=at_time)
        observed = list(follow(
            checkpointer.journal_path, poll_interval=0.01,
            timeout=0.05, after=2,
        ))
        assert [b.sequence for b in observed] == [3, 4]

    def test_tails_a_live_writer(self, checkpointed_run):
        vocabulary, batches, clusterer, checkpointer = checkpointed_run
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])
        seen = []
        done = threading.Event()

        def consume() -> None:
            for batch in follow(
                checkpointer.journal_path, poll_interval=0.01,
                stop=done.is_set,
            ):
                seen.append(batch.sequence)

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        for at_time, batch in batches[1:4]:
            clusterer.process_batch(batch, at_time=at_time)
        deadline = 200
        while len(seen) < 4 and deadline:
            threading.Event().wait(0.02)
            deadline -= 1
        done.set()
        thread.join(timeout=5.0)
        assert seen == [1, 2, 3, 4]

    def test_decodes_into_supplied_vocabulary(self, checkpointed_run):
        vocabulary, batches, clusterer, checkpointer = checkpointed_run
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])
        mine = Vocabulary()
        observed = list(follow(
            checkpointer.journal_path, poll_interval=0.01,
            timeout=0.05, vocabulary=mine,
        ))
        original = {
            term_id: vocabulary.term(term_id)
            for doc in batches[0][1]
            for term_id in doc.term_counts
        }
        for doc, followed in zip(batches[0][1], observed[0].documents):
            got = {
                mine.term(tid): count
                for tid, count in followed.term_counts.items()
            }
            want = {
                original[tid]: count
                for tid, count in doc.term_counts.items()
            }
            assert got == want

    def test_rotation_gap_raises(self, checkpointed_run):
        _, batches, clusterer, checkpointer = checkpointed_run
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)
        # checkpoint now: the journal rotates to base_sequence=2, so a
        # follower that saw nothing (after=0) has lost batches 1..2
        checkpointer.checkpoint()
        with pytest.raises(JournalError, match="rotated past"):
            list(follow(
                checkpointer.journal_path, poll_interval=0.01,
                timeout=0.05,
            ))

    def test_stop_ends_iteration(self, checkpointed_run):
        _, batches, clusterer, checkpointer = checkpointed_run
        clusterer.process_batch(batches[0][1], at_time=batches[0][0])
        observed = list(follow(
            checkpointer.journal_path, poll_interval=0.01,
            stop=lambda: True,
        ))
        assert observed == []  # stop fires before the first poll

    def test_missing_journal_waits_not_raises(self, tmp_path):
        observed = list(follow(
            tmp_path / "nothing.journal", poll_interval=0.01,
            timeout=0.05,
        ))
        assert observed == []


class TestReplica:
    def test_recover_follow_apply_tracks_the_writer(self, tmp_path):
        """The warm-standby loop: recover a checkpoint, then absorb the
        batches a live writer keeps committing — state stays equal."""
        vocabulary, batches = build_batches(days=6)
        references = reference_states(batches)

        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:2]:
            clusterer.process_batch(batch, at_time=at_time)

        replica = recover(tmp_path / "state.json")
        assert replica.sequence == 2
        assert_state_matches(replica.clusterer, references[2])

        # writer commits more while the replica is alive
        for at_time, batch in batches[2:5]:
            clusterer.process_batch(batch, at_time=at_time)

        for batch in replica.follow(poll_interval=0.01, timeout=0.05):
            replica.apply(batch)
        assert replica.sequence == 5
        assert replica.replayed_batches == 5  # 2 at recover + 3 followed
        assert_state_matches(replica.clusterer, references[5])

    def test_apply_out_of_order_raises(self, tmp_path):
        vocabulary, batches = build_batches(days=6)
        clusterer = make_clusterer()
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
        for at_time, batch in batches[:3]:
            clusterer.process_batch(batch, at_time=at_time)

        replica = recover(tmp_path / "state.json")
        later = list(follow(
            checkpointer.journal_path, poll_interval=0.01,
            timeout=0.05, after=replica.sequence,
        ))
        assert later == []  # replica already caught up
        stale = FollowedBatch(
            sequence=replica.sequence + 2, at_time=99.0, documents=()
        )
        with pytest.raises(JournalError, match="in order"):
            replica.apply(stale)
