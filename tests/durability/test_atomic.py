"""Unit tests of the atomic-write and checksum primitives."""

from __future__ import annotations

import json
import os

import pytest

from repro.durability.atomic import (
    atomic_write_json,
    atomic_write_text,
    backup_path,
    canonical_json,
    checksum_matches,
    payload_checksum,
    prepare_checkpoint_path,
)
from repro.exceptions import CheckpointError


class TestChecksums:
    def test_round_trips_through_json(self):
        """The checksum recomputed after parsing the written file must
        equal the one stamped before writing (float shortest-repr)."""
        payload = {"a": 0.1 + 0.2, "b": [1e-300, "naïve"], "now": 42.0}
        stamped = dict(payload, checksum=payload_checksum(payload))
        parsed = json.loads(json.dumps(stamped, ensure_ascii=False))
        assert checksum_matches(parsed) is True

    def test_detects_any_change(self):
        payload = {"a": 1, "checksum": None}
        payload["checksum"] = payload_checksum(payload)
        assert checksum_matches(payload) is True
        payload["a"] = 2
        assert checksum_matches(payload) is False

    def test_absent_checksum_is_none(self):
        assert checksum_matches({"a": 1}) is None

    def test_canonical_form_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )
        assert payload_checksum({"b": 1, "a": 2}) == payload_checksum(
            {"a": 2, "b": 1}
        )


class TestAtomicWrite:
    def test_writes_and_counts_bytes(self, tmp_path):
        target = tmp_path / "out.txt"
        written = atomic_write_text("héllo", target)
        assert target.read_text(encoding="utf-8") == "héllo"
        assert written == len("héllo".encode("utf-8"))

    def test_backup_rotation_keeps_previous_generation(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_text("one", target, backup=True)
        assert not backup_path(target).exists()
        atomic_write_text("two", target, backup=True)
        assert target.read_text() == "two"
        assert backup_path(target).read_text() == "one"
        atomic_write_text("three", target, backup=True)
        assert backup_path(target).read_text() == "two"

    def test_fsync_failure_leaves_target_untouched(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.json"
        atomic_write_text("good", target)

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            atomic_write_text("evil", target)
        monkeypatch.undo()
        assert target.read_text() == "good"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_replace_failure_leaves_target_and_no_temp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.json"
        atomic_write_text("good", target)
        real_replace = os.replace

        def torn(src, dst):
            raise OSError("simulated power loss")

        monkeypatch.setattr(os, "replace", torn)
        with pytest.raises(OSError):
            atomic_write_text("evil", target)
        monkeypatch.setattr(os, "replace", real_replace)
        assert target.read_text() == "good"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_json_adds_verifiable_checksum(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_json({"a": 1}, target, add_checksum=True)
        state = json.loads(target.read_text())
        assert checksum_matches(state) is True
        assert state["a"] == 1

    def test_json_without_checksum(self, tmp_path):
        target = tmp_path / "plain.json"
        atomic_write_json({"a": 1}, target)
        assert json.loads(target.read_text()) == {"a": 1}


class TestPrepareCheckpointPath:
    def test_creates_missing_parents(self, tmp_path):
        target = tmp_path / "deep" / "er" / "state.json"
        assert prepare_checkpoint_path(target) == target
        assert target.parent.is_dir()

    def test_rejects_directory_target(self, tmp_path):
        with pytest.raises(CheckpointError, match="is a directory"):
            prepare_checkpoint_path(tmp_path)

    def test_rejects_file_as_parent(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(CheckpointError, match="cannot create"):
            prepare_checkpoint_path(blocker / "state.json")
