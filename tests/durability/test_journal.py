"""Batch-journal round trips, torn tails, and header validation."""

from __future__ import annotations

import json
import os

import pytest

from repro.durability.journal import (
    BatchJournal,
    default_journal_path,
    read_journal,
)
from repro.exceptions import JournalError
from repro.persistence import record_to_document

from tests.durability.conftest import build_batches


@pytest.fixture(scope="module")
def stream():
    return build_batches(days=4)


def write_journal(path, vocabulary, batches, base_sequence=0):
    journal = BatchJournal(path, vocabulary, base_sequence=base_sequence)
    for at_time, batch in batches:
        journal.append(batch, at_time)
    journal.close()
    return journal


class TestRoundTrip:
    def test_default_path_is_checkpoint_sibling(self, tmp_path):
        assert default_journal_path(tmp_path / "s.json") == (
            tmp_path / "s.json.journal"
        )

    def test_entries_round_trip(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "run.journal"
        write_journal(path, vocabulary, batches, base_sequence=7)

        contents = read_journal(path)
        assert contents.base_sequence == 7
        assert not contents.truncated
        assert [e.sequence for e in contents.entries] == [8, 9, 10, 11]
        assert [e.at_time for e in contents.entries] == [
            at for at, _ in batches
        ]
        for entry, (_, batch) in zip(contents.entries, batches):
            rebuilt = [
                record_to_document(record, vocabulary)
                for record in entry.records
            ]
            assert [d.doc_id for d in rebuilt] == [
                d.doc_id for d in batch
            ]
            assert [d.term_counts for d in rebuilt] == [
                d.term_counts for d in batch
            ]

    def test_rotate_restarts_under_new_base(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "run.journal"
        journal = BatchJournal(path, vocabulary)
        journal.append(batches[0][1], batches[0][0])
        journal.rotate(base_sequence=1, base_now=batches[0][0])
        journal.append(batches[1][1], batches[1][0])
        journal.close()

        contents = read_journal(path)
        assert contents.base_sequence == 1
        assert contents.base_now == batches[0][0]
        assert [e.sequence for e in contents.entries] == [2]

    def test_append_after_close_raises(self, stream, tmp_path):
        vocabulary, batches = stream
        journal = BatchJournal(tmp_path / "run.journal", vocabulary)
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError, match="closed"):
            journal.append(batches[0][1], batches[0][0])

    def test_failed_fsync_closes_journal(
        self, stream, tmp_path, monkeypatch
    ):
        vocabulary, batches = stream
        journal = BatchJournal(tmp_path / "run.journal", vocabulary)
        journal.append(batches[0][1], batches[0][0])

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            journal.append(batches[1][1], batches[1][0])
        monkeypatch.undo()
        assert journal.closed
        # the first entry is still intact on disk
        contents = read_journal(journal.path)
        assert [e.sequence for e in contents.entries][:1] == [1]


class TestTornTails:
    def test_truncated_final_line_is_discarded(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "run.journal"
        write_journal(path, vocabulary, batches)
        whole = path.read_bytes()
        lines = whole.rstrip(b"\n").split(b"\n")
        intact_up_to_last = b"\n".join(lines[:-1]) + b"\n"

        for cut in (1, len(lines[-1]) // 2, len(lines[-1]) - 1):
            path.write_bytes(intact_up_to_last + lines[-1][:cut])
            contents = read_journal(path)
            assert contents.truncated
            assert [e.sequence for e in contents.entries] == [1, 2, 3]

    def test_corrupt_middle_line_cuts_the_suffix(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "run.journal"
        write_journal(path, vocabulary, batches)
        lines = path.read_bytes().rstrip(b"\n").split(b"\n")
        lines[2] = lines[2].replace(b'"at_time"', b'"at_tyme"', 1)
        path.write_bytes(b"\n".join(lines) + b"\n")

        contents = read_journal(path)
        assert contents.truncated
        assert [e.sequence for e in contents.entries] == [1]

    def test_sequence_gap_cuts_the_suffix(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "run.journal"
        write_journal(path, vocabulary, batches)
        lines = path.read_text().rstrip("\n").split("\n")
        del lines[2]  # drop sequence 2: 1, 3, 4 is not contiguous
        path.write_text("\n".join(lines) + "\n")

        contents = read_journal(path)
        assert contents.truncated
        assert [e.sequence for e in contents.entries] == [1]


class TestHeaderValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_text("")
        with pytest.raises(JournalError, match="empty journal"):
            read_journal(path)

    def test_unparsable_header(self, tmp_path):
        path = tmp_path / "bad.journal"
        path.write_text("{torn")
        with pytest.raises(JournalError, match="invalid journal header"):
            read_journal(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.journal"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(JournalError, match="not a repro journal"):
            read_journal(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.journal"
        path.write_text(json.dumps(
            {"format": "repro-journal", "version": 99}
        ) + "\n")
        with pytest.raises(JournalError, match="version"):
            read_journal(path)

    def test_header_checksum_mismatch(self, stream, tmp_path):
        vocabulary, _ = stream
        path = tmp_path / "run.journal"
        BatchJournal(path, vocabulary, base_sequence=3).close()
        text = path.read_text().replace(
            '"base_sequence":3', '"base_sequence":4'
        ).replace('"base_sequence": 3', '"base_sequence": 4')
        path.write_text(text)
        with pytest.raises(JournalError, match="checksum mismatch"):
            read_journal(path)
