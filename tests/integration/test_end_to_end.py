"""Integration tests: raw text -> pipeline -> clustering -> evaluation."""

from repro import (
    DocumentRepository,
    ForgettingModel,
    IncrementalClusterer,
    Vocabulary,
    evaluate_clustering,
    load_jsonl,
    save_jsonl,
    split_into_windows,
)
from tests.conftest import build_topic_repository


class TestFullPipeline:
    def test_stream_to_evaluation(self):
        repo = build_topic_repository(days=10, docs_per_topic_per_day=2)
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = IncrementalClusterer(model, k=4, seed=42)
        result = None
        for day in range(10):
            batch = [d for d in repo if int(d.timestamp) == day]
            result = clusterer.process_batch(batch, at_time=float(day + 1))
        assert result is not None
        truth = {d.doc_id: d.topic_id for d in repo}
        evaluation = evaluate_clustering(result.clusters, truth)
        assert evaluation.micro_f1 > 0.8
        assert evaluation.n_marked >= 2

    def test_windows_compose_with_clustering(self):
        repo = build_topic_repository(days=12, docs_per_topic_per_day=2)
        windows = split_into_windows(repo.documents(), 4.0)
        assert len(windows) == 3
        model = ForgettingModel(half_life=7.0, life_span=30.0)
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        for window in windows:
            result = clusterer.process_batch(
                window.documents, at_time=window.end
            )
            assert result.n_documents > 0

    def test_persistence_roundtrip_preserves_clustering(self, tmp_path):
        """Save -> load -> cluster must equal clustering the original."""
        repo = build_topic_repository(days=6, seed=3)
        path = tmp_path / "stream.jsonl"
        save_jsonl(repo.documents(), repo.vocabulary, path)
        reloaded_vocab = Vocabulary()
        reloaded = load_jsonl(path, reloaded_vocab)

        model = ForgettingModel(half_life=7.0, life_span=30.0)
        original = IncrementalClusterer(model, k=3, seed=1)
        restored = IncrementalClusterer(model, k=3, seed=1)
        result_a = original.process_batch(repo.documents(), at_time=6.0)
        result_b = restored.process_batch(reloaded, at_time=6.0)
        # same text, same seeds -> identical membership by doc id
        members_a = sorted(sorted(c) for c in result_a.clusters)
        members_b = sorted(sorted(c) for c in result_b.clusters)
        assert members_a == members_b

    def test_mixed_ingestion_paths(self):
        """add_text and pre-built Documents can share one repository."""
        repo = DocumentRepository()
        repo.add_text("text1", 0.0, "stocks fell on market news",
                      topic_id="finance")
        counts = repo.pipeline.term_frequencies("stocks rose again")
        from repro import Document
        repo.add(Document(
            doc_id="built1",
            timestamp=0.5,
            term_counts=repo.vocabulary.add_counts(counts),
            topic_id="finance",
        ))
        stock_id = repo.vocabulary.id("stock")
        assert stock_id in repo.get("text1").term_counts
        assert stock_id in repo.get("built1").term_counts
