"""Integration tests asserting the paper's qualitative claims at small
scale. These are the "does the reproduction behave like the paper says"
tests; the full-scale numbers live in the benchmark harness.
"""

import random

from repro import (
    CorpusStatistics,
    DocumentRepository,
    ForgettingModel,
    NoveltyKMeans,
    evaluate_clustering,
)
from tests.conftest import TOPIC_VOCABULARY


def build_burst_stream(seed=0):
    """30-day stream: topic 'evergreen' runs throughout; topic 'burst'
    appears only in the last 5 days; topic 'stale' only in the first 5.
    """
    rng = random.Random(seed)
    repo = DocumentRepository()
    vocab = {
        "evergreen": TOPIC_VOCABULARY["finance"],
        "stale": TOPIC_VOCABULARY["sports"],
        "burst": TOPIC_VOCABULARY["science"],
    }
    serial = 0

    def add(topic, day):
        nonlocal serial
        words = rng.choices(vocab[topic].split(), k=30)
        repo.add_text(f"d{serial:04d}", day + rng.random() * 0.9,
                      " ".join(words), topic_id=topic)
        serial += 1

    for day in range(30):
        add("evergreen", float(day))
        if day < 5:
            add("stale", float(day))
            add("stale", float(day))
        if day >= 25:
            add("burst", float(day))
            add("burst", float(day))
    return repo


def cluster_at(repo, beta, at_time=30.0, k=3, seed=5):
    model = ForgettingModel(half_life=beta, life_span=None)
    stats = CorpusStatistics.from_scratch(
        model, repo.documents(), at_time=at_time
    )
    result = NoveltyKMeans(k=k, seed=seed).fit(stats.documents(), stats)
    truth = {d.doc_id: d.topic_id for d in repo}
    return result, evaluate_clustering(result.clusters, truth)


class TestNoveltyClaims:
    def test_short_half_life_detects_recent_topic(self):
        """§6.2.3: 'recent topics appear in the clustering results of the
        7-day half life span' — the burst topic must be marked."""
        repo = build_burst_stream()
        _, ev_short = cluster_at(repo, beta=3.0)
        assert ev_short.detects_topic("burst")

    def test_stale_topic_mass_collapses_under_short_half_life(self):
        """§6.2.3's mechanism: under a short half-life the old topic's
        probability mass (and hence every similarity involving it) is
        negligible, while a long half-life keeps it competitive. The
        *detection* consequence needs the full-scale slot competition
        (K ≪ topics) and is asserted by the Table 4 benchmark."""
        repo = build_burst_stream()
        truth = {d.doc_id: d.topic_id for d in repo}
        for beta, low, high in ((3.0, 0.0, 0.02), (90.0, 0.15, 1.0)):
            model = ForgettingModel(half_life=beta)
            stats = CorpusStatistics.from_scratch(
                model, repo.documents(), at_time=30.0
            )
            stale_mass = sum(
                stats.pr_document(doc_id)
                for doc_id in stats.doc_ids()
                if truth[doc_id] == "stale"
            )
            assert low <= stale_mass <= high, (beta, stale_mass)

    def test_stale_cluster_similarity_collapses(self):
        """At β=3 the stale topic's intra-cluster similarity is orders of
        magnitude below the burst topic's (aged pair sims carry a
        2^(-2·age/β) factor); at β=90 they are comparable."""
        from repro import NoveltySimilarity

        repo = build_burst_stream()
        by_topic = {}
        for doc in repo:
            by_topic.setdefault(doc.topic_id, []).append(doc)
        ratios = {}
        for beta in (3.0, 90.0):
            model = ForgettingModel(half_life=beta)
            stats = CorpusStatistics.from_scratch(
                model, repo.documents(), at_time=30.0
            )
            similarity = NoveltySimilarity(stats)

            def mean_pair_sim(docs):
                total = count = 0
                for i, a in enumerate(docs):
                    for b in docs[i + 1:]:
                        total += similarity.similarity(a, b)
                        count += 1
                return total / count

            ratios[beta] = (
                mean_pair_sim(by_topic["stale"])
                / mean_pair_sim(by_topic["burst"])
            )
        # note: the collapse is softened by the novelty idf — terms that
        # appear only in old documents become rare, hence heavily
        # idf-boosted — but two orders of magnitude remain
        assert ratios[3.0] < 0.02
        assert ratios[90.0] > 0.2
        assert ratios[3.0] < ratios[90.0] / 50

    def test_long_half_life_keeps_old_topic(self):
        """β=90 'resembles the conventional clustering': with enough
        cluster slots the stale topic remains visible in a majority of
        random initialisations."""
        repo = build_burst_stream()
        detected = sum(
            cluster_at(repo, beta=90.0, k=4, seed=seed)[1]
            .detects_topic("stale")
            for seed in range(8)
        )
        assert detected >= 4

    def test_long_half_life_scores_better_f1_overall(self):
        """Table 4's direction: the F1 measure (novelty-blind) favours
        the long half-life."""
        repo = build_burst_stream()
        _, ev_short = cluster_at(repo, beta=3.0)
        _, ev_long = cluster_at(repo, beta=90.0)
        assert ev_long.micro_f1 >= ev_short.micro_f1

    def test_outliers_skew_old_under_forgetting(self):
        """Outliers under a short half-life should be older on average
        than clustered documents — forgetting in action."""
        repo = build_burst_stream()
        result, _ = cluster_at(repo, beta=3.0)
        by_id = {d.doc_id: d for d in repo}
        outlier_times = [by_id[i].timestamp for i in result.outliers]
        clustered_times = [
            by_id[i].timestamp
            for members in result.clusters for i in members
        ]
        if outlier_times and clustered_times:
            mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
            assert mean(outlier_times) < mean(clustered_times)


class TestIncrementalEquivalenceClaim:
    def test_incremental_close_to_non_incremental_quality(self):
        """§6.2.2: 'clustering results generated by the incremental and
        the non-incremental versions are roughly close to each other'.
        We assert the F1 gap is small on the burst stream."""
        from repro import IncrementalClusterer, NonIncrementalClusterer

        repo = build_burst_stream(seed=2)
        truth = {d.doc_id: d.topic_id for d in repo}
        model = ForgettingModel(half_life=7.0, life_span=None)

        incremental = IncrementalClusterer(model, k=3, seed=5)
        non_incremental = NonIncrementalClusterer(model, k=3, seed=5)
        for end_day in (10.0, 20.0, 30.0):
            batch = [
                d for d in repo
                if end_day - 10.0 <= d.timestamp < end_day
            ]
            inc_result = incremental.process_batch(batch, at_time=end_day)
            non_result = non_incremental.process_batch(batch,
                                                       at_time=end_day)
        ev_inc = evaluate_clustering(inc_result.clusters, truth)
        ev_non = evaluate_clustering(non_result.clusters, truth)
        assert abs(ev_inc.micro_f1 - ev_non.micro_f1) < 0.25
