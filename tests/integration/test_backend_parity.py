"""Full-pipeline parity: the statistics backend must never change results.

Both clusterers are pure functions of (documents, parameters, seed); the
backend only changes the storage layout of Eq. 27-29, so assignments
must be *identical* and the clustering index G equal to float tolerance
across every engine.
"""

import math

import pytest

from repro import ForgettingModel, IncrementalClusterer
from repro.core.engines import available_engines
from repro.core.incremental import NonIncrementalClusterer
from tests.conftest import build_topic_repository


def _replay(clusterer, repo, days):
    result = None
    for day in range(days):
        batch = [d for d in repo if int(d.timestamp) == day]
        if batch:
            result = clusterer.process_batch(batch, at_time=float(day + 1))
    return result


@pytest.mark.parametrize("engine", sorted(available_engines()))
def test_incremental_backends_agree(engine):
    repo = build_topic_repository(days=8, docs_per_topic_per_day=3, seed=11)
    results = {}
    for backend in ("dict", "columnar"):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(
            model, k=4, seed=2, engine=engine,
            statistics_backend=backend,
        )
        results[backend] = _replay(clusterer, repo, days=8)
    dict_result, columnar_result = results["dict"], results["columnar"]
    assert columnar_result.assignments() == dict_result.assignments()
    assert math.isclose(
        columnar_result.clustering_index, dict_result.clustering_index,
        rel_tol=1e-9,
    )


def test_nonincremental_backends_agree():
    repo = build_topic_repository(days=6, docs_per_topic_per_day=3, seed=5)
    results = {}
    for backend in ("dict", "columnar"):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = NonIncrementalClusterer(
            model, k=4, seed=2, statistics_backend=backend,
        )
        results[backend] = _replay(clusterer, repo, days=6)
    assert results["columnar"].assignments() == results["dict"].assignments()
    assert math.isclose(
        results["columnar"].clustering_index,
        results["dict"].clustering_index,
        rel_tol=1e-9,
    )
