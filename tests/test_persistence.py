"""Tests for checkpoint save/restore of the on-line clusterer."""

import json
import math
import os

import pytest

from repro import (
    CheckpointError,
    ForgettingModel,
    IncrementalClusterer,
    load_checkpoint,
    save_checkpoint,
)
from tests.conftest import build_topic_repository


def run_stream(clusterer, repo, days, start=0):
    result = None
    for day in range(start, days):
        batch = [d for d in repo if int(d.timestamp) == day]
        if batch:
            result = clusterer.process_batch(batch, at_time=float(day + 1))
        else:
            clusterer.statistics.advance_to(float(day + 1))
    return result


@pytest.fixture
def stream():
    return build_topic_repository(days=10, docs_per_topic_per_day=2, seed=3)


class TestRoundTrip:
    def test_statistics_restored_exactly(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)

        restored, vocab = load_checkpoint(path, stream.vocabulary)
        live, back = clusterer.statistics, restored.statistics
        assert set(live.doc_ids()) == set(back.doc_ids())
        assert math.isclose(live.tdw, back.tdw, rel_tol=1e-12)
        assert live.now == back.now
        for term_id in live.term_ids():
            assert math.isclose(
                live.pr_term(term_id), back.pr_term(term_id),
                rel_tol=1e-9,
            )

    def test_assignment_restored(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        restored, _ = load_checkpoint(path, stream.vocabulary)
        assert restored.assignments() == clusterer.assignments()

    def test_continuation_matches_uninterrupted_run(self, stream, tmp_path):
        """Checkpoint at day 6, continue to day 10: same clustering as a
        run that never stopped (determinism across restore)."""
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        continuous = IncrementalClusterer(model, k=3, seed=1)
        run_stream(continuous, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(continuous, stream.vocabulary, path)
        final_continuous = run_stream(continuous, stream, days=10, start=6)

        restored, _ = load_checkpoint(path, stream.vocabulary)
        final_restored = run_stream(restored, stream, days=10, start=6)

        assert (
            sorted(map(sorted, final_restored.clusters))
            == sorted(map(sorted, final_continuous.clusters))
        )
        assert set(final_restored.outliers) == set(final_continuous.outliers)

    def test_fresh_vocabulary_grows_consistently(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        restored, vocab = load_checkpoint(path)  # no vocabulary given
        assert vocab is not stream.vocabulary
        assert len(vocab) > 0
        # same statistics despite different term ids
        assert math.isclose(
            restored.statistics.tdw, clusterer.statistics.tdw,
            rel_tol=1e-12,
        )

    def test_config_preserved(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(
            model, k=5, delta=0.02, max_iterations=17, seed=9,
            engine="sparse", warm_start=False, rescue_outliers=False,
        )
        run_stream(clusterer, stream, days=3)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        restored, _ = load_checkpoint(path, stream.vocabulary)
        km = restored.kmeans
        assert (km.k, km.delta, km.max_iterations, km.seed, km.engine) == (
            5, 0.02, 17, 9, "sparse",
        )
        assert restored.warm_start is False
        assert km.rescue_outliers is False
        assert restored.model.half_life == 4.0


class TestAtomicSave:
    def test_failed_save_preserves_previous_checkpoint(
        self, stream, tmp_path, monkeypatch
    ):
        """A write failure mid-dump must not clobber the old checkpoint
        (regression: save opened the target with "w")."""
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        good = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        # dies at the fsync of the temp file, before any rename
        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            save_checkpoint(clusterer, stream.vocabulary, path)
        assert path.read_bytes() == good
        assert list(tmp_path.glob("*.tmp")) == []

    def test_save_never_leaves_temp_files(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        save_checkpoint(clusterer, stream.vocabulary, path)  # overwrite
        assert list(tmp_path.glob("*.tmp")) == []
        load_checkpoint(path, stream.vocabulary)  # still valid JSON


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="invalid JSON"):
            load_checkpoint(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(
            {"format": "repro-checkpoint", "version": 99}
        ))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(
            {"format": "repro-checkpoint", "version": 1,
             "model": {"half_life": 7.0, "life_span": None}}
        ))
        with pytest.raises(CheckpointError, match="missing field"):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "ghost.json")


class TestMalformedNested:
    def test_missing_nested_key_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "nested.json"
        path.write_text(json.dumps({
            "format": "repro-checkpoint", "version": 1,
            "model": {"half_life": 7.0},  # life_span missing
            "kmeans": {}, "now": 0.0, "documents": [], "assignment": {},
        }))
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(path)


class TestFreshClustererCheckpoint:
    def test_checkpoint_before_any_batch_roundtrips(self, tmp_path):
        """Regression: 'now: null' checkpoints used to crash on load."""
        from repro import Vocabulary

        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        path = tmp_path / "fresh.json"
        save_checkpoint(clusterer, Vocabulary(), path)
        restored, _ = load_checkpoint(path)
        assert restored.statistics.size == 0
        assert restored.statistics.now is None

    def test_bad_criterion_rejected(self, tmp_path, stream):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=3)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        state = json.loads(path.read_text())
        state["kmeans"]["criterion"] = "gg-typo"
        del state["checksum"]  # hand-edited: force a load anyway
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError, match="criterion"):
            load_checkpoint(path, stream.vocabulary)


class TestStatisticsBackendField:
    def test_backend_name_round_trips(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(
            model, k=3, seed=1, statistics_backend="columnar"
        )
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        assert json.load(open(path))["statistics_backend"] == "columnar"

        restored, _ = load_checkpoint(path, stream.vocabulary)
        assert restored.statistics.backend_name == "columnar"
        assert math.isclose(
            restored.statistics.tdw, clusterer.statistics.tdw,
            rel_tol=1e-12,
        )

    def test_load_override_swaps_backend(self, stream, tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)

        restored, _ = load_checkpoint(
            path, stream.vocabulary, statistics_backend="columnar"
        )
        assert restored.statistics.backend_name == "columnar"
        assert math.isclose(
            restored.statistics.tdw, clusterer.statistics.tdw,
            rel_tol=1e-12,
        )

    def test_pre_backend_checkpoint_defaults_to_dict(self, stream,
                                                     tmp_path):
        model = ForgettingModel(half_life=4.0, life_span=8.0)
        clusterer = IncrementalClusterer(model, k=3, seed=1)
        run_stream(clusterer, stream, days=6)
        path = tmp_path / "state.json"
        save_checkpoint(clusterer, stream.vocabulary, path)
        state = json.load(open(path))
        del state["statistics_backend"]  # checkpoints written before PR 3
        del state["checksum"]            # ... carried no checksum either
        json.dump(state, open(path, "w"))

        restored, _ = load_checkpoint(path, stream.vocabulary)
        assert restored.statistics.backend_name == "dict"
