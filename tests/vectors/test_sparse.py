"""Unit and property tests for repro.vectors.SparseVector."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vectors import SparseVector

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sparse_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=200), finite_floats, max_size=30
)


def vectors():
    return sparse_dicts.map(SparseVector)


class TestConstruction:
    def test_zero_entries_pruned(self):
        v = SparseVector({0: 1.0, 1: 0.0, 2: -2.0})
        assert len(v) == 2
        assert 1 not in v

    def test_copy_constructor(self):
        v = SparseVector({0: 1.0})
        w = SparseVector(v)
        assert v == w
        assert v is not w

    def test_from_items_sums_duplicates(self):
        v = SparseVector.from_items([(0, 1.0), (0, 2.0), (1, 4.0)])
        assert v[0] == 3.0
        assert v[1] == 4.0

    def test_zeros(self):
        assert len(SparseVector.zeros()) == 0
        assert not SparseVector.zeros()

    def test_keys_coerced_to_int(self):
        v = SparseVector({np.int64(3): 1.5})
        assert v[3] == 1.5
        assert all(isinstance(k, int) for k in v.keys())


class TestAccess:
    def test_getitem_missing_is_zero(self):
        assert SparseVector({0: 1.0})[99] == 0.0

    def test_get_default(self):
        assert SparseVector().get(5, default=-1.0) == -1.0

    def test_contains(self):
        v = SparseVector({3: 2.0})
        assert 3 in v
        assert 4 not in v

    def test_to_dict_is_copy(self):
        v = SparseVector({0: 1.0})
        d = v.to_dict()
        d[0] = 99.0
        assert v[0] == 1.0

    def test_to_dense(self):
        dense = SparseVector({0: 1.0, 3: 2.0}).to_dense(5)
        assert list(dense) == [1.0, 0.0, 0.0, 2.0, 0.0]

    def test_to_dense_out_of_range_raises(self):
        with pytest.raises(IndexError):
            SparseVector({10: 1.0}).to_dense(5)


class TestAlgebra:
    def test_dot_disjoint_is_zero(self):
        assert SparseVector({0: 1.0}).dot(SparseVector({1: 1.0})) == 0.0

    def test_dot_overlap(self):
        v = SparseVector({0: 1.0, 3: 2.0})
        w = SparseVector({3: 4.0, 7: 1.0})
        assert v.dot(w) == 8.0

    def test_dot_with_zero_vector(self):
        assert SparseVector({0: 1.0}).dot(SparseVector()) == 0.0

    def test_norm(self):
        assert SparseVector({0: 3.0, 1: 4.0}).norm() == 5.0

    def test_sum(self):
        assert SparseVector({0: 1.5, 1: -0.5}).sum() == 1.0

    def test_add(self):
        v = SparseVector({0: 1.0}) + SparseVector({0: 2.0, 1: 3.0})
        assert v.to_dict() == {0: 3.0, 1: 3.0}

    def test_sub_cancels_to_empty(self):
        v = SparseVector({0: 1.0})
        assert len(v - v) == 0

    def test_scalar_multiply(self):
        v = 2.0 * SparseVector({0: 1.0, 1: -1.0})
        assert v.to_dict() == {0: 2.0, 1: -2.0}

    def test_scale_by_zero_gives_empty(self):
        assert len(SparseVector({0: 5.0}).scaled(0.0)) == 0

    def test_cosine_identical_is_one(self):
        v = SparseVector({0: 1.0, 1: 2.0})
        assert math.isclose(v.cosine(v), 1.0)

    def test_cosine_zero_vector_is_zero(self):
        assert SparseVector({0: 1.0}).cosine(SparseVector()) == 0.0

    def test_normalized_unit_norm(self):
        v = SparseVector({0: 3.0, 1: 4.0}).normalized()
        assert math.isclose(v.norm(), 1.0)

    def test_normalized_zero_stays_zero(self):
        assert len(SparseVector().normalized()) == 0


class TestInPlace:
    def test_add_scaled(self):
        v = SparseVector({0: 1.0})
        v.add_scaled(SparseVector({0: 1.0, 1: 2.0}), 2.0)
        assert v.to_dict() == {0: 3.0, 1: 4.0}

    def test_add_scaled_prunes_exact_zero(self):
        v = SparseVector({0: 1.0})
        v.add_scaled(SparseVector({0: 1.0}), -1.0)
        assert 0 not in v

    def test_add_scaled_factor_zero_noop(self):
        v = SparseVector({0: 1.0})
        v.add_scaled(SparseVector({1: 5.0}), 0.0)
        assert v.to_dict() == {0: 1.0}

    def test_scale_inplace(self):
        v = SparseVector({0: 2.0})
        v.scale_inplace(0.5)
        assert v[0] == 1.0

    def test_scale_inplace_zero_clears(self):
        v = SparseVector({0: 2.0})
        v.scale_inplace(0.0)
        assert len(v) == 0

    def test_scale_inplace_underflow_pruned(self):
        """Regression: per-entry underflow to exact 0.0 must not leave
        structural zeros behind."""
        v = SparseVector({0: 1e-300, 1: 1.0})
        v.scale_inplace(1e-30)
        assert 0 not in v
        assert len(v) == 1

    def test_prune_tolerance(self):
        v = SparseVector({0: 1e-20, 1: 1.0})
        v.prune(abs_tol=1e-12)
        assert v.to_dict() == {1: 1.0}


class TestSparseVectorProperties:
    @given(vectors(), vectors())
    def test_dot_commutative(self, v, w):
        assert math.isclose(v.dot(w), w.dot(v), rel_tol=1e-12, abs_tol=1e-9)

    @given(vectors(), vectors())
    def test_dot_matches_dense(self, v, w):
        size = max([k for k in list(v.keys()) + list(w.keys())], default=0) + 1
        expected = float(v.to_dense(size) @ w.to_dense(size))
        assert math.isclose(v.dot(w), expected, rel_tol=1e-9, abs_tol=1e-6)

    @given(vectors())
    def test_norm_squared_is_self_dot(self, v):
        assert math.isclose(v.norm() ** 2, v.dot(v),
                            rel_tol=1e-9, abs_tol=1e-9)

    @given(vectors(), vectors())
    def test_addition_matches_itemwise(self, v, w):
        total = v + w
        for key in set(list(v.keys()) + list(w.keys())):
            assert math.isclose(total[key], v[key] + w[key],
                                rel_tol=1e-12, abs_tol=1e-12)

    @given(vectors(), finite_floats)
    def test_scaling_matches_itemwise(self, v, factor):
        scaled = v.scaled(factor)
        for key in v.keys():
            assert math.isclose(scaled[key], v[key] * factor,
                                rel_tol=1e-12, abs_tol=1e-12)

    @given(vectors(), vectors())
    def test_add_then_subtract_roundtrip(self, v, w):
        assert ((v + w) - w).allclose(v, rel_tol=1e-6, abs_tol=1e-6)

    @given(vectors(), vectors(), vectors())
    def test_dot_distributes_over_addition(self, u, v, w):
        left = u.dot(v + w)
        right = u.dot(v) + u.dot(w)
        assert math.isclose(left, right, rel_tol=1e-6, abs_tol=1e-3)

    @given(vectors())
    def test_cosine_bounded(self, v):
        if v:
            assert -1.0 - 1e-9 <= v.cosine(v) <= 1.0 + 1e-9
