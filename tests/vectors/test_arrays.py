"""Batched vectorisation: the CSR path must match the dict path exactly.

``weighted_arrays`` exists purely as a faster construction of the same
Eq. 12-16 weights, so every assertion here is bit-level equality with
``weighted_vectors``, not toleranced closeness.
"""

import numpy as np
import pytest

from repro import CorpusStatistics, ForgettingModel, NoveltyTfidfWeighter
from repro.vectors.arrays import WeightedVectorArrays
from tests.conftest import make_document


def _corpus(backend="dict"):
    model = ForgettingModel(half_life=7.0, life_span=30.0)
    docs = [
        make_document(f"d{i}", float(i % 5),
                      {(i + j) % 13: 1 + (i * j) % 4 for j in range(1 + i % 6)})
        for i in range(40)
    ]
    stats = CorpusStatistics(model, backend=backend)
    stats.observe(docs, at_time=5.0)
    return stats, docs


@pytest.mark.parametrize("backend", ["dict", "columnar"])
class TestWeightedArraysEquivalence:
    def test_rows_bitwise_equal_to_dict_path(self, backend):
        stats, docs = _corpus(backend)
        weighter = NoveltyTfidfWeighter(stats)
        reference = weighter.weighted_vectors(docs)
        arrays = weighter.weighted_arrays(docs)
        assert list(arrays) == list(reference)
        for doc_id in reference:
            assert dict(arrays[doc_id]) == dict(reference[doc_id])

    def test_mapping_protocol(self, backend):
        stats, docs = _corpus(backend)
        arrays = NoveltyTfidfWeighter(stats).weighted_arrays(docs)
        assert isinstance(arrays, WeightedVectorArrays)
        assert len(arrays) == len(docs)
        assert docs[0].doc_id in arrays
        doc_ids, indptr, term_ids, data = arrays.csr_parts()
        assert len(indptr) == len(docs) + 1
        assert indptr[-1] == len(term_ids) == len(data)

    def test_empty_doc_ids_matches_rows(self, backend):
        stats, docs = _corpus(backend)
        docs = docs + [make_document("empty", 5.0, {})]
        stats.observe([docs[-1]], at_time=5.0)
        arrays = NoveltyTfidfWeighter(stats).weighted_arrays(docs)
        assert arrays.empty_doc_ids() == ["empty"]
        assert len(arrays["empty"]) == 0


class TestZeroIdfFilter:
    """Satellite: terms whose mass underflowed weight to 0.0 — drop them.

    A component is 0.0 exactly when its term's idf is 0.0, which in a
    live system happens when scale-factor decay underflows a term mass
    to zero while a document still carrying the term survives. The
    tests force that state directly in the backend.
    """

    @staticmethod
    def _zero_out_term(stats, term_id):
        backend = stats._backend
        if hasattr(backend, "_term_mass_raw"):  # dict backend
            backend._term_mass_raw[term_id] = 0.0
        else:  # columnar: zero the interned column
            col = int(backend._lookup_cols(
                np.asarray([term_id], dtype=np.int64))[0])
            backend._mass_raw[col] = 0.0
        assert stats.pr_term(term_id) == 0.0

    def test_underflowed_term_component_dropped_dict_path(self):
        stats, docs = _corpus()
        dead_term = next(iter(docs[0].term_counts))
        self._zero_out_term(stats, dead_term)
        vectors = NoveltyTfidfWeighter(stats).weighted_vectors(docs)
        vector = vectors[docs[0].doc_id]
        assert dead_term not in vector
        assert 0.0 not in vector.values()
        assert len(vector) == len(docs[0].term_counts) - 1

    def test_underflowed_term_component_dropped_array_path(self):
        stats, docs = _corpus()
        dead_term = next(iter(docs[0].term_counts))
        self._zero_out_term(stats, dead_term)
        arrays = NoveltyTfidfWeighter(stats).weighted_arrays(docs)
        vector = arrays[docs[0].doc_id]
        assert dead_term not in vector
        assert 0.0 not in vector.values()
        _, _, _, data = arrays.csr_parts()
        assert not (np.asarray(data) == 0.0).any()

    def test_clean_corpus_keeps_all_components(self):
        stats, docs = _corpus()
        weighter = NoveltyTfidfWeighter(stats)
        vectors = weighter.weighted_vectors(docs)
        for doc in docs:
            assert len(vectors[doc.doc_id]) == len(doc.term_counts)
