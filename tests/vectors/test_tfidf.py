"""Unit tests for the novelty tf·idf weighter (Eq. 12-16 plumbing)."""

import math

import pytest

from repro import CorpusStatistics, ForgettingModel, NoveltyTfidfWeighter
from tests.conftest import make_document


@pytest.fixture
def stats():
    model = ForgettingModel(half_life=7.0)
    docs = [
        make_document("a", 0.0, {0: 2, 1: 1}),
        make_document("b", 1.0, {1: 3, 2: 1}),
        make_document("c", 2.0, {0: 1, 2: 2, 3: 1}),
    ]
    statistics = CorpusStatistics(model)
    statistics.observe(docs[:1], at_time=0.0)
    statistics.observe(docs[1:2], at_time=1.0)
    statistics.observe(docs[2:], at_time=2.0)
    return statistics


class TestIdf:
    def test_idf_is_inverse_sqrt_of_term_probability(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        for term_id in (0, 1, 2, 3):
            pr = stats.pr_term(term_id)
            assert math.isclose(weighter.idf(term_id), 1.0 / math.sqrt(pr))

    def test_unseen_term_idf_zero(self, stats):
        assert NoveltyTfidfWeighter(stats).idf(999) == 0.0

    def test_idf_cached_until_invalidate(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        before = weighter.idf(0)
        stats.observe(
            [make_document("d", 3.0, {0: 5})], at_time=3.0
        )
        assert weighter.idf(0) == before  # stale cache by design
        weighter.invalidate()
        assert weighter.idf(0) != before


class TestVectors:
    def test_tfidf_components(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        doc = stats.document("a")
        vector = weighter.tfidf_vector(doc)
        assert math.isclose(vector[0], 2 * weighter.idf(0))
        assert math.isclose(vector[1], 1 * weighter.idf(1))

    def test_weighted_vector_scaling(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        doc = stats.document("a")
        scale = stats.pr_document("a") / doc.length
        tfidf = weighter.tfidf_vector(doc)
        weighted = weighter.weighted_vector(doc)
        for term_id in tfidf.keys():
            assert math.isclose(weighted[term_id], tfidf[term_id] * scale)

    def test_empty_document_gives_zero_vector(self, stats):
        empty = make_document("empty", 2.0, {})
        stats.observe([empty], at_time=2.0)
        weighter = NoveltyTfidfWeighter(stats)
        assert len(weighter.weighted_vector(empty)) == 0

    def test_weighted_vectors_batch(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        docs = stats.documents()
        batch = weighter.weighted_vectors(docs)
        assert set(batch) == {d.doc_id for d in docs}
        for doc in docs:
            assert batch[doc.doc_id].allclose(weighter.weighted_vector(doc))

    def test_cosine_vectors_unit_norm(self, stats):
        weighter = NoveltyTfidfWeighter(stats)
        for vector in weighter.cosine_vectors(stats.documents()).values():
            assert math.isclose(vector.norm(), 1.0)


class TestNoveltyEffect:
    def test_older_docs_get_smaller_weighted_vectors(self):
        """Two identical documents acquired at different times: the newer
        one must carry the larger weighted vector (the novelty bias)."""
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics(model)
        old = make_document("old", 0.0, {0: 1, 1: 1})
        new = make_document("new", 7.0, {0: 1, 1: 1})
        stats.observe([old], at_time=0.0)
        stats.observe([new], at_time=7.0)
        weighter = NoveltyTfidfWeighter(stats)
        old_vec = weighter.weighted_vector(old)
        new_vec = weighter.weighted_vector(new)
        assert old_vec.norm() < new_vec.norm()
        # exactly one half-life apart: factor 2 in Pr(d), hence in norm
        assert math.isclose(new_vec.norm() / old_vec.norm(), 2.0,
                            rel_tol=1e-9)
