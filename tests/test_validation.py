"""Tests for the shared validation helpers and the exception hierarchy."""

import pytest

from repro import (
    ClusteringError,
    ConfigurationError,
    DuplicateDocumentError,
    EmptyCorpusError,
    NotFittedError,
    ReproError,
    UnknownDocumentError,
    VocabularyFrozenError,
)
from repro._validation import (
    require_finite_number,
    require_in_open_interval,
    require_non_negative,
    require_non_negative_int,
    require_positive,
    require_positive_int,
    require_probability,
)


class TestNumericValidators:
    def test_require_positive_accepts(self):
        assert require_positive("x", 1.5) == 1.5
        assert require_positive("x", 1) == 1.0

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_require_positive_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            require_positive("x", value)

    def test_require_non_negative(self):
        assert require_non_negative("x", 0) == 0.0
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -0.1)

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf")])
    def test_non_finite_rejected_everywhere(self, value):
        for checker in (require_positive, require_non_negative,
                        require_finite_number, require_probability):
            with pytest.raises(ConfigurationError):
                checker("x", value)

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a number"):
            require_finite_number("x", "seven")

    def test_bool_is_not_a_number_here(self):
        with pytest.raises(ConfigurationError):
            require_finite_number("x", True)

    def test_open_interval(self):
        assert require_in_open_interval("x", 0.5, 0.0, 1.0) == 0.5
        for value in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ConfigurationError):
                require_in_open_interval("x", value, 0.0, 1.0)

    def test_probability(self):
        assert require_probability("x", 0.0) == 0.0
        assert require_probability("x", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            require_probability("x", 1.01)


class TestIntValidators:
    def test_positive_int(self):
        assert require_positive_int("n", 3) == 3
        for value in (0, -1, 1.5, "3", True):
            with pytest.raises(ConfigurationError):
                require_positive_int("n", value)

    def test_non_negative_int(self):
        assert require_non_negative_int("n", 0) == 0
        for value in (-1, 0.0, False):
            with pytest.raises(ConfigurationError):
                require_non_negative_int("n", value)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, EmptyCorpusError, UnknownDocumentError,
        DuplicateDocumentError, ClusteringError, NotFittedError,
        VocabularyFrozenError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers using stdlib idioms still catch our errors."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(DuplicateDocumentError, ValueError)
        assert issubclass(UnknownDocumentError, KeyError)
        assert issubclass(NotFittedError, RuntimeError)

    def test_catching_base_class_in_practice(self):
        from repro import ForgettingModel

        with pytest.raises(ReproError):
            ForgettingModel(half_life=-1.0)
