"""Tests for cluster novelty / hot-topic ranking."""

import pytest

from repro import (
    ClusteringResult,
    CorpusStatistics,
    ForgettingModel,
    cluster_novelty,
    rank_hot_clusters,
)
from repro.analysis import cluster_trend
from tests.conftest import make_document


@pytest.fixture
def stats():
    model = ForgettingModel(half_life=2.0)
    statistics = CorpusStatistics(model)
    old = [make_document(f"old{i}", 0.0, {0: 1}) for i in range(3)]
    fresh = [make_document(f"new{i}", 10.0, {1: 1}) for i in range(3)]
    statistics.observe(old, at_time=0.0)
    statistics.observe(fresh, at_time=10.0)
    return statistics


def result_for(clusters):
    return ClusteringResult(
        clusters=tuple(tuple(c) for c in clusters),
        outliers=(),
        clustering_index=0.0,
        index_history=(),
        iterations=1,
        converged=True,
    )


class TestClusterNovelty:
    def test_fresh_cluster_near_one(self, stats):
        assert cluster_novelty(["new0", "new1"], stats) == pytest.approx(1.0)

    def test_old_cluster_decayed(self, stats):
        # age 10, half-life 2 -> dw = 2^-5
        assert cluster_novelty(["old0", "old1"], stats) == pytest.approx(
            2 ** -5
        )

    def test_expired_members_count_zero(self, stats):
        assert cluster_novelty(["new0", "ghost"], stats) == pytest.approx(0.5)

    def test_empty(self, stats):
        assert cluster_novelty([], stats) == 0.0


class TestClusterTrend:
    def test_momentum_counts_recent_members(self, stats):
        trend = cluster_trend(0, ["new0", "new1", "old0"], stats,
                              recent_days=5.0)
        assert trend.momentum == pytest.approx(2 / 3)
        assert trend.size == 3

    def test_mean_age(self, stats):
        trend = cluster_trend(0, ["new0", "old0"], stats)
        assert trend.mean_age_days == pytest.approx(5.0)

    def test_weight_mass(self, stats):
        trend = cluster_trend(0, ["new0", "old0"], stats)
        assert trend.weight_mass == pytest.approx(1.0 + 2 ** -5)

    def test_hotness_monotone_in_novelty(self, stats):
        hot = cluster_trend(0, ["new0", "new1"], stats)
        cold = cluster_trend(1, ["old0", "old1"], stats)
        assert hot.hotness > cold.hotness

    def test_hotness_size_discount_is_logarithmic(self, stats):
        small = cluster_trend(0, ["new0", "new1"], stats)
        # same novelty, larger size -> hotter, but sublinearly
        big = cluster_trend(1, ["new0", "new1", "new2"], stats)
        assert big.hotness > small.hotness
        assert big.hotness / small.hotness < 1.5


class TestRankHotClusters:
    def test_fresh_cluster_ranks_first(self, stats):
        result = result_for([
            ["old0", "old1", "old2"],
            ["new0", "new1", "new2"],
        ])
        ranked = rank_hot_clusters(result, stats)
        assert [t.cluster_id for t in ranked] == [1, 0]

    def test_min_size_filters_singletons(self, stats):
        result = result_for([["new0"], ["old0", "old1"]])
        ranked = rank_hot_clusters(result, stats, min_size=2)
        assert [t.cluster_id for t in ranked] == [1]

    def test_fresh_small_beats_stale_giant(self):
        model = ForgettingModel(half_life=2.0)
        statistics = CorpusStatistics(model)
        giant = [make_document(f"g{i}", 0.0, {0: 1}) for i in range(50)]
        pair = [make_document(f"p{i}", 20.0, {1: 1}) for i in range(2)]
        statistics.observe(giant, at_time=0.0)
        statistics.observe(pair, at_time=20.0)
        result = result_for([
            [d.doc_id for d in giant],
            [d.doc_id for d in pair],
        ])
        ranked = rank_hot_clusters(result, statistics)
        assert ranked[0].cluster_id == 1
