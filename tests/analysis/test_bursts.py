"""Tests for burst detection on arrival series."""

import pytest

from repro import detect_bursts
from repro.exceptions import ConfigurationError
from tests.conftest import make_document


def docs_at(times, topic="t"):
    return [
        make_document(f"d{i}", t, {0: 1}, topic_id=topic)
        for i, t in enumerate(times)
    ]


class TestDetectBursts:
    def test_single_burst_found(self):
        # background 1/week, burst of 10 in week 3
        times = [0.5, 7.5, 21.5, 28.5] + [14.0 + 0.1 * i for i in range(10)]
        bursts = detect_bursts(docs_at(times), bin_days=7.0, threshold=2.0)
        assert len(bursts) == 1
        burst = bursts[0]
        assert burst.start_day == 14.0
        assert burst.end_day == 21.0
        assert burst.documents == 10
        assert burst.intensity > 2.0

    def test_uniform_stream_no_bursts(self):
        times = [float(i) * 7 + 0.5 for i in range(8)]
        assert detect_bursts(docs_at(times), bin_days=7.0) == []

    def test_two_separate_bursts(self):
        times = (
            [0.5] +
            [7.0 + 0.1 * i for i in range(8)] +
            [14.5] +
            [21.0 + 0.1 * i for i in range(8)] +
            [28.5, 35.5]
        )
        bursts = detect_bursts(docs_at(times), bin_days=7.0, threshold=1.5)
        assert len(bursts) == 2
        assert bursts[0].end_day <= bursts[1].start_day

    def test_burst_at_stream_end_closed(self):
        times = [0.5, 7.5] + [14.0 + 0.1 * i for i in range(9)]
        bursts = detect_bursts(docs_at(times), bin_days=7.0, threshold=2.0)
        assert len(bursts) == 1
        assert bursts[0].documents == 9

    def test_topic_filter(self):
        docs = docs_at([0.5, 0.6, 0.7], topic="hot") + docs_at(
            [10.5], topic="cold"
        )
        # rename ids to avoid collisions
        docs = [
            make_document(f"x{i}", d.timestamp, {0: 1}, topic_id=d.topic_id)
            for i, d in enumerate(docs)
        ]
        bursts_hot = detect_bursts(docs, topic_id="hot", bin_days=1.0,
                                   threshold=0.5)
        assert bursts_hot
        assert detect_bursts(docs, topic_id="absent") == []

    def test_empty_stream(self):
        assert detect_bursts([]) == []

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            detect_bursts(docs_at([0.0]), bin_days=0.0)
        with pytest.raises(ConfigurationError):
            detect_bursts(docs_at([0.0]), threshold=0.0)

    def test_span_property(self):
        times = [0.5] * 1 + [7.0 + 0.1 * i for i in range(10)] + [14.5]
        bursts = detect_bursts(docs_at(times), bin_days=7.0, threshold=2.0)
        assert bursts[0].span_days == 7.0

    def test_paper_figure7_shape(self):
        """Denmark Strike (Fig. 7): a short burst at the window 4/5
        boundary of the synthetic corpus must be detected."""
        from repro import SyntheticCorpusConfig, TDT2Generator

        config = SyntheticCorpusConfig(seed=3)
        repo = TDT2Generator(config).generate()
        bursts = detect_bursts(
            repo.documents(), topic_id="20078", bin_days=7.0,
            threshold=1.2, total_days=config.total_days,
        )
        assert bursts
        # all activity lives near the day-120 window boundary
        assert all(100.0 <= b.start_day <= 140.0 for b in bursts)


class TestNegativeTimestamps:
    def test_pre_origin_documents_clamp_to_first_bin(self):
        """Regression: negative timestamps used to wrap into the FINAL
        bin via Python negative indexing."""
        docs = docs_at([-3.0, -2.5, 0.5, 7.5], topic="t")
        bursts = detect_bursts(docs, bin_days=7.0, threshold=1.2,
                               total_days=14.0)
        # the two pre-origin docs land in week 1, not week 2
        for burst in bursts:
            assert burst.start_day == 0.0
