"""Shared fixtures and corpus builders for the test suite."""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

import pytest

from repro import (
    CorpusStatistics,
    Document,
    DocumentRepository,
    ForgettingModel,
)

TOPIC_VOCABULARY: Dict[str, str] = {
    "sports": "game team score player win match coach league goal season",
    "finance": "market stock bank trade economy price investor fund profit rate",
    "politics": "election vote party candidate government senate law president bill campaign",
    "science": "research study experiment laboratory physics theory data discovery quantum energy",
}

BACKGROUND_WORDS = "report town national morning announcement".split()


def make_document(
    doc_id: str,
    timestamp: float,
    term_counts: Dict[int, int],
    topic_id: Optional[str] = None,
) -> Document:
    """Terse :class:`Document` constructor for unit tests."""
    return Document(
        doc_id=doc_id,
        timestamp=timestamp,
        term_counts=term_counts,
        topic_id=topic_id,
    )


def build_topic_repository(
    days: int = 10,
    docs_per_topic_per_day: int = 2,
    topics: Optional[Sequence[str]] = None,
    seed: int = 0,
    tokens_per_doc: int = 30,
) -> DocumentRepository:
    """A small labelled news stream with clearly separated topics.

    Documents of the same topic share a 10-word vocabulary (plus a few
    background words), so any sane clustering separates the topics.
    """
    rng = random.Random(seed)
    repo = DocumentRepository()
    chosen = list(topics) if topics is not None else list(TOPIC_VOCABULARY)
    serial = 0
    for day in range(days):
        for topic in chosen:
            words = TOPIC_VOCABULARY[topic].split()
            for _ in range(docs_per_topic_per_day):
                tokens = rng.choices(words, k=tokens_per_doc)
                tokens += rng.choices(BACKGROUND_WORDS, k=5)
                repo.add_text(
                    doc_id=f"d{serial:04d}",
                    timestamp=float(day) + rng.random() * 0.9,
                    text=" ".join(tokens),
                    topic_id=topic,
                )
                serial += 1
    return repo


@pytest.fixture
def topic_repository() -> DocumentRepository:
    """Default 4-topic, 10-day, 80-document stream."""
    return build_topic_repository()


@pytest.fixture
def small_model() -> ForgettingModel:
    """The paper's Experiment 1 model: β=7 days, γ=14 days."""
    return ForgettingModel(half_life=7.0, life_span=14.0)


@pytest.fixture
def topic_statistics(topic_repository, small_model) -> CorpusStatistics:
    """Statistics over the full topic stream, clock at day 10."""
    return CorpusStatistics.from_scratch(
        small_model, topic_repository.documents(), at_time=10.0
    )
