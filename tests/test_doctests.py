"""Run the doctests embedded in module and class docstrings.

Keeps every ``>>>`` example in the documentation honest.
"""

import doctest

import pytest

import repro.eval.contingency
import repro.experiments.reporting
import repro.forgetting.model
import repro.text.pipeline
import repro.text.stemmer
import repro.text.tokenizer
import repro.text.vocabulary
import repro.vectors.sparse

MODULES = [
    repro.text.stemmer,
    repro.text.vocabulary,
    repro.text.pipeline,
    repro.vectors.sparse,
    repro.forgetting.model,
    repro.experiments.reporting,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
