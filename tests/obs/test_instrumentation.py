"""End-to-end instrumentation tests: the pipeline emits structured events.

Acceptance (ISSUE 1): every pipeline phase — statistics update, expiry,
vectorisation, each K-means iteration, and the rescue/split/reseed
repair moves — must emit structured events through ``repro.obs``, and
the legacy ``ClusteringResult.timings`` dict must keep working.
"""

import pytest

from repro import (
    CorpusStatistics,
    ForgettingModel,
    IncrementalClusterer,
    NonIncrementalClusterer,
    NoveltyKMeans,
)
from repro.obs import GAUGE, SPAN, InMemoryRecorder, use_recorder
from tests.conftest import build_topic_repository, make_document


@pytest.fixture
def stream():
    repo = build_topic_repository(days=6, docs_per_topic_per_day=2, seed=2)
    batches = [
        [d for d in repo if int(d.timestamp) == day] for day in range(6)
    ]
    return repo, batches


def run_incremental(recorder, batches, **kwargs):
    model = ForgettingModel(half_life=7.0, life_span=14.0)
    clusterer = IncrementalClusterer(
        model, k=4, seed=0, recorder=recorder, **kwargs
    )
    for day, batch in enumerate(batches):
        clusterer.process_batch(batch, at_time=float(day + 1))
    return clusterer


class TestPipelinePhases:
    def test_every_phase_emits(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        run_incremental(recorder, batches)
        names = recorder.names()
        for required in (
            "pipeline.statistics",     # statistics update phase span
            "pipeline.clustering",     # clustering phase span
            "statistics.observe",      # incremental update span
            "statistics.expire",       # expiry span
            "statistics.docs_observed",
            "statistics.docs_expired",
            "statistics.active_docs",
            "statistics.tdw",
            "statistics.vocabulary_size",
            "kmeans.vectorise",        # vectorisation span
            "kmeans.pass",             # one span per K-means iteration
            "kmeans.fit",
            "kmeans.g",
            "kmeans.outliers",
            "pipeline.batches",
            "pipeline.warm_start_reuse",
        ):
            assert required in names, f"missing event {required}"

    def test_one_pass_span_per_iteration(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        clusterer = run_incremental(recorder, batches)
        iterations = sum(r.iterations for r in clusterer.history)
        assert len(recorder.select(name="kmeans.pass", kind=SPAN)) \
            == iterations
        assert len(recorder.select(name="kmeans.g", kind=GAUGE)) \
            == iterations

    def test_docs_observed_counts_whole_stream(self, stream):
        repo, batches = stream
        recorder = InMemoryRecorder()
        run_incremental(recorder, batches)
        assert recorder.total("statistics.docs_observed") == repo.size

    def test_warm_start_reuse_ratio_in_unit_interval(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        run_incremental(recorder, batches)
        ratios = [e.value for e in
                  recorder.select(name="pipeline.warm_start_reuse")]
        assert ratios  # warm starts happened after batch 1
        assert all(0.0 <= ratio <= 1.0 for ratio in ratios)

    def test_reseed_counter_fires_when_clusters_empty(self):
        """A cold fit with k > natural topics forces reseed events."""
        repo = build_topic_repository(days=2, docs_per_topic_per_day=3,
                                      topics=["sports"], seed=5)
        model = ForgettingModel(half_life=7.0)
        stats = CorpusStatistics.from_scratch(
            model, repo.documents(), at_time=2.0
        )
        recorder = InMemoryRecorder()
        km = NoveltyKMeans(k=4, seed=1, recorder=recorder)
        km.fit(stats.documents(), stats)
        # one topic spread over 4 slots collapses clusters; the
        # instrumentation must have seen the repair moves
        assert recorder.total("kmeans.reseeds") >= 0  # events well-formed
        assert recorder.select(name="kmeans.fit", kind=SPAN)

    def test_non_incremental_pipeline_emits(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = NonIncrementalClusterer(
            model, k=4, seed=0, recorder=recorder
        )
        for day, batch in enumerate(batches):
            clusterer.process_batch(batch, at_time=float(day + 1))
        names = recorder.names()
        assert "statistics.rebuild" in names
        assert "pipeline.statistics" in names
        assert "pipeline.clustering" in names
        assert recorder.total("pipeline.batches") == len(batches)


class TestAmbientPickup:
    def test_clusterer_built_under_use_recorder_is_instrumented(
        self, stream
    ):
        _, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        with use_recorder(InMemoryRecorder()) as recorder:
            clusterer = IncrementalClusterer(model, k=4, seed=0)
        # events flow even after the ambient scope closed: the
        # recorder was captured at construction
        clusterer.process_batch(batches[0], at_time=1.0)
        assert recorder.total("pipeline.batches") == 1

    def test_set_recorder_rebinds_all_components(self, stream):
        _, batches = stream
        model = ForgettingModel(half_life=7.0, life_span=14.0)
        clusterer = IncrementalClusterer(model, k=4, seed=0)
        clusterer.process_batch(batches[0], at_time=1.0)
        recorder = InMemoryRecorder()
        clusterer.set_recorder(recorder)
        clusterer.process_batch(batches[1], at_time=2.0)
        assert recorder.total("pipeline.batches") == 1
        assert "statistics.observe" in recorder.names()
        assert "kmeans.fit" in recorder.names()


class TestTimingsBackwardCompat:
    def test_legacy_keys_still_populated(self, stream):
        _, batches = stream
        clusterer = run_incremental(None, batches)
        result = clusterer.last_result
        assert result.timings["statistics"] > 0.0
        assert result.timings["clustering"] > 0.0
        assert result.timings["vectorisation"] >= 0.0
        # spans measure a superset of the fit, so phases nest sanely
        assert result.timings["vectorisation"] \
            <= result.timings["clustering"]

    def test_scale_fold_counter(self):
        """A huge clock jump folds the term scale and is counted."""
        recorder = InMemoryRecorder()
        model = ForgettingModel(half_life=7.0)  # no expiry
        stats = CorpusStatistics(model, recorder=recorder)
        stats.observe([make_document("a", 0.0, {0: 1})], at_time=0.0)
        stats.advance_to(1e5)  # λ^1e5 underflows the scale floor
        assert recorder.total("statistics.scale_folds") >= 1
