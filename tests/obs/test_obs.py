"""Unit tests for the repro.obs primitives (events, recorders, sinks)."""

import json
import logging
import math

import pytest

from repro.obs import (
    COUNTER,
    GAUGE,
    SPAN,
    Event,
    InMemoryRecorder,
    JsonlRecorder,
    LoggingRecorder,
    NullRecorder,
    Span,
    get_recorder,
    resolve,
    set_recorder,
    summarize,
    use_recorder,
)


class TestEvent:
    def test_to_dict_round_trips_through_json(self):
        event = Event("kmeans.g", GAUGE, 1.5, {"iteration": 3})
        record = json.loads(json.dumps(event.to_dict()))
        assert record == {"name": "kmeans.g", "kind": "gauge",
                          "value": 1.5, "tags": {"iteration": 3}}

    def test_tags_omitted_when_empty(self):
        assert "tags" not in Event("x", COUNTER, 1.0).to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event("x", "histogram", 1.0)

    def test_to_dict_copies_tags(self):
        tags = {"a": 1}
        record = Event("x", COUNTER, 1.0, tags).to_dict()
        record["tags"]["a"] = 2
        assert tags["a"] == 1


class TestInMemoryRecorder:
    def test_counter_accumulates(self):
        recorder = InMemoryRecorder()
        recorder.counter("docs", 3)
        recorder.counter("docs", 4)
        assert recorder.total("docs") == 7
        assert recorder.counters() == {"docs": 7.0}

    def test_gauge_last_wins(self):
        recorder = InMemoryRecorder()
        recorder.gauge("tdw", 1.0)
        recorder.gauge("tdw", 2.5)
        assert recorder.last("tdw") == 2.5
        assert recorder.last("unseen") is None

    def test_select_by_name_and_kind(self):
        recorder = InMemoryRecorder()
        recorder.counter("a")
        recorder.gauge("a", 2.0)
        recorder.gauge("b", 3.0)
        assert len(recorder.select(name="a")) == 2
        assert len(recorder.select(name="a", kind=GAUGE)) == 1
        assert recorder.names() == {"a", "b"}

    def test_clear(self):
        recorder = InMemoryRecorder()
        recorder.counter("a")
        recorder.clear()
        assert recorder.events == []


class TestSpan:
    def test_measures_even_with_null_recorder(self):
        with Span(NullRecorder(), "phase") as span:
            pass
        assert span.duration >= 0.0

    def test_emits_on_enabled_recorder(self):
        recorder = InMemoryRecorder()
        with recorder.span("phase", batch=4):
            pass
        (event,) = recorder.select(name="phase")
        assert event.kind == SPAN
        assert event.tags["batch"] == 4
        assert event.value >= 0.0

    def test_tags_error_on_exception(self):
        recorder = InMemoryRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("phase"):
                raise RuntimeError("boom")
        (event,) = recorder.select(name="phase")
        assert event.tags["error"] == "RuntimeError"


class TestAmbientRecorder:
    def test_default_is_null(self):
        assert isinstance(get_recorder(), NullRecorder)
        assert resolve(None) is get_recorder()

    def test_use_recorder_scopes_and_restores(self):
        recorder = InMemoryRecorder()
        before = get_recorder()
        with use_recorder(recorder) as active:
            assert active is recorder
            assert resolve(None) is recorder
        assert get_recorder() is before

    def test_explicit_beats_ambient(self):
        explicit = InMemoryRecorder()
        with use_recorder(InMemoryRecorder()):
            assert resolve(explicit) is explicit

    def test_set_recorder_none_restores_null(self):
        previous = set_recorder(InMemoryRecorder())
        try:
            set_recorder(None)
            assert isinstance(get_recorder(), NullRecorder)
        finally:
            set_recorder(previous)


class TestJsonlRecorder:
    def test_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.counter("docs", 5, batch=1)
            recorder.gauge("tdw", 2.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "docs"
        assert records[0]["tags"] == {"batch": 1}
        assert all("t" in record for record in records)
        assert records[0]["t"] <= records[1]["t"]
        assert recorder.events_written == 2

    def test_closed_recorder_drops_silently(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "trace.jsonl")
        recorder.close()
        recorder.close()  # idempotent
        recorder.counter("late")  # no error
        assert recorder.events_written == 0


class TestLoggingRecorder:
    def test_forwards_to_logger(self, caplog):
        logger = logging.getLogger("repro.obs.test")
        recorder = LoggingRecorder(logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger="repro.obs.test"):
            recorder.counter("docs", 3, batch=2)
        assert "docs" in caplog.text
        assert "counter" in caplog.text

    def test_respects_disabled_level(self, caplog):
        logger = logging.getLogger("repro.obs.test2")
        recorder = LoggingRecorder(logger, level=logging.DEBUG)
        with caplog.at_level(logging.WARNING, logger="repro.obs.test2"):
            recorder.counter("docs")
        assert caplog.text == ""


class TestSummarize:
    def test_aggregates_all_kinds(self):
        events = [
            Event("docs", COUNTER, 2.0),
            Event("docs", COUNTER, 3.0),
            Event("tdw", GAUGE, 1.0),
            Event("tdw", GAUGE, 4.0),
            Event("phase", SPAN, 0.5),
            Event("phase", SPAN, 1.5),
        ]
        summary = summarize(events)
        assert summary["counters"] == {"docs": 5.0}
        assert summary["gauges"]["tdw"] == {"last": 4.0, "min": 1.0,
                                            "max": 4.0}
        span = summary["spans"]["phase"]
        assert span["count"] == 2
        assert math.isclose(span["total"], 2.0)
        assert math.isclose(span["mean"], 1.0)
        assert math.isclose(span["max"], 1.5)

    def test_empty_stream(self):
        assert summarize([]) == {"counters": {}, "gauges": {}, "spans": {}}
