"""ClusterService: writer loop, windowing, tailing, HTTP, shutdown."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ClusterService, ClusterSnapshot, Document
from repro.api import build_clusterer
from repro.corpus.streams import iter_batches
from repro.durability import Checkpointer, read_journal
from repro.exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceDegradedError,
)
from repro.obs import InMemoryRecorder
from repro.persistence import document_record

from .conftest import SERVICE_KWARGS, assert_snapshot_parity, reference_snapshot


def make_service(**kwargs):
    recorder = kwargs.pop("recorder", None)
    clusterer = build_clusterer(recorder=recorder, **SERVICE_KWARGS)
    return ClusterService(clusterer, **kwargs)


class TestIngestion:
    def test_versions_count_batches(self, stream):
        _, batches = stream
        with make_service() as service:
            assert service.version == 0
            for at_time, batch in batches:
                service.add(batch, at_time=at_time)
            snapshot = service.flush()
            assert snapshot.version == len(batches)
            assert service.batches_ingested == len(batches)
            assert_snapshot_parity(
                snapshot, reference_snapshot(batches, len(batches))
            )

    def test_empty_add_is_a_noop(self, stream):
        with make_service() as service:
            service.add([], at_time=1.0)
            assert service.flush().version == 0

    def test_rejected_batch_publishes_nothing(self, stream):
        _, batches = stream
        with make_service() as service:
            service.add(batches[0][1], at_time=5.0)
            service.flush()
            # clock cannot go backwards: this batch must be rejected
            service.add(batches[1][1], at_time=1.0)
            service.flush()
            assert service.version == 1
            assert len(service.errors) == 1
            # and the service keeps working afterwards
            service.add(batches[2][1], at_time=6.0)
            assert service.flush().version == 2

    def test_feed_windows_match_iter_batches(self, stream):
        _, batches = stream
        documents = sorted(
            (doc for _, batch in batches for doc in batch),
            key=lambda d: d.timestamp,
        )
        with make_service(window_days=2.0) as service:
            for document in documents:
                service.feed(document)
            snapshot = service.flush()

        reference = build_clusterer(**SERVICE_KWARGS)
        expected_batches = list(iter_batches(documents, 2.0))
        for at_time, batch in expected_batches:
            reference.process_batch(list(batch), at_time=at_time)
        assert snapshot.version == len(expected_batches)
        assert_snapshot_parity(
            snapshot,
            ClusterSnapshot.from_clusterer(
                len(expected_batches), reference
            ),
        )

    def test_feed_requires_window_days(self, stream):
        _, batches = stream
        with make_service() as service:
            with pytest.raises(ConfigurationError, match="window_days"):
                service.feed(batches[0][1][0])

    def test_feed_jumps_far_future_gap(self, stream):
        # a single epoch-milliseconds-style timestamp used to advance
        # the window one step per iteration — billions of iterations;
        # the jump must land in one arithmetic step
        _, batches = stream
        with make_service(window_days=2.0) as service:
            for doc in batches[0][1]:
                service.feed(doc)
            far = Document(
                doc_id="far-future",
                timestamp=4.0e9,
                term_counts=dict(batches[0][1][0].term_counts),
            )
            start = time.monotonic()
            service.feed(far)
            assert time.monotonic() - start < 5.0
            snapshot = service.flush()
            # the day-0 window committed; the far-future singleton is
            # submitted by flush and rejected (everything expired,
            # 1 doc < k) — but nothing hangs and the service still works
            assert snapshot.version == 1
            assert len(service.errors) == 1

    def test_feed_terminates_when_advance_is_a_float_noop(self, stream):
        # window_end large enough that `+= window_days` rounds to a
        # no-op: the old stepping loop never terminated
        _, batches = stream
        with make_service(window_days=1.0) as service:
            doc = batches[0][1][0]
            service.feed(doc)
            huge = Document(
                doc_id="huge",
                timestamp=1.0e17,  # 1e17 + 1.0 == 1e17 in float64
                term_counts=dict(doc.term_counts),
            )
            start = time.monotonic()
            service.feed(huge)
            assert time.monotonic() - start < 5.0
            service.close()


class TestDurabilityWiring:
    def test_snapshot_version_equals_journal_sequence(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        with ClusterService(clusterer, checkpointer=checkpointer) as service:
            for at_time, batch in batches[:4]:
                service.add(batch, at_time=at_time)
            snapshot = service.flush()
            assert snapshot.version == checkpointer.sequence == 4
            contents = read_journal(checkpointer.journal_path)
            assert contents.entries[-1].sequence == snapshot.version

    def test_close_takes_final_checkpoint(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        service = ClusterService(clusterer, checkpointer=checkpointer)
        service.add(batches[0][1], at_time=batches[0][0])
        service.close()
        assert checkpointer.closed
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sequence"] == 1

    def test_journal_failure_degrades_service(self, stream, tmp_path):
        # a commit-hook failure is NOT a rollback: the batch committed
        # in memory but was never journaled. The service must stop
        # ingesting (not file it as rejected) so no later snapshot
        # claims a journal sequence the journal does not hold.
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        service = ClusterService(clusterer, checkpointer=checkpointer)
        service.add(batches[0][1], at_time=batches[0][0])
        service.flush()
        assert service.version == 1

        def broken_record_batch(documents, at_time):
            raise OSError("journal disk gone")

        checkpointer.record_batch = broken_record_batch
        service.add(batches[1][1], at_time=batches[1][0])
        deadline = 200
        while not service.degraded and deadline:
            time.sleep(0.02)
            deadline -= 1
        assert service.degraded
        # no snapshot was published for the diverged batch
        assert service.version == 1
        assert isinstance(service.errors[-1], OSError)
        with pytest.raises(ServiceDegradedError):
            service.add(batches[2][1], at_time=batches[2][0])
        with pytest.raises(ServiceClosedError):  # subclass relation
            service.flush()
        service.close()
        # close() aborted instead of checkpointing: the on-disk state
        # is the journal-consistent prefix recover() expects
        assert checkpointer.closed
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sequence"] == 0
        contents = read_journal(checkpointer.journal_path)
        assert [entry.sequence for entry in contents.entries] == [1]

    def test_kill_skips_final_checkpoint(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        service = ClusterService(clusterer, checkpointer=checkpointer)
        service.add(batches[0][1], at_time=batches[0][0])
        service.flush()
        service.kill()
        assert checkpointer.closed
        # the checkpoint still reflects the *initial* state; only the
        # journal knows about the batch — recovery's job
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sequence"] == 0
        contents = read_journal(checkpointer.journal_path)
        assert [entry.sequence for entry in contents.entries] == [1]


class TestTailing:
    def test_tail_jsonl_picks_up_appended_records(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "incoming.jsonl"
        clusterer = build_clusterer(**SERVICE_KWARGS)
        service = ClusterService(
            clusterer, vocabulary=vocabulary, window_days=1.0
        )
        try:
            service.tail_jsonl(path, poll_interval=0.02)
            with open(path, "a", encoding="utf-8") as handle:
                for _, batch in batches[:3]:
                    for doc in batch:
                        record = document_record(doc, vocabulary)
                        handle.write(json.dumps(record) + "\n")
                    handle.flush()
            deadline = 200
            while service.version < 2 and deadline:
                time.sleep(0.02)
                deadline -= 1
            snapshot = service.flush()
            # days 0,1,2 fed through 1-day windows: days 0 and 1 have
            # closed (a later document arrived); day 2 sits in the
            # partial window until flush submits it
            assert snapshot.version == 3
            assert not service.errors
        finally:
            service.close()

    def test_tail_requires_vocabulary(self, tmp_path):
        with make_service(window_days=1.0) as service:
            with pytest.raises(ConfigurationError, match="vocabulary"):
                service.tail_jsonl(tmp_path / "x.jsonl")

    def test_tail_jsonl_recovers_from_truncation(self, stream, tmp_path):
        # an in-place truncation/rotation leaves the offset past EOF;
        # read() then returns '' forever without an OSError — the
        # tailer must notice the shrinkage and start over
        vocabulary, batches = stream
        path = tmp_path / "incoming.jsonl"
        clusterer = build_clusterer(**SERVICE_KWARGS)
        service = ClusterService(
            clusterer, vocabulary=vocabulary, window_days=1.0
        )
        try:
            service.tail_jsonl(path, poll_interval=0.02)
            with open(path, "a", encoding="utf-8") as handle:
                for _, batch in batches[:3]:
                    for doc in batch:
                        record = document_record(doc, vocabulary)
                        handle.write(json.dumps(record) + "\n")
                    handle.flush()
            deadline = 200
            while service.version < 2 and deadline:
                time.sleep(0.02)
                deadline -= 1
            assert service.version >= 2
            # rotate in place: the new file is shorter than the offset.
            # A day-5 record is past every window the day 0-2 feed left
            # open (the grid anchors at the first doc's timestamp), so
            # picking it up must close the pending window
            day5 = document_record(batches[5][1][0], vocabulary)
            path.write_text(json.dumps(day5) + "\n", encoding="utf-8")
            deadline = 200
            while service.version < 3 and deadline:
                time.sleep(0.02)
                deadline -= 1
            assert service.version >= 3
            assert not service.errors
        finally:
            service.close()


class TestHTTP:
    def test_endpoints(self, stream):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            for at_time, batch in batches[:2]:
                service.add(batch, at_time=at_time)
            service.flush()
            server = service.serve_http(port=0)

            def get(path):
                with urllib.request.urlopen(server.url + path) as response:
                    return json.loads(response.read())

            def post(path, payload):
                request = urllib.request.Request(
                    server.url + path,
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json.loads(response.read())

            stats = get("/stats")
            assert stats["version"] == 2
            assert stats["active_documents"] > 0

            top = get("/top?n=2")
            assert top["version"] == 2
            assert len(top["clusters"]) <= 2

            cluster_id = top["clusters"][0]["cluster_id"]
            members = get(f"/members?cluster={cluster_id}")
            assert members["members"]

            doc = batches[0][1][0]
            answer = post(
                "/assign",
                {"terms": {str(t): c for t, c in doc.term_counts.items()}},
            )
            assert answer["version"] == 2
            assert answer["cluster_id"] is not None

            queued = post("/add", {
                "documents": [
                    document_record(d, vocabulary) for d in batches[2][1]
                ],
                "at_time": batches[2][0],
            })
            assert queued == {"queued": len(batches[2][1])}
            assert service.flush().version == 3

    def test_unknown_path_is_404(self, stream):
        with make_service() as service:
            server = service.serve_http(port=0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_malformed_post_bodies_are_400(self, stream):
        # records missing required fields (KeyError) or with a
        # non-mapping 'terms' (AttributeError/TypeError) are client
        # errors, not 500s with a server traceback
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            server = service.serve_http(port=0)

            def post_error(path, payload):
                request = urllib.request.Request(
                    server.url + path,
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request)
                return excinfo.value

            error = post_error("/add", {
                "documents": [{"timestamp": 1.0, "terms": {"a": 1}}],
                "at_time": 1.0,
            })
            assert error.code == 400
            assert "doc_id" in json.loads(error.read())["error"]

            error = post_error("/add", {
                "documents": [{"doc_id": "d", "timestamp": 1.0}],
                "at_time": 1.0,
            })
            assert error.code == 400

            error = post_error("/add", {
                "documents": [
                    {"doc_id": "d", "timestamp": 1.0, "terms": ["a"]}
                ],
                "at_time": 1.0,
            })
            assert error.code == 400

            error = post_error("/assign", {"terms": ["not", "a", "dict"]})
            assert error.code == 400


class TestInterning:
    def test_concurrent_interning_stays_bijective(self, stream):
        # Vocabulary.add is check-then-act; _intern_record is the
        # choke point every producer thread (HTTP handlers, the
        # tailer) must go through so one term_id is never handed to
        # two different terms
        vocabulary, _ = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            threads = 8
            barrier = threading.Barrier(threads)

            def intern(worker: int):
                barrier.wait()  # maximize contention on the same terms
                documents = []
                for i in range(200):
                    record = {
                        "doc_id": f"w{worker}-d{i}",
                        "timestamp": 1.0,
                        # every worker races over the same new terms
                        "terms": {f"shared-{i}": 1, f"also-{i}": 2},
                    }
                    documents.append((record, service._intern_record(record)))
                return documents

            with ThreadPoolExecutor(max_workers=threads) as pool:
                results = [
                    future.result()
                    for future in [
                        pool.submit(intern, w) for w in range(threads)
                    ]
                ]

        # the mapping is a bijection: no id was assigned twice
        ids = [vocabulary.id(term) for term in vocabulary]
        assert len(ids) == len(set(ids)) == len(vocabulary)
        # and every interned document got the ids its terms map to now
        for documents in results:
            for record, document in documents:
                expected = {
                    vocabulary.id(term): count
                    for term, count in record["terms"].items()
                }
                assert document.term_counts == expected


class TestShutdown:
    def test_close_is_idempotent(self, stream):
        service = make_service()
        service.close()
        service.close()
        assert service.closed

    def test_ingestion_after_close_raises(self, stream):
        _, batches = stream
        service = make_service()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.add(batches[0][1], at_time=1.0)
        with pytest.raises(ServiceClosedError):
            service.flush()

    def test_reads_survive_close(self, stream):
        _, batches = stream
        service = make_service()
        service.add(batches[0][1], at_time=batches[0][0])
        service.flush()
        service.close()
        assert service.snapshot().version == 1
        assert service.stats().version == 1
        assert service.top_clusters()

    def test_close_flushes_partial_feed_window(self, stream):
        _, batches = stream
        service = make_service(window_days=5.0)
        for doc in batches[0][1]:
            service.feed(doc)
        service.close()
        # the partial window was submitted and committed during close
        assert service.version == 1


class TestObservability:
    def test_gauges_and_counters_emitted(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        with make_service(recorder=recorder) as service:
            service.add(batches[0][1], at_time=batches[0][0])
            service.flush()
            service.stats()
        names = recorder.names()
        assert "service.ingest" in names           # span
        assert "service.snapshot_build" in names   # span
        assert "service.ingest_lag_seconds" in names
        assert "service.snapshot_age_seconds" in names
        assert "service.reader_queries" in names
        assert recorder.total("service.snapshots_published") == 1
