"""ClusterService: writer loop, windowing, tailing, HTTP, shutdown."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import ClusterService, ClusterSnapshot
from repro.api import build_clusterer
from repro.corpus.streams import iter_batches
from repro.durability import Checkpointer, read_journal
from repro.exceptions import ConfigurationError, ServiceClosedError
from repro.obs import InMemoryRecorder
from repro.persistence import document_record

from .conftest import SERVICE_KWARGS, assert_snapshot_parity, reference_snapshot


def make_service(**kwargs):
    recorder = kwargs.pop("recorder", None)
    clusterer = build_clusterer(recorder=recorder, **SERVICE_KWARGS)
    return ClusterService(clusterer, **kwargs)


class TestIngestion:
    def test_versions_count_batches(self, stream):
        _, batches = stream
        with make_service() as service:
            assert service.version == 0
            for at_time, batch in batches:
                service.add(batch, at_time=at_time)
            snapshot = service.flush()
            assert snapshot.version == len(batches)
            assert service.batches_ingested == len(batches)
            assert_snapshot_parity(
                snapshot, reference_snapshot(batches, len(batches))
            )

    def test_empty_add_is_a_noop(self, stream):
        with make_service() as service:
            service.add([], at_time=1.0)
            assert service.flush().version == 0

    def test_rejected_batch_publishes_nothing(self, stream):
        _, batches = stream
        with make_service() as service:
            service.add(batches[0][1], at_time=5.0)
            service.flush()
            # clock cannot go backwards: this batch must be rejected
            service.add(batches[1][1], at_time=1.0)
            service.flush()
            assert service.version == 1
            assert len(service.errors) == 1
            # and the service keeps working afterwards
            service.add(batches[2][1], at_time=6.0)
            assert service.flush().version == 2

    def test_feed_windows_match_iter_batches(self, stream):
        _, batches = stream
        documents = sorted(
            (doc for _, batch in batches for doc in batch),
            key=lambda d: d.timestamp,
        )
        with make_service(window_days=2.0) as service:
            for document in documents:
                service.feed(document)
            snapshot = service.flush()

        reference = build_clusterer(**SERVICE_KWARGS)
        expected_batches = list(iter_batches(documents, 2.0))
        for at_time, batch in expected_batches:
            reference.process_batch(list(batch), at_time=at_time)
        assert snapshot.version == len(expected_batches)
        assert_snapshot_parity(
            snapshot,
            ClusterSnapshot.from_clusterer(
                len(expected_batches), reference
            ),
        )

    def test_feed_requires_window_days(self, stream):
        _, batches = stream
        with make_service() as service:
            with pytest.raises(ConfigurationError, match="window_days"):
                service.feed(batches[0][1][0])


class TestDurabilityWiring:
    def test_snapshot_version_equals_journal_sequence(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        with ClusterService(clusterer, checkpointer=checkpointer) as service:
            for at_time, batch in batches[:4]:
                service.add(batch, at_time=at_time)
            snapshot = service.flush()
            assert snapshot.version == checkpointer.sequence == 4
            contents = read_journal(checkpointer.journal_path)
            assert contents.entries[-1].sequence == snapshot.version

    def test_close_takes_final_checkpoint(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        service = ClusterService(clusterer, checkpointer=checkpointer)
        service.add(batches[0][1], at_time=batches[0][0])
        service.close()
        assert checkpointer.closed
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sequence"] == 1

    def test_kill_skips_final_checkpoint(self, stream, tmp_path):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, tmp_path / "state.json", every=100
        )
        service = ClusterService(clusterer, checkpointer=checkpointer)
        service.add(batches[0][1], at_time=batches[0][0])
        service.flush()
        service.kill()
        assert checkpointer.closed
        # the checkpoint still reflects the *initial* state; only the
        # journal knows about the batch — recovery's job
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["sequence"] == 0
        contents = read_journal(checkpointer.journal_path)
        assert [entry.sequence for entry in contents.entries] == [1]


class TestTailing:
    def test_tail_jsonl_picks_up_appended_records(self, stream, tmp_path):
        vocabulary, batches = stream
        path = tmp_path / "incoming.jsonl"
        clusterer = build_clusterer(**SERVICE_KWARGS)
        service = ClusterService(
            clusterer, vocabulary=vocabulary, window_days=1.0
        )
        try:
            service.tail_jsonl(path, poll_interval=0.02)
            with open(path, "a", encoding="utf-8") as handle:
                for _, batch in batches[:3]:
                    for doc in batch:
                        record = document_record(doc, vocabulary)
                        handle.write(json.dumps(record) + "\n")
                    handle.flush()
            deadline = 200
            while service.version < 2 and deadline:
                time.sleep(0.02)
                deadline -= 1
            snapshot = service.flush()
            # days 0,1,2 fed through 1-day windows: days 0 and 1 have
            # closed (a later document arrived); day 2 sits in the
            # partial window until flush submits it
            assert snapshot.version == 3
            assert not service.errors
        finally:
            service.close()

    def test_tail_requires_vocabulary(self, tmp_path):
        with make_service(window_days=1.0) as service:
            with pytest.raises(ConfigurationError, match="vocabulary"):
                service.tail_jsonl(tmp_path / "x.jsonl")


class TestHTTP:
    def test_endpoints(self, stream):
        vocabulary, batches = stream
        clusterer = build_clusterer(**SERVICE_KWARGS)
        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            for at_time, batch in batches[:2]:
                service.add(batch, at_time=at_time)
            service.flush()
            server = service.serve_http(port=0)

            def get(path):
                with urllib.request.urlopen(server.url + path) as response:
                    return json.loads(response.read())

            def post(path, payload):
                request = urllib.request.Request(
                    server.url + path,
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json.loads(response.read())

            stats = get("/stats")
            assert stats["version"] == 2
            assert stats["active_documents"] > 0

            top = get("/top?n=2")
            assert top["version"] == 2
            assert len(top["clusters"]) <= 2

            cluster_id = top["clusters"][0]["cluster_id"]
            members = get(f"/members?cluster={cluster_id}")
            assert members["members"]

            doc = batches[0][1][0]
            answer = post(
                "/assign",
                {"terms": {str(t): c for t, c in doc.term_counts.items()}},
            )
            assert answer["version"] == 2
            assert answer["cluster_id"] is not None

            queued = post("/add", {
                "documents": [
                    document_record(d, vocabulary) for d in batches[2][1]
                ],
                "at_time": batches[2][0],
            })
            assert queued == {"queued": len(batches[2][1])}
            assert service.flush().version == 3

    def test_unknown_path_is_404(self, stream):
        with make_service() as service:
            server = service.serve_http(port=0)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/nope")
            assert excinfo.value.code == 404


class TestShutdown:
    def test_close_is_idempotent(self, stream):
        service = make_service()
        service.close()
        service.close()
        assert service.closed

    def test_ingestion_after_close_raises(self, stream):
        _, batches = stream
        service = make_service()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.add(batches[0][1], at_time=1.0)
        with pytest.raises(ServiceClosedError):
            service.flush()

    def test_reads_survive_close(self, stream):
        _, batches = stream
        service = make_service()
        service.add(batches[0][1], at_time=batches[0][0])
        service.flush()
        service.close()
        assert service.snapshot().version == 1
        assert service.stats().version == 1
        assert service.top_clusters()

    def test_close_flushes_partial_feed_window(self, stream):
        _, batches = stream
        service = make_service(window_days=5.0)
        for doc in batches[0][1]:
            service.feed(doc)
        service.close()
        # the partial window was submitted and committed during close
        assert service.version == 1


class TestObservability:
    def test_gauges_and_counters_emitted(self, stream):
        _, batches = stream
        recorder = InMemoryRecorder()
        with make_service(recorder=recorder) as service:
            service.add(batches[0][1], at_time=batches[0][0])
            service.flush()
            service.stats()
        names = recorder.names()
        assert "service.ingest" in names           # span
        assert "service.snapshot_build" in names   # span
        assert "service.ingest_lag_seconds" in names
        assert "service.snapshot_age_seconds" in names
        assert "service.reader_queries" in names
        assert recorder.total("service.snapshots_published") == 1
