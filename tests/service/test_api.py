"""repro.api: build_clusterer and the open_stream facade."""

from __future__ import annotations

import pytest

from repro import ClustererConfig, IncrementalClusterer
from repro.api import StreamSession, build_clusterer, open_stream
from repro.durability import read_journal
from repro.exceptions import ConfigurationError
from repro.obs import InMemoryRecorder

from .conftest import SERVICE_KWARGS, assert_snapshot_parity, reference_snapshot


class TestBuildClusterer:
    def test_builds_from_knobs(self):
        clusterer = build_clusterer(k=4, seed=2, half_life=3.0)
        assert isinstance(clusterer, IncrementalClusterer)
        assert clusterer.kmeans.k == 4
        assert clusterer.model.half_life == 3.0

    def test_builds_from_config(self):
        config = ClustererConfig(k=5, seed=9)
        clusterer = build_clusterer(config)
        assert clusterer.kmeans.k == 5

    def test_config_and_k_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            build_clusterer(ClustererConfig(k=5), k=5)

    def test_k_required_without_config(self):
        with pytest.raises(ConfigurationError, match="k is required"):
            build_clusterer()

    def test_recorder_grafted_onto_config(self):
        recorder = InMemoryRecorder()
        clusterer = build_clusterer(
            ClustererConfig(k=3), recorder=recorder
        )
        assert clusterer.recorder is recorder


class TestOpenStream:
    def test_session_ingests_and_queries(self, stream):
        _, batches = stream
        with open_stream(**SERVICE_KWARGS) as session:
            assert isinstance(session, StreamSession)
            for at_time, batch in batches[:3]:
                session.add(batch, at_time=at_time)
            snapshot = session.flush()
            assert snapshot.version == 3
            assert session.version == 3
            assert session.stats().version == 3
            assert session.top_clusters()
            assert not session.errors
        assert session.closed

    def test_always_has_a_vocabulary(self):
        with open_stream(**SERVICE_KWARGS) as session:
            assert session.vocabulary is not None

    def test_text_assign_round_trip(self):
        # documents interned through the session vocabulary can be
        # queried back as raw text — the snapshot carries the front-end
        from tests.conftest import build_topic_repository

        repository = build_topic_repository()
        with open_stream(
            vocabulary=repository.vocabulary,
            pipeline=repository.pipeline,
            **SERVICE_KWARGS,
        ) as session:
            documents = sorted(
                repository.documents(), key=lambda d: d.timestamp
            )
            session.add(documents, at_time=documents[-1].timestamp + 1.0)
            session.flush()
            answer = session.assign(
                "sports team wins the championship game"
            )
            assert answer.version == 1

    def test_resume_rejects_pipeline_knobs(self, tmp_path):
        with pytest.raises(ConfigurationError, match="resume"):
            open_stream(resume=tmp_path / "none.ckpt", k=3)

    def test_checkpointed_session_resumes_with_continuing_versions(
        self, stream, tmp_path
    ):
        vocabulary, batches = stream
        path = tmp_path / "run.ckpt"
        with open_stream(
            vocabulary=vocabulary, checkpoint=path, **SERVICE_KWARGS
        ) as session:
            for at_time, batch in batches[:3]:
                session.add(batch, at_time=at_time)
            assert session.flush().version == 3

        with open_stream(resume=path) as session:
            assert session.version == 3
            at_time, batch = batches[3]
            session.add(batch, at_time=at_time)
            snapshot = session.flush()
            assert snapshot.version == 4
            assert_snapshot_parity(
                snapshot, reference_snapshot(batches, 4)
            )
            journal = read_journal(
                session.service._checkpointer.journal_path
            )
            assert journal.base_sequence + len(journal.entries) == 4
