"""Shared fixtures for the service suite.

Reuses the durability suite's stream builder (two clearly separated
topics, daily batches) and its batch-prefix reference machinery: the
acceptance property here is that every snapshot a reader observes
equals the batch-mode clusterer state after the same batch prefix.
"""

from __future__ import annotations

import math
from typing import Any, List, Tuple

import pytest

from repro import ClusterSnapshot, Document, Vocabulary
from repro.api import build_clusterer
from tests.durability.conftest import Batch, build_batches

__all__ = [
    "Batch",
    "build_batches",
    "SERVICE_KWARGS",
    "PARITY_TOL",
    "reference_snapshot",
    "assert_snapshot_parity",
    "probe_like",
]

#: Pipeline settings every clusterer in this suite shares, so service
#: runs and reference replays are comparable.
SERVICE_KWARGS = dict(k=3, seed=1, half_life=7.0, life_span=14.0)

#: Snapshot floats must match the batch-mode state to this tolerance
#: (the ISSUE's acceptance bound; in practice they are bit-equal).
PARITY_TOL = 1e-9


@pytest.fixture
def stream() -> Tuple[Vocabulary, List[Batch]]:
    return build_batches(days=6)


def reference_snapshot(
    batches: List[Batch], upto: int, **kwargs: Any
) -> ClusterSnapshot:
    """Snapshot of a batch-mode clusterer after ``upto`` batches."""
    merged = dict(SERVICE_KWARGS)
    merged.update(kwargs)
    clusterer = build_clusterer(**merged)
    for at_time, batch in batches[:upto]:
        clusterer.process_batch(list(batch), at_time=at_time)
    return ClusterSnapshot.from_clusterer(upto, clusterer)


def assert_snapshot_parity(
    observed: ClusterSnapshot, reference: ClusterSnapshot
) -> None:
    """``observed`` equals the batch-mode state at the same version."""
    assert observed.version == reference.version
    assert observed.at_time == reference.at_time
    assert observed.clusters == reference.clusters
    assert observed.outliers == reference.outliers
    assert math.isclose(
        observed.clustering_index,
        reference.clustering_index,
        rel_tol=PARITY_TOL,
        abs_tol=PARITY_TOL,
    )
    assert math.isclose(
        observed.frozen.tdw, reference.frozen.tdw,
        rel_tol=PARITY_TOL, abs_tol=PARITY_TOL,
    )


def probe_like(document: Document, timestamp: float = 99.0) -> Document:
    """A fresh query document with an existing document's terms."""
    return Document(
        doc_id="probe",
        timestamp=timestamp,
        term_counts=dict(document.term_counts),
    )
