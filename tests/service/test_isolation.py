"""Snapshot isolation: the PR's acceptance property.

Under live ingestion with at least four concurrent reader threads,
every snapshot a reader observes must equal the batch-mode clusterer
state after the same batch prefix (to 1e-9), and snapshot versions must
be monotonic and gapless — including across a hard kill and recovery.
"""

from __future__ import annotations

import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterService
from repro.api import build_clusterer, open_stream
from repro.durability import Checkpointer

from .conftest import (
    SERVICE_KWARGS,
    assert_snapshot_parity,
    build_batches,
    probe_like,
    reference_snapshot,
)

READERS = 4


class SnapshotObserver:
    """Reader thread harness: hammers the query API, records what it saw.

    Keeps the first snapshot observed at each version (all observations
    of one version must be the *same* immutable object anyway) and every
    (version, answer) pair, so the main thread can afterwards check each
    against the batch-mode reference.
    """

    def __init__(self, service: ClusterService, probe) -> None:
        self.service = service
        self.probe = probe
        self.stop = threading.Event()
        self.versions: list = []
        self.snapshots: dict = {}
        self.failures: list = []
        self.threads = [
            threading.Thread(target=self._run, daemon=True)
            for _ in range(READERS)
        ]

    def _run(self) -> None:
        try:
            while not self.stop.is_set():
                snapshot = self.service.snapshot()
                self.versions.append(snapshot.version)
                self.snapshots.setdefault(snapshot.version, snapshot)
                stats = self.service.stats()
                answer = self.service.assign(self.probe)
                # a query is answered by ONE committed snapshot: the
                # version it reports must exist, and internal fields
                # must be mutually consistent (no torn reads)
                if stats.version != snapshot.version:
                    # another commit landed between the two reads —
                    # fine, but both must be committed versions
                    self.snapshots.setdefault(
                        stats.version, self.service.snapshot()
                    )
                if answer.version < snapshot.version:
                    self.failures.append(
                        f"assign answered from version {answer.version} "
                        f"after version {snapshot.version} was visible"
                    )
        except BaseException as exc:  # noqa: BLE001 - surfaced in test
            self.failures.append(repr(exc))

    def __enter__(self) -> "SnapshotObserver":
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        for thread in self.threads:
            thread.join(timeout=10.0)


class TestSnapshotIsolation:
    def test_readers_only_see_committed_prefixes(self):
        vocabulary, batches = build_batches(days=8)
        probe = probe_like(batches[0][1][0])
        clusterer = build_clusterer(**SERVICE_KWARGS)
        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            with SnapshotObserver(service, probe) as observer:
                for at_time, batch in batches:
                    service.add(batch, at_time=at_time)
                    # let readers overlap in-flight ingestion
                    time.sleep(0.005)
                service.flush()
                # one more settle pass so readers see the final version
                time.sleep(0.02)
            assert not observer.failures, observer.failures[:5]

            observed = sorted(observer.snapshots)
            assert observed, "readers observed no snapshots"
            # versions are a subset of the committed batch prefixes
            assert observed[0] >= 0
            assert observed[-1] == len(batches)
            # per-thread observation order is interleaved in `versions`,
            # but the set of versions can never skip outside 0..N
            assert all(0 <= v <= len(batches) for v in observer.versions)

        # every observed snapshot equals the batch-mode state after the
        # same prefix — THE acceptance criterion, at 1e-9
        for version in observed:
            assert_snapshot_parity(
                observer.snapshots[version],
                reference_snapshot(batches, version),
            )

    def test_reader_versions_monotonic_per_thread(self):
        vocabulary, batches = build_batches(days=6)
        clusterer = build_clusterer(**SERVICE_KWARGS)
        per_thread: dict = {}
        stop = threading.Event()

        def reader() -> None:
            mine = per_thread.setdefault(
                threading.get_ident(), []
            )
            while not stop.is_set():
                mine.append(service.snapshot().version)

        with ClusterService(clusterer, vocabulary=vocabulary) as service:
            threads = [
                threading.Thread(target=reader, daemon=True)
                for _ in range(READERS)
            ]
            for thread in threads:
                thread.start()
            for at_time, batch in batches:
                service.add(batch, at_time=at_time)
            service.flush()
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

        assert len(per_thread) == READERS
        for versions in per_thread.values():
            assert versions == sorted(versions), (
                "a reader saw the published version go backwards"
            )

    def test_readers_never_block_on_slow_writer(self):
        """While the writer grinds a batch, reads answer instantly from
        the previous snapshot (they take no lock the writer holds)."""
        vocabulary, batches = build_batches(days=6)
        clusterer = build_clusterer(**SERVICE_KWARGS)
        gate = threading.Event()
        original = clusterer.process_batch

        def slow_process_batch(documents, at_time):
            gate.set()
            time.sleep(0.25)
            return original(documents, at_time=at_time)

        clusterer.process_batch = slow_process_batch
        try:
            with ClusterService(
                clusterer, vocabulary=vocabulary
            ) as service:
                at_time, batch = batches[0]
                service.add(batch, at_time=at_time)
                assert gate.wait(timeout=5.0), "writer never started"
                # the writer is now mid-batch; a read must return the
                # previous (empty) snapshot immediately
                started = time.monotonic()
                snapshot = service.snapshot()
                stats = service.stats()
                elapsed = time.monotonic() - started
                assert snapshot.version == 0
                assert stats.version == 0
                assert elapsed < 0.2, (
                    f"read blocked for {elapsed:.3f}s behind the writer"
                )
                assert service.flush().version == 1
        finally:
            clusterer.process_batch = original


class TestVersionContinuity:
    @settings(max_examples=5, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=5))
    def test_versions_gapless_across_kill_and_recover(
        self, cut: int, tmp_path_factory
    ):
        """Kill mid-run at an arbitrary point, recover, resume: the
        union of versions published before and after is 1..N with no
        gap and no repeat."""
        tmp_path = tmp_path_factory.mktemp("continuity")
        vocabulary, batches = build_batches(days=8)
        path = tmp_path / "run.ckpt"

        published: list = []

        clusterer = build_clusterer(**SERVICE_KWARGS)
        checkpointer = Checkpointer(
            clusterer, vocabulary, path, every=2
        )
        service = ClusterService(
            clusterer, checkpointer=checkpointer, vocabulary=vocabulary
        )
        for at_time, batch in batches[:cut]:
            service.add(batch, at_time=at_time)
        service.flush()
        published.extend(range(1, service.version + 1))
        service.kill()  # no final checkpoint: recovery must replay

        with open_stream(resume=path) as session:
            assert session.version == cut, (
                "recovery lost committed batches"
            )
            for at_time, batch in batches[cut:]:
                session.add(batch, at_time=at_time)
            snapshot = session.flush()
            published.extend(range(cut + 1, snapshot.version + 1))

            assert published == list(range(1, len(batches) + 1)), (
                f"versions not gapless: {published}"
            )
            assert_snapshot_parity(
                snapshot, reference_snapshot(batches, len(batches))
            )
