"""ClusterSnapshot: immutability, correctness of the precomputed view."""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro import ClusterSnapshot, Document
from repro.api import build_clusterer
from repro.core.engines.base import affine_gain_coefficients
from repro.exceptions import ConfigurationError

from .conftest import SERVICE_KWARGS, assert_snapshot_parity, probe_like


def run_clusterer(batches, upto=None):
    clusterer = build_clusterer(**SERVICE_KWARGS)
    for at_time, batch in batches[:upto]:
        clusterer.process_batch(list(batch), at_time=at_time)
    return clusterer


class TestConstruction:
    def test_reflects_clusterer_state(self, stream):
        _, batches = stream
        clusterer = run_clusterer(batches)
        snapshot = ClusterSnapshot.from_clusterer(7, clusterer)
        assert snapshot.version == 7
        assert snapshot.at_time == clusterer.statistics.now
        assert snapshot.k == clusterer.kmeans.k
        result = clusterer.last_result
        assert snapshot.clustering_index == result.clustering_index
        assert snapshot.clusters == tuple(
            tuple(sorted(members)) for members in result.clusters
        )
        assert set(snapshot.outliers) == set(result.outliers)
        assert snapshot.frozen.size == clusterer.statistics.size
        sizes = [len(members) for members in snapshot.clusters]
        np.testing.assert_array_equal(snapshot.sizes, sizes)

    def test_gain_coefficients_match_engine_formula(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        for p in range(snapshot.k):
            a, b = affine_gain_coefficients(
                snapshot.criterion,
                int(snapshot.sizes[p]),
                float(snapshot.crpp[p]),
                float(snapshot.ss[p]),
            )
            assert snapshot.gain_a[p] == a
            assert snapshot.gain_b[p] == b

    def test_never_fed_clusterer_snapshots_empty(self):
        snapshot = ClusterSnapshot.from_clusterer(
            0, build_clusterer(**SERVICE_KWARGS)
        )
        assert snapshot.version == 0
        assert snapshot.at_time is None
        assert snapshot.term_ids.size == 0
        assert snapshot.clusters == ((), (), ())
        assert snapshot.top_clusters() == []
        assert snapshot.assign({1: 2}).is_outlier

    def test_parity_against_reference_builder(self, stream):
        _, batches = stream
        clusterer = run_clusterer(batches, upto=4)
        observed = ClusterSnapshot.from_clusterer(4, clusterer)
        from .conftest import reference_snapshot

        assert_snapshot_parity(observed, reference_snapshot(batches, 4))


class TestImmutability:
    def test_arrays_are_read_only(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        for array in (
            snapshot.term_ids, snapshot.idf, snapshot.representatives,
            snapshot.sizes, snapshot.crpp, snapshot.ss,
            snapshot.gain_a, snapshot.gain_b,
            snapshot.frozen.term_ids, snapshot.frozen.term_masses,
        ):
            with pytest.raises(ValueError):
                array[..., 0] = 1

    def test_dataclass_is_frozen(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshot.version = 99

    def test_snapshot_detached_from_live_statistics(self, stream):
        _, batches = stream
        clusterer = run_clusterer(batches, upto=3)
        snapshot = ClusterSnapshot.from_clusterer(3, clusterer)
        before = (
            snapshot.frozen.tdw,
            snapshot.clusters,
            snapshot.clustering_index,
        )
        at_time, batch = batches[3]
        clusterer.process_batch(list(batch), at_time=at_time)
        assert (
            snapshot.frozen.tdw,
            snapshot.clusters,
            snapshot.clustering_index,
        ) == before


class TestAssign:
    def test_topic_probe_lands_in_its_topic_cluster(self, stream):
        _, batches = stream
        clusterer = run_clusterer(batches)
        snapshot = ClusterSnapshot.from_clusterer(1, clusterer)
        # probe with the exact terms of an active document: must land in
        # that document's cluster
        some_doc = batches[-1][1][0]
        answer = snapshot.assign(probe_like(some_doc))
        assert not answer.is_outlier
        assert answer.gain > 0.0
        assert some_doc.doc_id in snapshot.members(answer.cluster_id)
        assert answer.version == snapshot.version

    def test_mapping_and_document_queries_agree(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        doc = probe_like(batches[-1][1][1])
        via_doc = snapshot.assign(doc)
        via_map = snapshot.assign(dict(doc.term_counts))
        assert via_doc.cluster_id == via_map.cluster_id
        assert math.isclose(via_doc.gain, via_map.gain, rel_tol=1e-12)

    def test_unknown_terms_only_is_outlier(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        unseen = int(snapshot.term_ids.max()) + 1000
        answer = snapshot.assign({unseen: 3})
        assert answer.is_outlier
        assert answer.cluster_id is None

    def test_empty_query_is_outlier(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        assert snapshot.assign({}).is_outlier
        assert snapshot.assign(
            Document(doc_id="e", timestamp=9.0, term_counts={})
        ).is_outlier

    def test_text_query_without_front_end_raises(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        with pytest.raises(ConfigurationError, match="text front-end"):
            snapshot.assign("sports teams playing games")


class TestReads:
    def test_top_clusters_sorted_by_size(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        infos = snapshot.top_clusters(10)
        assert infos, "expected non-empty clusters"
        sizes = [info.size for info in infos]
        assert sizes == sorted(sizes, reverse=True)
        for info in infos:
            assert info.size == len(snapshot.members(info.cluster_id))

    def test_top_clusters_respects_n(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        assert len(snapshot.top_clusters(1)) == 1

    def test_members_bounds_checked(self, stream):
        _, batches = stream
        snapshot = ClusterSnapshot.from_clusterer(
            1, run_clusterer(batches)
        )
        with pytest.raises(ConfigurationError, match="outside"):
            snapshot.members(99)
        with pytest.raises(ConfigurationError, match="outside"):
            snapshot.members(-1)

    def test_stats_summary(self, stream):
        _, batches = stream
        clusterer = run_clusterer(batches)
        snapshot = ClusterSnapshot.from_clusterer(6, clusterer)
        stats = snapshot.stats()
        assert stats.version == 6
        assert stats.active_documents == clusterer.statistics.size
        assert stats.k == 3
        assert stats.non_empty_clusters == sum(
            1 for members in snapshot.clusters if members
        )
        assert stats.terms == snapshot.term_ids.size
        assert stats.clustering_index == snapshot.clustering_index
