"""Shared array type aliases.

Every numerical surface in the package uses float64 (the parity suites
assert bit-equality between engines, which only holds in one dtype) and
integer id/index arrays. Centralising the aliases keeps annotations
short and makes the dtype contract greppable.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

#: Weights, similarities, statistics: always float64.
FloatArray = npt.NDArray[np.float64]

#: Term ids, row indices, CSR indptr: any signed integer dtype (np.intp
#: from nonzero()/argsort() and explicit int64 columns both satisfy it).
IntArray = npt.NDArray[np.signedinteger[Any]]

#: Masks (empty-document flags, candidate membership).
BoolArray = npt.NDArray[np.bool_]
