"""Experiment 2 — "what are recent topics?" (Tables 2, 4; Figures 1-4).

Paper setup (Section 6.2): the 7,578-document, 96-topic TDT2 subset is
split into six ~30-day windows. Each window is clustered independently
with the **non-incremental** version (the paper argues the incremental
and non-incremental results are close, and only the final per-window
result matters here) at K=24, life span γ=30 days, for two half-life
values β ∈ {7, 30} days. Each clustering is evaluated by the marked-
cluster precision/recall protocol (Section 6.2.3) producing the
micro/macro-averaged F1 of Table 4 and the per-cluster bars of
Figures 1-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corpus.document import Document
from ..corpus.synthetic import (
    SyntheticCorpusConfig,
    TABLE2_WINDOW_DOCS,
    TABLE2_WINDOW_TOPICS,
    TDT2Generator,
)
from ..corpus.timewindow import TimeWindow, split_into_windows
from ..core.kmeans import NoveltyKMeans
from ..core.result import ClusteringResult
from ..eval.metrics import WindowEvaluation, evaluate_clustering
from ..forgetting.model import ForgettingModel
from ..forgetting.statistics import CorpusStatistics
from .reporting import render_table

#: Paper Table 4: (window, beta) -> (micro F1, macro F1).
PAPER_TABLE4: Dict[Tuple[int, float], Tuple[float, float]] = {
    (0, 7.0): (0.34, 0.42), (0, 30.0): (0.52, 0.59),
    (1, 7.0): (0.40, 0.50), (1, 30.0): (0.55, 0.67),
    (2, 7.0): (0.32, 0.37), (2, 30.0): (0.53, 0.61),
    (3, 7.0): (0.39, 0.48), (3, 30.0): (0.53, 0.59),
    (4, 7.0): (0.39, 0.50), (4, 30.0): (0.53, 0.57),
    (5, 7.0): (0.51, 0.55), (5, 30.0): (0.60, 0.66),
}


@dataclass
class ExperimentTwoConfig:
    """Parameters of the quality experiment (paper defaults).

    ``pipeline`` selects how each window is clustered:

    * ``"non-incremental"`` (paper §6.2.2): one batch per window,
      statistics built from scratch, cold-started clustering;
    * ``"incremental"``: the window replayed as ``batch_days``-wide
      on-line batches through :class:`IncrementalClusterer` — the
      deployment-shaped variant the paper argues gives "roughly close"
      results.
    """

    seed: int = 1998
    k: int = 24
    betas: Tuple[float, ...] = (7.0, 30.0)
    life_span: float = 30.0
    delta: float = 0.01
    max_iterations: int = 30
    engine: str = "dense"
    clustering_seed: int = 3
    pipeline: str = "non-incremental"
    batch_days: float = 1.0
    corpus: Optional[SyntheticCorpusConfig] = None

    def __post_init__(self) -> None:
        if self.pipeline not in ("non-incremental", "incremental"):
            raise ValueError(
                f"pipeline must be 'non-incremental' or 'incremental', "
                f"got {self.pipeline!r}"
            )

    def corpus_config(self) -> SyntheticCorpusConfig:
        if self.corpus is not None:
            return self.corpus
        return SyntheticCorpusConfig(seed=self.seed)


@dataclass(frozen=True)
class WindowRun:
    """One (window, β) clustering with its evaluation."""

    window_index: int
    beta: float
    result: ClusteringResult
    evaluation: WindowEvaluation


@dataclass
class ExperimentTwoResult:
    """All window runs plus the corpus windows they ran over."""

    windows: List[TimeWindow]
    runs: Dict[Tuple[int, float], WindowRun] = field(default_factory=dict)

    def run(self, window_index: int, beta: float) -> WindowRun:
        return self.runs[(window_index, beta)]

    # -- Table 2 ------------------------------------------------------------

    def table2_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        labels = [
            "No. of docs", "No. of topics", "Min. topic size",
            "Max. topic size", "Med. topic size", "Mean topic size",
        ]
        stats = [w.statistics() for w in self.windows]
        keys = [
            "documents", "topics", "min_topic_size",
            "max_topic_size", "median_topic_size", "mean_topic_size",
        ]
        for label, key in zip(labels, keys):
            row: List[object] = [label]
            for s in stats:
                value = s[key]
                row.append(
                    f"{value:.2f}" if isinstance(value, float)
                    and value != int(value) else int(value)
                )
            rows.append(row)
        return rows

    def render_table2(self) -> str:
        headers = ["Statistic"] + [f"W{w.index + 1}" for w in self.windows]
        measured = render_table(
            headers, self.table2_rows(),
            title="Table 2 — time-window statistics (measured)",
        )
        paper = (
            f"paper: docs={list(TABLE2_WINDOW_DOCS)}, "
            f"topics={list(TABLE2_WINDOW_TOPICS)}"
        )
        return measured + "\n" + paper

    # -- Table 4 ------------------------------------------------------------

    def table4_rows(self, betas: Sequence[float]) -> List[List[str]]:
        rows: List[List[str]] = []
        for window in self.windows:
            micro = []
            macro = []
            for beta in betas:
                run = self.runs.get((window.index, beta))
                if run is None:
                    micro.append("--")
                    macro.append("--")
                else:
                    micro.append(f"{run.evaluation.micro_f1:.2f}")
                    macro.append(f"{run.evaluation.macro_f1:.2f}")
            paper = [
                PAPER_TABLE4.get((window.index, beta)) for beta in betas
            ]
            paper_micro = " / ".join(
                f"{p[0]:.2f}" if p else "--" for p in paper
            )
            paper_macro = " / ".join(
                f"{p[1]:.2f}" if p else "--" for p in paper
            )
            rows.append([
                f"window {window.index + 1}",
                " / ".join(micro),
                paper_micro,
                " / ".join(macro),
                paper_macro,
            ])
        return rows

    def render_table4(self, betas: Sequence[float] = (7.0, 30.0)) -> str:
        beta_label = " / ".join(f"β={int(b)}" for b in betas)
        return render_table(
            [
                "Time window",
                f"micro F1 ({beta_label})",
                "micro F1 (paper)",
                f"macro F1 ({beta_label})",
                "macro F1 (paper)",
            ],
            self.table4_rows(betas),
            title="Table 4 — micro/macro-average F1 (measured vs paper)",
        )


def run_window(
    documents: Sequence[Document],
    at_time: float,
    beta: float,
    life_span: float = 30.0,
    k: int = 24,
    delta: float = 0.01,
    max_iterations: int = 30,
    seed: Optional[int] = 3,
    engine: str = "dense",
) -> Tuple[ClusteringResult, WindowEvaluation]:
    """Cluster one window non-incrementally and evaluate it.

    ``at_time`` is the clustering timestamp (normally the window end,
    matching the on-line situation of "clustering triggered when the
    window's news has arrived").
    """
    model = ForgettingModel(half_life=beta, life_span=life_span)
    statistics = CorpusStatistics.from_scratch(model, documents, at_time)
    kmeans = NoveltyKMeans(
        k=k,
        delta=delta,
        max_iterations=max_iterations,
        seed=seed,
        engine=engine,
    )
    result = kmeans.fit(statistics.documents(), statistics)
    truth = {doc.doc_id: doc.topic_id for doc in documents}
    evaluation = evaluate_clustering(result.clusters, truth)
    return result, evaluation


def run_window_incremental(
    documents: Sequence[Document],
    window_start: float,
    beta: float,
    life_span: float = 30.0,
    k: int = 24,
    delta: float = 0.01,
    max_iterations: int = 30,
    seed: Optional[int] = 3,
    engine: str = "dense",
    batch_days: float = 1.0,
) -> Tuple[ClusteringResult, WindowEvaluation]:
    """Cluster one window *on-line*: daily batches with warm starts.

    The evaluation scores the final batch's clustering against the full
    window's labels, mirroring "the final result when we have processed
    all the documents in a time window" (paper §6.2.2).
    """
    from ..core.incremental import IncrementalClusterer
    from ..corpus.streams import replay

    model = ForgettingModel(half_life=beta, life_span=life_span)
    clusterer = IncrementalClusterer(
        model, k=k, delta=delta, max_iterations=max_iterations,
        seed=seed, engine=engine,
    )
    results = replay(
        clusterer, documents, batch_days=batch_days, origin=window_start
    )
    if not results:
        raise ValueError("window contained no documents")
    result = results[-1]
    truth = {doc.doc_id: doc.topic_id for doc in documents}
    evaluation = evaluate_clustering(result.clusters, truth)
    return result, evaluation


def run_experiment2(
    config: Optional[ExperimentTwoConfig] = None,
    windows: Optional[Sequence[int]] = None,
) -> ExperimentTwoResult:
    """Run Experiment 2 over all (or selected) windows and betas."""
    if config is None:
        config = ExperimentTwoConfig()
    corpus_config = config.corpus_config()
    generator = TDT2Generator(corpus_config)
    repository = generator.generate()
    all_windows = split_into_windows(
        repository.documents(),
        corpus_config.window_days,
        end=corpus_config.total_days,
    )
    result = ExperimentTwoResult(windows=list(all_windows))
    selected = (
        set(windows) if windows is not None
        else {w.index for w in all_windows}
    )
    for window in all_windows:
        if window.index not in selected or not window.documents:
            continue
        for beta in config.betas:
            if config.pipeline == "incremental":
                clustering, evaluation = run_window_incremental(
                    window.documents,
                    window_start=window.start,
                    beta=beta,
                    life_span=config.life_span,
                    k=config.k,
                    delta=config.delta,
                    max_iterations=config.max_iterations,
                    seed=config.clustering_seed,
                    engine=config.engine,
                    batch_days=config.batch_days,
                )
            else:
                clustering, evaluation = run_window(
                    window.documents,
                    at_time=window.end,
                    beta=beta,
                    life_span=config.life_span,
                    k=config.k,
                    delta=config.delta,
                    max_iterations=config.max_iterations,
                    seed=config.clustering_seed,
                    engine=config.engine,
                )
            result.runs[(window.index, beta)] = WindowRun(
                window_index=window.index,
                beta=beta,
                result=clustering,
                evaluation=evaluation,
            )
    return result
