"""One-command reproduction report.

``generate_report`` runs the paper's two experiments plus the probe
narrative and renders a single Markdown document with measured-vs-paper
numbers — the benchmark harness condensed for people who just want the
answer. Exposed on the CLI as ``repro report``.
"""

from __future__ import annotations

import time as time_module
from dataclasses import dataclass
from typing import List, Optional

from .. import __version__
from ..corpus.synthetic import (
    SyntheticCorpusConfig,
    TABLE2_WINDOW_DOCS,
    TABLE2_WINDOW_TOPICS,
    TDT2_TOPIC_CATALOG,
)
from .experiment1 import ExperimentOneConfig, run_experiment1
from .experiment2 import (
    ExperimentTwoConfig,
    PAPER_TABLE4,
    run_experiment2,
)

PROBE_TOPICS = ("20074", "20077", "20078")


@dataclass
class ReportConfig:
    """Scope of the reproduction report."""

    seed: int = 1998
    quick: bool = False  # scaled-down corpus, two windows only

    def corpus_config(self) -> SyntheticCorpusConfig:
        if self.quick:
            return SyntheticCorpusConfig(
                seed=self.seed,
                total_documents=1500,
                n_topics=len(TDT2_TOPIC_CATALOG),
            )
        return SyntheticCorpusConfig(seed=self.seed)


def _markdown_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run everything and return the Markdown report."""
    if config is None:
        config = ReportConfig()
    started = time_module.perf_counter()
    sections: List[str] = [
        "# Reproduction report — novelty-based incremental clustering",
        "",
        f"`repro` {__version__}, corpus seed {config.seed}"
        + (", quick mode (scaled-down corpus)" if config.quick else ""),
    ]

    # -- Experiment 1: Table 1 -------------------------------------------
    exp1 = run_experiment1(ExperimentOneConfig(
        seed=config.seed,
        unlabeled_per_day=0.0 if config.quick else 215.0,
        days=8 if config.quick else 15,
        k=8 if config.quick else 32,
        corpus=config.corpus_config(),
    ))
    sections += [
        "",
        "## Table 1 — incremental vs non-incremental time",
        "",
        _markdown_table(
            ["approach", "statistics", "clustering"],
            [
                ["non-incremental",
                 f"{exp1.non_incremental['statistics']:.3f}s",
                 f"{exp1.non_incremental['clustering']:.3f}s"],
                ["incremental (last day)",
                 f"{exp1.incremental['statistics']:.3f}s",
                 f"{exp1.incremental['clustering']:.3f}s"],
                ["**speedup**",
                 f"×{exp1.speedup('statistics'):.1f}",
                 f"×{exp1.speedup('clustering'):.1f}"],
            ],
        ),
        "",
        "paper (Ruby, Pentium 4): ×14.5 statistics, ×3.8 clustering — "
        "the incremental path must win both phases, and does.",
    ]

    # -- Experiment 2: Tables 2 & 4, probes ---------------------------------
    windows = (0, 3) if config.quick else None
    exp2 = run_experiment2(
        ExperimentTwoConfig(
            seed=config.seed,
            k=8 if config.quick else 24,
            corpus=config.corpus_config(),
        ),
        windows=windows,
    )

    rows = []
    for window in exp2.windows:
        stats = window.statistics()
        rows.append([
            f"W{window.index + 1}",
            stats["documents"],
            TABLE2_WINDOW_DOCS[window.index],
            stats["topics"],
            TABLE2_WINDOW_TOPICS[window.index],
        ])
    sections += [
        "",
        "## Table 2 — window statistics (measured vs paper)",
        "",
        _markdown_table(
            ["window", "docs", "docs (paper)", "topics", "topics (paper)"],
            rows,
        ),
    ]

    rows = []
    for window in exp2.windows:
        run7 = exp2.runs.get((window.index, 7.0))
        run30 = exp2.runs.get((window.index, 30.0))
        if run7 is None or run30 is None:
            continue
        paper7 = PAPER_TABLE4.get((window.index, 7.0), ("--", "--"))
        paper30 = PAPER_TABLE4.get((window.index, 30.0), ("--", "--"))
        rows.append([
            f"W{window.index + 1}",
            f"{run7.evaluation.micro_f1:.2f} ({paper7[0]})",
            f"{run30.evaluation.micro_f1:.2f} ({paper30[0]})",
            f"{run7.evaluation.macro_f1:.2f} ({paper7[1]})",
            f"{run30.evaluation.macro_f1:.2f} ({paper30[1]})",
        ])
    sections += [
        "",
        "## Table 4 — F1 grid, measured (paper in parentheses)",
        "",
        _markdown_table(
            ["window", "micro β=7", "micro β=30",
             "macro β=7", "macro β=30"],
            rows,
        ),
        "",
        "expected shape: β=30 ≥ β=7 on the novelty-blind F1 measure.",
    ]

    # probe detection narrative on window 4 when available
    run7 = exp2.runs.get((3, 7.0))
    run30 = exp2.runs.get((3, 30.0))
    if run7 is not None and run30 is not None:
        rows = []
        for topic in PROBE_TOPICS:
            rows.append([
                topic,
                "detected" if run7.evaluation.detects_topic(topic)
                else "missed",
                "detected" if run30.evaluation.detects_topic(topic)
                else "missed",
            ])
        sections += [
            "",
            "## Probe topics in window 4 (paper §6.2.3)",
            "",
            "paper: β=7 detects all three recent topics; β=30 none.",
            "",
            _markdown_table(["topic", "β=7", "β=30"], rows),
        ]

    elapsed = time_module.perf_counter() - started
    sections += ["", f"_report generated in {elapsed:.1f}s_", ""]
    return "\n".join(sections)
