"""ASCII renderings of the paper's figures.

* Figures 1-4: per-cluster precision/recall bars for one window
  (:func:`precision_recall_chart`).
* Figures 5-9: per-topic document histograms over the stream
  (:func:`topic_histogram` + :func:`render_histogram`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from ..corpus.document import Document
from ..eval.metrics import WindowEvaluation


def topic_histogram(
    documents: Iterable[Document],
    topic_id: str,
    bin_days: float = 7.0,
    total_days: Optional[float] = None,
) -> List[int]:
    """Document counts of ``topic_id`` per ``bin_days``-wide bin.

    This regenerates the data behind the paper's Figures 5-9 (weekly
    histograms of topics 20074, 20077, 20078, 20001, 20002).
    """
    if bin_days <= 0:
        raise ValueError(f"bin_days must be > 0, got {bin_days}")
    docs = [doc for doc in documents if doc.topic_id == topic_id]
    horizon = total_days
    if horizon is None:
        horizon = max((doc.timestamp for doc in docs), default=0.0) + 1e-9
    n_bins = max(1, int(math.ceil(horizon / bin_days)))
    counts = [0] * n_bins
    for doc in docs:
        index = min(int(doc.timestamp / bin_days), n_bins - 1)
        counts[index] += 1
    return counts


def render_histogram(
    counts: Sequence[int],
    title: str = "",
    width: int = 50,
    bin_label: str = "week",
) -> str:
    """Horizontal ASCII bar chart of ``counts``.

    >>> print(render_histogram([2, 5], title="demo", width=5))
    demo
    week  1 | ##    2
    week  2 | ##### 5
    """
    peak = max(counts) if counts else 0
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        bar = "#" * (
            int(round(count / peak * width)) if peak else 0
        )
        lines.append(
            f"{bin_label} {index + 1:2d} | {bar.ljust(width)} {count}"
        )
    return "\n".join(lines)


def precision_recall_chart(
    evaluation: WindowEvaluation,
    width: int = 25,
    include_unmarked: bool = False,
) -> str:
    """Per-cluster precision/recall bars (the paper's Figures 1-4).

    Marked clusters show their topic id; unmarked ones (included only
    when ``include_unmarked``) show the best topic in brackets.
    """
    lines: List[str] = [
        "cluster  topic      size  precision" + " " * (width - 8)
        + "recall",
    ]
    for cluster in evaluation.clusters:
        if not cluster.is_marked and not include_unmarked:
            continue
        topic = (
            cluster.topic_id if cluster.is_marked
            else f"[{cluster.best_topic_id or '-'}]"
        )
        p_bar = "#" * int(round(cluster.precision * width))
        r_bar = "#" * int(round(cluster.recall * width))
        lines.append(
            f"{cluster.cluster_id:7d}  {str(topic):9s} {cluster.size:5d} "
            f"{p_bar.ljust(width)} {cluster.precision:.2f}  "
            f"{r_bar.ljust(width)} {cluster.recall:.2f}"
        )
    marked = evaluation.marked
    lines.append(
        f"marked clusters: {len(marked)}; "
        f"micro F1 {evaluation.micro_f1:.2f}, "
        f"macro F1 {evaluation.macro_f1:.2f}"
    )
    return "\n".join(lines)
