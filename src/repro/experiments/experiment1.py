"""Experiment 1 — incremental vs non-incremental computation time (Table 1).

Paper setup: TDT2 Jan 4 - Jan 18 (4,327 docs), K=32, β=7 days, γ=14 days
(λ≈0.9, ε≈0.25). The non-incremental run recomputes statistics and
clusters the whole 15-day span from scratch; the incremental run assumes
the Jan 4-17 state exists and processes only the final day (205 docs),
reusing statistics and the previous clustering.

Here the stream is the synthetic TDT2 analogue restricted to its first
``days`` days, optionally fattened with unlabeled background documents
(the paper's 64k-doc stream is ~9× denser than the labelled subset).
Absolute seconds differ from the paper's 1998-era Ruby/Pentium 4 numbers
by construction; the *ratios* (incremental ≪ non-incremental for both
phases) are the reproduction target.
"""

from __future__ import annotations

import time as time_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..corpus.synthetic import SyntheticCorpusConfig, TDT2Generator
from ..core.incremental import IncrementalClusterer, NonIncrementalClusterer
from ..forgetting.model import ForgettingModel
from .reporting import format_seconds, render_table

#: Paper Table 1 (for side-by-side reporting): seconds.
PAPER_TABLE1 = {
    ("non-incremental", "statistics"): 25 * 60 + 21,
    ("non-incremental", "clustering"): 58 * 60 + 17,
    ("incremental", "statistics"): 1 * 60 + 45,
    ("incremental", "clustering"): 15 * 60 + 25,
}


@dataclass
class ExperimentOneConfig:
    """Parameters of the timing experiment (paper defaults)."""

    seed: int = 1998
    days: int = 15
    k: int = 32
    half_life: float = 7.0
    life_span: float = 14.0
    delta: float = 0.01
    max_iterations: int = 30
    engine: str = "dense"
    unlabeled_per_day: float = 0.0
    corpus: Optional[SyntheticCorpusConfig] = None

    def corpus_config(self) -> SyntheticCorpusConfig:
        if self.corpus is not None:
            return self.corpus
        return SyntheticCorpusConfig(
            seed=self.seed, unlabeled_per_day=self.unlabeled_per_day
        )


@dataclass
class ExperimentOneResult:
    """Measured timings plus the run metadata behind them."""

    total_documents: int
    last_day_documents: int
    non_incremental: Dict[str, float]
    incremental: Dict[str, float]
    last_day: int = 0
    incremental_warmup: Dict[str, float] = field(default_factory=dict)

    def speedup(self, phase: str) -> float:
        """Non-incremental / incremental time for ``phase``."""
        denom = self.incremental[phase]
        if denom <= 0.0:
            return float("inf")
        return self.non_incremental[phase] / denom

    def rows(self) -> List[Tuple[str, str, str, str]]:
        """Table 1 rows: approach, dataset, stat time, clustering time."""
        return [
            (
                "Non-incremental",
                f"day0-day{self.last_day}",
                format_seconds(self.non_incremental["statistics"]),
                format_seconds(self.non_incremental["clustering"]),
            ),
            (
                "Incremental",
                f"day{self.last_day}",
                format_seconds(self.incremental["statistics"]),
                format_seconds(self.incremental["clustering"]),
            ),
        ]

    def render(self) -> str:
        lines = [
            render_table(
                ["Approach", "Dataset", "Statistics Updating", "Clustering"],
                self.rows(),
                title="Table 1 — computation times (measured)",
            ),
            "",
            f"documents: {self.total_documents} total, "
            f"{self.last_day_documents} on the last day",
            f"speedup: statistics ×{self.speedup('statistics'):.1f}, "
            f"clustering ×{self.speedup('clustering'):.1f}",
            (
                f"incremental warm-up (days 0-{self.last_day - 1} "
                f"combined): statistics "
                f"{self.incremental_warmup.get('statistics', 0.0):.3f}s, "
                f"clustering "
                f"{self.incremental_warmup.get('clustering', 0.0):.3f}s"
            ),
            "",
            "paper (Ruby, Pentium 4 3.2GHz, 4327 docs): "
            "non-incr 25min21s/58min17s, incr 1min45s/15min25s "
            "(×14.5 / ×3.8)",
        ]
        return "\n".join(lines)


def run_experiment1(
    config: Optional[ExperimentOneConfig] = None,
) -> ExperimentOneResult:
    """Run the full Table 1 comparison; see module docstring."""
    if config is None:
        config = ExperimentOneConfig()
    generator = TDT2Generator(config.corpus_config())
    repository = generator.generate()
    docs = [
        doc for doc in repository.documents()
        if doc.timestamp < config.days
    ]
    docs.sort(key=lambda d: d.timestamp)
    model = ForgettingModel(
        half_life=config.half_life, life_span=config.life_span
    )

    day_batches = [
        [d for d in docs if int(d.timestamp) == day]
        for day in range(config.days)
    ]
    last_day = config.days - 1

    # Non-incremental: statistics + clustering from scratch over all days.
    non_incremental = NonIncrementalClusterer(
        model,
        k=config.k,
        delta=config.delta,
        max_iterations=config.max_iterations,
        seed=config.seed,
        engine=config.engine,
    )
    non_incremental.process_batch(docs, at_time=float(config.days))
    non_result = non_incremental.last_result
    assert non_result is not None

    # Incremental: build state through day N-1, then time day N only.
    incremental = IncrementalClusterer(
        model,
        k=config.k,
        delta=config.delta,
        max_iterations=config.max_iterations,
        seed=config.seed,
        engine=config.engine,
    )
    warm_stats = warm_cluster = 0.0
    for day in range(last_day):
        if not day_batches[day]:
            incremental.statistics.advance_to(float(day + 1))
            continue
        warm = incremental.process_batch(
            day_batches[day], at_time=float(day + 1)
        )
        warm_stats += warm.timings["statistics"]
        warm_cluster += warm.timings["clustering"]
    final = incremental.process_batch(
        day_batches[last_day], at_time=float(config.days)
    )

    return ExperimentOneResult(
        total_documents=len(docs),
        last_day_documents=len(day_batches[last_day]),
        non_incremental={
            "statistics": non_result.timings["statistics"],
            "clustering": non_result.timings["clustering"],
        },
        incremental={
            "statistics": final.timings["statistics"],
            "clustering": final.timings["clustering"],
        },
        last_day=last_day,
        incremental_warmup={
            "statistics": warm_stats,
            "clustering": warm_cluster,
        },
    )


def statistics_update_timings(
    config: Optional[ExperimentOneConfig] = None,
) -> Tuple[float, float]:
    """Micro-version of Experiment 1 timing only the statistics phase.

    Returns ``(non_incremental_seconds, incremental_seconds)``; used by
    the pytest-benchmark harness where clustering would dominate.
    """
    if config is None:
        config = ExperimentOneConfig()
    generator = TDT2Generator(config.corpus_config())
    repository = generator.generate()
    docs = [
        doc for doc in repository.documents()
        if doc.timestamp < config.days
    ]
    model = ForgettingModel(
        half_life=config.half_life, life_span=config.life_span
    )
    last_day = config.days - 1

    from ..forgetting.statistics import CorpusStatistics

    begin = time_module.perf_counter()
    CorpusStatistics.from_scratch(model, docs, at_time=float(config.days))
    non_incremental_seconds = time_module.perf_counter() - begin

    stats = CorpusStatistics(model)
    old_docs = [d for d in docs if d.timestamp < last_day]
    new_docs = [d for d in docs if d.timestamp >= last_day]
    stats.observe(old_docs, at_time=float(last_day))
    begin = time_module.perf_counter()
    stats.observe(new_docs, at_time=float(config.days))
    stats.expire()
    incremental_seconds = time_module.perf_counter() - begin
    return non_incremental_seconds, incremental_seconds
