"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """``95.0 -> '1min35sec'`` — the paper's Table 1 time format.

    Sub-minute durations keep decimals (modern hardware runs the
    paper-scale workload in well under a minute).
    """
    if seconds < 60.0:
        return f"{seconds:.3f}sec" if seconds < 10.0 else f"{seconds:.1f}sec"
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes}min{secs:02d}sec"
