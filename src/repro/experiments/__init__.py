"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.experiments.experiment1` — Table 1 (incremental vs
  non-incremental computation time).
* :mod:`repro.experiments.experiment2` — Tables 2 & 4 and the data
  behind Figures 1-4 (per-window clustering quality at β = 7 vs 30).
* :mod:`repro.experiments.figures` — ASCII rendering of the paper's
  figures (per-cluster precision/recall charts; topic histograms).
* :mod:`repro.experiments.reporting` — plain-text table rendering.
"""

from .reporting import render_table
from .experiment1 import ExperimentOneConfig, ExperimentOneResult, run_experiment1
from .experiment2 import (
    ExperimentTwoConfig,
    ExperimentTwoResult,
    WindowRun,
    run_experiment2,
    run_window,
)
from .figures import (
    precision_recall_chart,
    render_histogram,
    topic_histogram,
)

__all__ = [
    "render_table",
    "ExperimentOneConfig",
    "ExperimentOneResult",
    "run_experiment1",
    "ExperimentTwoConfig",
    "ExperimentTwoResult",
    "WindowRun",
    "run_experiment2",
    "run_window",
    "topic_histogram",
    "render_histogram",
    "precision_recall_chart",
]
