"""Type-level protocol-conformance checks.

The registries already make every ``register_engine``/``register_backend``
call a conformance check (their factory aliases return the protocol
types), but those calls live in package ``__init__`` side effects. This
module restates the contract explicitly, in one greppable place: each
assignment below fails ``mypy --strict`` the moment a concrete class's
signature drifts from its protocol — a 3 a.m. parity-job failure turned
into a type-check failure.

Nothing here executes at runtime (the module body is guarded by
``TYPE_CHECKING``), so importing it is free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from typing import Callable, Mapping, Tuple

    from .core.engines import Engine
    from .core.engines.dense import DenseEngine
    from .core.engines.matrix import MatrixEngine
    from .core.engines.sparse import SparseEngine
    from .forgetting.backends import StatisticsBackend
    from .forgetting.backends.columnar import ColumnarStatisticsBackend
    from .forgetting.backends.dict_backend import DictStatisticsBackend
    from .vectors.sparse import SparseVector

    # factory(k, vectors, criterion) -> Engine: the registration-time
    # signature every engine class must satisfy
    _EngineCtor = Callable[[int, Mapping[str, SparseVector], str], Engine]

    _ENGINE_CONFORMANCE: Tuple[_EngineCtor, ...] = (
        SparseEngine,
        DenseEngine,
        MatrixEngine,
    )

    _BackendCtor = Callable[[], StatisticsBackend]

    _BACKEND_CONFORMANCE: Tuple[_BackendCtor, ...] = (
        DictStatisticsBackend,
        ColumnarStatisticsBackend,
    )
