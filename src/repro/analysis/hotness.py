"""Hot-topic ranking: which clusters are *currently* hot?

The paper's stated goal is that "clustering results reflect current
trends of hot topics", but it leaves "hot" implicit in the similarity
weighting. This module makes it explicit: a cluster's **novelty** is
the mean forgetting weight of its members (1.0 = all brand new,
→0 = all stale), its **momentum** is the share of members acquired in
the most recent fraction of the active period, and the hot ranking
orders clusters by size-discounted novelty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.result import ClusteringResult
from ..forgetting.statistics import CorpusStatistics


@dataclass(frozen=True)
class ClusterTrend:
    """Trend summary of one cluster at one instant."""

    cluster_id: int
    size: int
    novelty: float        # mean dw of members, in (0, 1]
    momentum: float       # fraction of members from the recent window
    weight_mass: float    # Σ dw of members (the cluster's share of tdw·Pr)
    mean_age_days: float  # weight-implied mean age

    @property
    def hotness(self) -> float:
        """Ranking score: novelty scaled by log-size.

        A two-document brand-new cluster should beat a stale giant, but
        among similar novelty the bigger story ranks first; ``log1p``
        keeps size from dominating.
        """
        return self.novelty * math.log1p(self.size)


def cluster_novelty(
    member_ids: Sequence[str],
    statistics: CorpusStatistics,
) -> float:
    """Mean forgetting weight ``dw`` over ``member_ids`` (0 if empty).

    Members unknown to the statistics (already expired) count as 0,
    which is exactly what their weight has rounded to.
    """
    if not member_ids:
        return 0.0
    total = 0.0
    for doc_id in member_ids:
        if doc_id in statistics:
            total += statistics.dw(doc_id)
    return total / len(member_ids)


def cluster_trend(
    cluster_id: int,
    member_ids: Sequence[str],
    statistics: CorpusStatistics,
    recent_days: float = 7.0,
) -> ClusterTrend:
    """Full :class:`ClusterTrend` for one cluster.

    ``recent_days`` defines the momentum window: the share of members
    acquired within the last ``recent_days`` before the statistics
    clock.
    """
    now = statistics.now if statistics.now is not None else 0.0
    total_weight = 0.0
    recent = 0
    known = 0
    age_sum = 0.0
    for doc_id in member_ids:
        if doc_id not in statistics:
            continue
        known += 1
        weight = statistics.dw(doc_id)
        total_weight += weight
        doc = statistics.document(doc_id)
        age = now - doc.timestamp
        age_sum += age
        if age <= recent_days:
            recent += 1
    size = len(member_ids)
    return ClusterTrend(
        cluster_id=cluster_id,
        size=size,
        novelty=total_weight / size if size else 0.0,
        momentum=recent / size if size else 0.0,
        weight_mass=total_weight,
        mean_age_days=age_sum / known if known else math.inf,
    )


def rank_hot_clusters(
    result: ClusteringResult,
    statistics: CorpusStatistics,
    recent_days: float = 7.0,
    min_size: int = 2,
) -> List[ClusterTrend]:
    """Clusters of ``result`` ranked by :attr:`ClusterTrend.hotness`.

    Clusters smaller than ``min_size`` are omitted (singletons are
    outlier-ish, not stories).
    """
    trends = [
        cluster_trend(cluster_id, members, statistics, recent_days)
        for cluster_id, members in result.non_empty_clusters()
        if len(members) >= min_size
    ]
    trends.sort(key=lambda t: t.hotness, reverse=True)
    return trends
