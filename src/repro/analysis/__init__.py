"""Trend analysis over clustering results: novelty scores, hot-topic
ranking, and burst detection."""

from .hotness import (
    ClusterTrend,
    cluster_novelty,
    cluster_trend,
    rank_hot_clusters,
)
from .bursts import BurstInterval, detect_bursts

__all__ = [
    "ClusterTrend",
    "cluster_novelty",
    "cluster_trend",
    "rank_hot_clusters",
    "BurstInterval",
    "detect_bursts",
]
