"""Burst detection on per-topic arrival series.

The paper reads its Figures 5-9 by eye ("the topic occurred quite
recently in the period", "appeared quite early"); this module automates
that reading with a simple two-state burst detector: bin the arrivals,
estimate a baseline rate, and mark maximal runs of bins whose rate
exceeds ``threshold ×`` the baseline (a lightweight stand-in for
Kleinberg's two-state automaton, adequate for window-level narratives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .._validation import require_positive
from ..corpus.document import Document


@dataclass(frozen=True)
class BurstInterval:
    """A maximal run of elevated activity."""

    start_day: float
    end_day: float          # exclusive
    documents: int
    intensity: float        # mean rate in the burst / baseline rate

    @property
    def span_days(self) -> float:
        return self.end_day - self.start_day


def detect_bursts(
    documents: Iterable[Document],
    topic_id: Optional[str] = None,
    bin_days: float = 7.0,
    threshold: float = 2.0,
    total_days: Optional[float] = None,
) -> List[BurstInterval]:
    """Find burst intervals in a topic's (or the whole stream's) arrivals.

    Parameters
    ----------
    topic_id:
        Restrict to one topic; ``None`` analyses all documents.
    bin_days:
        Histogram bin width.
    threshold:
        A bin is bursting when its count exceeds ``threshold`` times the
        mean non-zero bin rate (the baseline).

    Returns maximal bursting runs in chronological order; empty when
    the stream has no activity above baseline.
    """
    require_positive("bin_days", bin_days)
    require_positive("threshold", threshold)
    selected = [
        doc for doc in documents
        if topic_id is None or doc.topic_id == topic_id
    ]
    if not selected:
        return []
    horizon = total_days
    if horizon is None:
        horizon = max(doc.timestamp for doc in selected) + 1e-9
    n_bins = max(1, int(-(-horizon // bin_days)))
    counts = [0] * n_bins
    for doc in selected:
        # clamp both ends: pre-origin timestamps must not wrap to the
        # final bin through Python's negative indexing
        index = min(max(int(doc.timestamp / bin_days), 0), n_bins - 1)
        counts[index] += 1

    active = [count for count in counts if count > 0]
    baseline = sum(active) / len(active) if active else 0.0
    if baseline <= 0.0:
        return []
    cutoff = threshold * baseline

    bursts: List[BurstInterval] = []
    run_start: Optional[int] = None
    for index in range(n_bins + 1):
        bursting = index < n_bins and counts[index] > cutoff
        if bursting and run_start is None:
            run_start = index
        elif not bursting and run_start is not None:
            run_counts = counts[run_start:index]
            bursts.append(BurstInterval(
                start_day=run_start * bin_days,
                end_day=index * bin_days,
                documents=sum(run_counts),
                intensity=(sum(run_counts) / len(run_counts)) / baseline,
            ))
            run_start = None
    return bursts
