"""Shared argument-validation helpers.

These helpers raise :class:`repro.exceptions.ConfigurationError` with a
uniform message format so that every public entry point reports bad
parameters the same way.
"""

from __future__ import annotations

import math
from typing import Any

from .exceptions import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number > 0, else raise."""
    require_finite_number(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number >= 0, else raise."""
    require_finite_number(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def require_in_open_interval(
    name: str, value: float, low: float, high: float
) -> float:
    """Return ``value`` if ``low < value < high``, else raise."""
    require_finite_number(name, value)
    if not low < value < high:
        raise ConfigurationError(
            f"{name} must be in the open interval ({low}, {high}), got {value!r}"
        )
    return float(value)


def require_positive_int(name: str, value: Any) -> int:
    """Return ``value`` if it is an integer >= 1, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value!r}")
    return value


def require_non_negative_int(name: str, value: Any) -> int:
    """Return ``value`` if it is an integer >= 0, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_finite_number(name: str, value: Any) -> float:
    """Return ``value`` as float if it is a finite real number, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return float(value)


def require_probability(name: str, value: float) -> float:
    """Return ``value`` if ``0 <= value <= 1``, else raise."""
    require_finite_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)
