"""Command-line interface.

::

    repro generate --output stream.jsonl [--seed N] [--total-docs N]
    repro cluster  --input stream.jsonl [--k N] [--half-life D]
                   [--life-span D] [--batch-days D]
                   [--engine NAME] [--stats-backend NAME] [--jobs N]
                   [--checkpoint state.json] [--checkpoint-every N]
                   [--resume state.json] [--trace trace.jsonl]
    repro serve    --input stream.jsonl [--k N] [--batch-days D]
                   [--checkpoint state.json] [--resume state.json]
                   [--follow [--poll-interval S]] [--http PORT]
    repro experiment1 [--unlabeled-per-day N]
    repro experiment2 [--windows 1,4] [--betas 7,30]

``generate`` writes the synthetic TDT2-like stream as JSON Lines;
``cluster`` replays any JSONL stream through the incremental clusterer,
printing a report per batch (and an evaluation when ground-truth topic
labels are present); ``serve`` runs the streaming service
(:func:`repro.api.open_stream`) over a stream — optionally tailing the
file for appended records and exposing the snapshot query API over
HTTP; the experiment commands regenerate the paper's Table 1 and
Tables 2/4 from the command line.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional, Sequence

from . import __version__
from .api import build_clusterer, open_stream
from .corpus.loaders import load_jsonl, save_jsonl
from .corpus.streams import replay
from .corpus.synthetic import SyntheticCorpusConfig, TDT2Generator
from .core.engines import available_engines
from .core.labeling import label_clustering
from .eval.metrics import evaluate_clustering
from .forgetting.backends import available_backends
from .durability import Checkpointer, recover
from .durability.atomic import prepare_checkpoint_path
from .text.vocabulary import Vocabulary

if TYPE_CHECKING:
    from .core.result import ClusteringResult
    from .corpus.document import Document
    from .obs import Recorder


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Novelty-based incremental document clustering "
                    "(ICDE 2006 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write the synthetic TDT2-like stream as JSONL"
    )
    generate.add_argument("--output", required=True,
                          help="destination .jsonl path")
    generate.add_argument("--seed", type=int, default=1998)
    generate.add_argument("--total-docs", type=int, default=None,
                          help="scale the corpus (default: paper's 7578)")
    generate.add_argument("--unlabeled-per-day", type=float, default=0.0)

    cluster = commands.add_parser(
        "cluster", help="replay a JSONL stream through the clusterer"
    )
    cluster.add_argument("--input", required=True, help="stream .jsonl")
    cluster.add_argument("--k", type=int, default=16)
    cluster.add_argument("--half-life", type=float, default=7.0)
    cluster.add_argument("--life-span", type=float, default=14.0)
    cluster.add_argument("--batch-days", type=float, default=7.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--engine", choices=sorted(available_engines()),
                         default=None,
                         help="numerical engine for the extended K-means "
                              "(default: dense; 'pruned' is fastest at "
                              "large K and vocabulary, 'matrix' on "
                              "mid-size streams; on --resume the "
                              "checkpointed engine unless overridden)")
    cluster.add_argument("--stats-backend",
                         choices=sorted(available_backends()),
                         default=None,
                         help="corpus-statistics storage backend "
                              "(default: dict; on --resume the "
                              "checkpointed backend unless overridden)")
    cluster.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the text front-end "
                              "when the input carries raw text bodies "
                              "(default: serial)")
    cluster.add_argument("--top-terms", type=int, default=4)
    cluster.add_argument("--checkpoint", default=None,
                         help="maintain a crash-safe checkpoint (plus a "
                              "batch journal alongside) at this path; "
                              "written atomically after every window "
                              "and at the end of the run")
    cluster.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="with --checkpoint: rewrite the checkpoint "
                              "every N windows instead of after every "
                              "window (the journal still makes recovery "
                              "exact; N only bounds checkpoint I/O)")
    cluster.add_argument("--resume", default=None,
                         help="resume from a checkpoint written earlier; "
                              "falls back to its .bak generation and "
                              "replays the batch journal when the run "
                              "was interrupted")
    cluster.add_argument("--quiet", action="store_true",
                         help="only print the final report")
    cluster.add_argument("--trace", default=None, metavar="PATH",
                         help="write pipeline observability events "
                              "(phase spans, counters, gauges) to this "
                              "path as JSON Lines")

    serve = commands.add_parser(
        "serve", help="run the streaming service over a JSONL stream"
    )
    serve.add_argument("--input", default=None,
                       help="JSONL stream to ingest (with --follow, the "
                            "file is tailed for appended records and may "
                            "not exist yet)")
    serve.add_argument("--k", type=int, default=16)
    serve.add_argument("--half-life", type=float, default=7.0)
    serve.add_argument("--life-span", type=float, default=14.0)
    serve.add_argument("--batch-days", type=float, default=7.0,
                       help="width of the ingestion windows documents "
                            "are batched into")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--engine", choices=sorted(available_engines()),
                       default=None)
    serve.add_argument("--stats-backend",
                       choices=sorted(available_backends()),
                       default=None)
    serve.add_argument("--checkpoint", default=None,
                       help="journal every committed batch and keep a "
                            "crash-safe checkpoint at this path; "
                            "snapshot versions equal journal sequences")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="with --checkpoint: rewrite the checkpoint "
                            "every N batches instead of every batch")
    serve.add_argument("--resume", default=None,
                       help="recover from this checkpoint and continue "
                            "serving at the recovered snapshot version")
    serve.add_argument("--follow", action="store_true",
                       help="keep tailing --input for appended records "
                            "instead of ingesting it once")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       help="with --follow: seconds between file polls")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="expose the snapshot query API over HTTP on "
                            "this port (0 picks a free one)")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="with --follow/--http: serve for this long "
                            "and exit cleanly (default: until Ctrl-C)")
    serve.add_argument("--quiet", action="store_true",
                       help="only print errors")

    experiment1 = commands.add_parser(
        "experiment1", help="regenerate Table 1 (timing comparison)"
    )
    experiment1.add_argument("--seed", type=int, default=1998)
    experiment1.add_argument("--unlabeled-per-day", type=float,
                             default=215.0)

    experiment2 = commands.add_parser(
        "experiment2", help="regenerate Tables 2 and 4 (quality grid)"
    )
    experiment2.add_argument("--seed", type=int, default=1998)
    experiment2.add_argument("--windows", default=None,
                             help="comma-separated window numbers (1-6)")
    experiment2.add_argument("--betas", default="7,30",
                             help="comma-separated half-life values")

    report = commands.add_parser(
        "report", help="run all experiments, emit a Markdown report"
    )
    report.add_argument("--seed", type=int, default=1998)
    report.add_argument("--output", default=None,
                        help="write the report here (default: stdout)")
    report.add_argument("--quick", action="store_true",
                        help="scaled-down corpus, two windows (~15s)")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed,
              "unlabeled_per_day": args.unlabeled_per_day}
    if args.total_docs is not None:
        kwargs["total_documents"] = args.total_docs
    config = SyntheticCorpusConfig(**kwargs)
    repository = TDT2Generator(config).generate()
    written = save_jsonl(
        repository.documents(), repository.vocabulary, args.output
    )
    print(f"wrote {written} documents to {args.output}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.trace:
        from .obs import JsonlRecorder

        with JsonlRecorder(args.trace) as recorder:
            status = _run_cluster(args, recorder)
        print(f"trace written to {args.trace} "
              f"({recorder.events_written} events)")
        return status
    return _run_cluster(args, None)


def _run_cluster(
    args: argparse.Namespace, recorder: Optional["Recorder"]
) -> int:
    if args.checkpoint_every is not None:
        if not args.checkpoint:
            raise ValueError("--checkpoint-every requires --checkpoint")
        if args.checkpoint_every < 1:
            raise ValueError(
                f"--checkpoint-every must be >= 1, "
                f"got {args.checkpoint_every}"
            )
    if args.checkpoint:
        # fail before the first batch, not after hours of clustering:
        # creates missing parent directories, rejects unwritable paths
        prepare_checkpoint_path(args.checkpoint)

    vocabulary = Vocabulary()
    sequence = 0
    if args.resume:
        # like --engine, the statistics backend only changes *how* the
        # numbers are stored, so it is safe to swap when resuming
        recovery = recover(
            args.resume, vocabulary,
            statistics_backend=args.stats_backend,
            recorder=recorder,
        )
        clusterer = recovery.clusterer
        sequence = recovery.sequence
        if args.engine is not None:
            # the engine only changes *how* the numbers are computed,
            # never the clustering state, so unlike k/seed it is safe
            # to swap when resuming
            clusterer.kmeans.engine = args.engine
        recovered = ""
        if recovery.used_backup:
            recovered += (f" (primary checkpoint unreadable; recovered "
                          f"from {recovery.checkpoint_path})")
        if recovery.replayed_batches:
            recovered += (f" (replayed {recovery.replayed_batches} "
                          f"journaled batches)")
        print(f"resumed from {args.resume}: "
              f"{clusterer.statistics.size} active documents at "
              f"t={clusterer.statistics.now} "
              f"using engine '{clusterer.kmeans.engine}'"
              f"{recovered} "
              f"(checkpoint parameters take precedence over "
              f"--k/--half-life/--life-span/--seed; documents older "
              f"than the checkpoint clock are treated as already "
              f"processed)")
    else:
        clusterer = build_clusterer(
            k=args.k, seed=args.seed,
            half_life=args.half_life, life_span=args.life_span,
            engine=args.engine or "dense",
            statistics_backend=args.stats_backend or "dict",
            recorder=recorder,
        )

    if recorder is not None:
        # make the recorder ambient during loading so the text
        # front-end's span and stemmer-cache gauges land in --trace
        from .obs import use_recorder

        with use_recorder(recorder):
            documents = load_jsonl(args.input, vocabulary, jobs=args.jobs)
    else:
        documents = load_jsonl(args.input, vocabulary, jobs=args.jobs)
    documents.sort(key=lambda d: d.timestamp)
    if not documents:
        print("no documents in input", file=sys.stderr)
        return 1
    already = (
        clusterer.statistics.now
        if clusterer.statistics.now is not None else float("-inf")
    )
    documents = [d for d in documents if d.timestamp >= already]

    checkpointer: Optional[Checkpointer] = None
    if args.checkpoint:
        checkpointer = Checkpointer(
            clusterer, vocabulary, args.checkpoint,
            every=args.checkpoint_every or 1,
            sequence=sequence,
            recorder=recorder,
        )
        clusterer.add_commit_hook(checkpointer.record_batch)
    try:
        if documents:
            def report(
                at_time: float,
                batch: List["Document"],
                batch_result: "ClusteringResult",
            ) -> None:
                if not args.quiet:
                    print(f"t={at_time:8.1f}  +{len(batch):5d} docs  "
                          f"{batch_result.summary()}")

            # resume continues the original batch grid from the
            # checkpoint clock; a fresh run anchors at the first document
            origin = clusterer.statistics.now if args.resume else None
            results = replay(
                clusterer, documents, args.batch_days,
                origin=origin, on_batch=report,
            )
            result = results[-1] if results else None
        else:
            # resumed past the whole stream: re-cluster the carried state
            print("no new documents beyond the checkpoint; re-clustering "
                  "the carried state")
            at_time = clusterer.statistics.now
            if at_time is None:
                # a fresh (never-fed) clusterer has no clock to
                # re-cluster at; previously this leaked ``None`` into
                # process_batch
                print("no batches processed", file=sys.stderr)
                return 1
            result = clusterer.process_batch([], at_time=at_time)
    finally:
        # flushes a final checkpoint when batches are pending and closes
        # the journal handle, even when replay dies mid-stream — the
        # whole point of this PR
        if checkpointer is not None:
            checkpointer.close()

    if result is None:
        print("no batches processed", file=sys.stderr)
        return 1

    print("\nfinal clusters:")
    active = clusterer.statistics.documents()
    labels = label_clustering(
        result, active, vocabulary, statistics=clusterer.statistics,
        limit=args.top_terms,
    )
    for label in sorted(labels, key=lambda l: -l.size):
        print(f"  [{label.size:5d} docs] {label}")
    if result.outliers:
        print(f"  ({len(result.outliers)} outliers)")

    truth = {d.doc_id: d.topic_id for d in active}
    if any(topic is not None for topic in truth.values()):
        evaluation = evaluate_clustering(result.clusters, truth)
        print(f"\nevaluation vs ground-truth labels: "
              f"micro F1 {evaluation.micro_f1:.2f}, "
              f"macro F1 {evaluation.macro_f1:.2f}, "
              f"{evaluation.n_marked} marked clusters")

    if args.checkpoint:
        print(f"\ncheckpoint written to {args.checkpoint}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import time

    if args.checkpoint_every is not None and not (
        args.checkpoint or args.resume
    ):
        raise ValueError("--checkpoint-every requires --checkpoint")
    if not args.input and args.http is None:
        raise ValueError("serve needs --input and/or --http")
    if args.follow and not args.input:
        raise ValueError("--follow requires --input")

    if args.resume:
        session = open_stream(
            resume=args.resume,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every or 1,
            window_days=args.batch_days,
        )
        if not args.quiet:
            print(f"resumed from {args.resume} at snapshot "
                  f"version {session.version}")
    else:
        session = open_stream(
            k=args.k, seed=args.seed,
            half_life=args.half_life, life_span=args.life_span,
            engine=args.engine or "dense",
            statistics_backend=args.stats_backend or "dict",
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every or 1,
            window_days=args.batch_days,
        )
    with session:
        server = None
        if args.http is not None:
            server = session.serve_http(port=args.http)
            if not args.quiet:
                print(f"query API listening on {server.url}")
        if args.input and args.follow:
            session.tail_jsonl(args.input, poll_interval=args.poll_interval)
            if not args.quiet:
                print(f"tailing {args.input} "
                      f"(windows of {args.batch_days} days)")
        elif args.input:
            documents = load_jsonl(args.input, session.vocabulary)
            documents.sort(key=lambda d: d.timestamp)
            if not documents:
                print("no documents in input", file=sys.stderr)
                return 1
            for document in documents:
                session.feed(document)
            snapshot = session.flush()
            if not args.quiet:
                stats = snapshot.stats()
                print(f"ingested {len(documents)} documents; snapshot "
                      f"v{stats.version}: {stats.active_documents} active "
                      f"docs in {stats.non_empty_clusters} clusters, "
                      f"G={stats.clustering_index:.4f}")
                for info in snapshot.top_clusters(5):
                    print(f"  cluster {info.cluster_id:3d}: "
                          f"{info.size:5d} docs")
        if args.follow or server is not None:
            try:
                if args.duration is not None:
                    time.sleep(args.duration)
                else:  # pragma: no cover - interactive path
                    threading.Event().wait()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                if not args.quiet:
                    print("shutting down")
            if args.follow and not args.quiet:
                final = session.flush().stats()
                print(f"final snapshot v{final.version}: "
                      f"{final.active_documents} active docs in "
                      f"{final.non_empty_clusters} clusters")
        if session.errors:
            print(f"{len(session.errors)} batches rejected "
                  f"(first: {session.errors[0]})", file=sys.stderr)
    if args.checkpoint or args.resume:
        target = args.checkpoint or args.resume
        if not args.quiet:
            print(f"checkpoint written to {target}")
    return 0


def _cmd_experiment1(args: argparse.Namespace) -> int:
    from .experiments.experiment1 import (
        ExperimentOneConfig,
        run_experiment1,
    )

    config = ExperimentOneConfig(
        seed=args.seed, unlabeled_per_day=args.unlabeled_per_day
    )
    print("running Experiment 1 (this generates the corpus and runs "
          "both pipelines) ...\n")
    print(run_experiment1(config).render())
    return 0


def _cmd_experiment2(args: argparse.Namespace) -> int:
    from .experiments.experiment2 import (
        ExperimentTwoConfig,
        run_experiment2,
    )

    betas = tuple(float(b) for b in args.betas.split(","))
    windows: Optional[List[int]] = None
    if args.windows:
        windows = []
        for token in args.windows.split(","):
            number = int(token)
            if not 1 <= number <= 6:
                raise ValueError(
                    f"--windows values must be 1-6, got {number}"
                )
            windows.append(number - 1)
    config = ExperimentTwoConfig(seed=args.seed, betas=betas)
    print("running Experiment 2 (full grid takes ~2 minutes) ...\n")
    result = run_experiment2(config, windows=windows)
    print(result.render_table2())
    print()
    print(result.render_table4(betas))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import ReportConfig, generate_report

    print("running the reproduction report "
          f"({'quick' if args.quick else 'full'} mode) ...",
          file=sys.stderr)
    text = generate_report(ReportConfig(seed=args.seed, quick=args.quick))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "cluster": _cmd_cluster,
    "serve": _cmd_serve,
    "experiment1": _cmd_experiment1,
    "experiment2": _cmd_experiment2,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    User-input failures (missing files, bad parameter values, corrupt
    checkpoints) print one-line errors and exit 2; genuine bugs still
    traceback.
    """
    from .exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: file not found: {exc.filename or exc}",
              file=sys.stderr)
        return 2
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # disk full, permissions, torn writes — environment, not a bug;
        # any checkpoint/journal on disk is still intact for --resume
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
