"""Atomic durable file writes and payload checksums.

The primitives every durable artifact in this package is built on:

* :func:`atomic_write_text` / :func:`atomic_write_json` — stream the
  content into a sibling temp file, flush + ``fsync``, then
  ``os.replace`` over the target (atomic on POSIX and Windows), with an
  optional rotation of the previous file to ``<path>.bak`` and a
  directory fsync so the rename itself is durable. A crash, a full
  disk, or a serialization error at any point leaves the previous file
  byte-identical.
* :func:`payload_checksum` / :func:`checksum_matches` — sha256 over the
  *canonical* JSON (sorted keys, compact separators) of a payload minus
  its ``checksum`` field. Because JSON floats round-trip exactly
  through Python's shortest-repr serialization, the checksum recomputed
  from a parsed file equals the one computed before writing, so any
  torn or bit-flipped state is detected on load.

``repro.persistence`` routes checkpoint writes through this module;
reprolint's REP006 rule forbids checkpoint/journal writes that bypass
it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from ..exceptions import CheckpointError

PathLike = Union[str, Path]

#: Field carrying the payload checksum in checkpoints/journal lines.
CHECKSUM_FIELD = "checksum"

#: Suffix of the rotated previous checkpoint.
BACKUP_SUFFIX = ".bak"


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The deterministic JSON serialization checksums are taken over."""
    return json.dumps(
        payload, sort_keys=True, ensure_ascii=False,
        separators=(",", ":"),
    )


def payload_checksum(payload: Mapping[str, Any]) -> str:
    """``"sha256:<hex>"`` over the payload minus its checksum field."""
    body = {
        key: value for key, value in payload.items()
        if key != CHECKSUM_FIELD
    }
    digest = hashlib.sha256(
        canonical_json(body).encode("utf-8")
    ).hexdigest()
    return f"sha256:{digest}"


def checksum_matches(payload: Mapping[str, Any]) -> Optional[bool]:
    """Verify a payload's recorded checksum.

    Returns ``True``/``False`` when a checksum field is present, and
    ``None`` when the payload carries none (legacy files written before
    checksums existed are accepted by callers).
    """
    recorded = payload.get(CHECKSUM_FIELD)
    if recorded is None:
        return None
    return bool(recorded == payload_checksum(payload))


def backup_path(path: PathLike) -> Path:
    """Where the previous generation of ``path`` is rotated to."""
    target = Path(path)
    return target.with_name(target.name + BACKUP_SUFFIX)


def fsync_directory(directory: PathLike) -> None:
    """fsync a directory so a completed rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    text: str,
    path: PathLike,
    durable: bool = True,
    backup: bool = False,
) -> int:
    """Write ``text`` to ``path`` atomically; returns bytes written.

    The content goes into a temp file in the *same directory* (so the
    final ``os.replace`` never crosses a filesystem), is flushed and —
    with ``durable`` — fsynced before the rename. With ``backup`` the
    previous target survives one rotation as ``<path>.bak``; the
    rotation is itself an atomic rename, so at every instant at least
    one intact generation exists on disk.
    """
    target = Path(path)
    payload = text.encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        if backup and target.exists():
            os.replace(target, backup_path(target))
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(target.parent)
    return len(payload)


def atomic_write_json(
    payload: Mapping[str, Any],
    path: PathLike,
    durable: bool = True,
    backup: bool = False,
    add_checksum: bool = False,
) -> int:
    """Atomically write ``payload`` as JSON; returns bytes written.

    With ``add_checksum`` a ``checksum`` field (sha256 over the
    canonical form of the rest) is stamped into the object so loaders
    can detect torn or corrupted files.
    """
    body: Mapping[str, Any] = payload
    if add_checksum:
        stamped = dict(payload)
        stamped[CHECKSUM_FIELD] = payload_checksum(payload)
        body = stamped
    return atomic_write_text(
        json.dumps(body, ensure_ascii=False), path,
        durable=durable, backup=backup,
    )


def prepare_checkpoint_path(path: PathLike) -> Path:
    """Validate (and create) a checkpoint destination *before* a run.

    Creates missing parent directories and rejects a path that is an
    existing directory, so ``repro cluster --checkpoint`` fails before
    the first batch is processed instead of after the entire run.
    """
    target = Path(path)
    if target.is_dir():
        raise CheckpointError(
            f"{target}: checkpoint path is a directory"
        )
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        # e.g. a parent component is a regular file, or no permission
        raise CheckpointError(
            f"{target}: cannot create checkpoint directory "
            f"{target.parent}: {exc}"
        ) from exc
    return target
