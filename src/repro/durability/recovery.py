"""Crash recovery: newest valid checkpoint + journal replay.

:func:`recover` is the single entry point a restarted deployment calls.
It (1) picks the newest *valid* checkpoint — the primary file if its
checksum verifies, else the ``.bak`` generation the atomic writer
rotated out (covers a crash between the two renames of a checkpoint
write), (2) restores the clusterer from it, and (3) replays every
journaled batch beyond the checkpoint's sequence through
``process_batch``.

The replay is **exact**: a journal entry stores the batch's documents
and its update time ``at_time``, and by Eq. 27-29 the statistics after
``advance_to(at_time)`` + insertion depend only on (state at the
checkpoint clock, batch, at_time) — decay composes multiplicatively
(λ^Δ₁·λ^Δ₂ = λ^(Δ₁+Δ₂)), so skipping the intermediate empty windows of
the original run changes nothing. Recovery therefore lands on a state
bit-equal to some batch-prefix of the uninterrupted run — the property
the fault-injection suite (``tests/durability/``) asserts for every
crash point it can inject.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from ..core.incremental import IncrementalClusterer
from ..exceptions import CheckpointError, JournalError
from ..obs import Recorder, Span, resolve
from ..persistence import (
    load_checkpoint,
    read_checkpoint_state,
    record_to_document,
)
from ..text.vocabulary import Vocabulary
from .atomic import PathLike, backup_path
from .follow import FollowedBatch, follow
from .journal import default_journal_path, read_journal


@dataclass
class RecoveryResult:
    """What :func:`recover` restored and how it got there.

    The result is a *resumable handle*, not just a report: a recovered
    process can keep absorbing batches another writer commits by
    iterating :meth:`follow` and feeding each batch to :meth:`apply` —
    the warm-standby replica loop::

        replica = recover("state.json")
        for batch in replica.follow(stop=lambda: shutting_down):
            replica.apply(batch)   # replica.sequence tracks the writer
    """

    clusterer: IncrementalClusterer
    vocabulary: Vocabulary
    #: Batches the restored state reflects (checkpoint + replays).
    sequence: int
    #: The checkpoint file actually loaded (primary or its ``.bak``).
    checkpoint_path: Path
    #: The journal the replay read (and :meth:`follow` continues from).
    journal_path: Path
    #: Journal entries replayed through ``process_batch``.
    replayed_batches: int
    #: True when the primary checkpoint was unusable and ``.bak`` served.
    used_backup: bool
    #: True when a torn journal tail was discarded during replay.
    journal_truncated: bool

    def follow(
        self,
        poll_interval: float = 0.5,
        stop: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[FollowedBatch]:
        """Tail the journal for batches *beyond* the recovered state.

        Starts exactly after :attr:`sequence` with the recovered
        vocabulary, so documents decode into the same id space the
        restored clusterer uses. Feed each yielded batch to
        :meth:`apply` to stay bit-equal with the writer. Raises
        :class:`~repro.exceptions.JournalError` if the journal rotates
        past this handle (re-run :func:`recover` then).
        """
        return follow(
            self.journal_path,
            poll_interval,
            vocabulary=self.vocabulary,
            after=self.sequence,
            stop=stop,
            timeout=timeout,
        )

    def apply(self, batch: FollowedBatch) -> None:
        """Absorb one :meth:`follow`-ed batch into the recovered state.

        Replays the batch through ``process_batch`` at its journaled
        time (the same exact-replay argument :func:`recover` rests on)
        and advances :attr:`sequence`; out-of-order application is
        rejected — the handle must absorb every batch, in order.
        """
        if batch.sequence != self.sequence + 1:
            raise JournalError(
                f"cannot apply batch {batch.sequence} to recovered "
                f"state at sequence {self.sequence}; batches must be "
                f"applied in order, gaplessly"
            )
        self.clusterer.process_batch(
            list(batch.documents), at_time=batch.at_time
        )
        self.sequence = batch.sequence
        self.replayed_batches += 1


def recover(
    checkpoint_path: PathLike,
    vocabulary: Optional[Vocabulary] = None,
    journal_path: Optional[PathLike] = None,
    statistics_backend: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> RecoveryResult:
    """Restore the newest recoverable state for ``checkpoint_path``.

    Tries the primary checkpoint, then its ``.bak`` rotation; raises
    :class:`CheckpointError` when neither is a valid checkpoint. The
    journal (``journal_path``, default ``<checkpoint>.journal``) is
    then replayed: entries already absorbed by the checkpoint are
    skipped, a torn tail is discarded, and a journal that is
    *unreadable* (corrupt header) is treated as absent — the checkpoint
    alone is still a consistent prefix. A journal whose base sequence
    is *ahead* of the recovered checkpoint is likewise discarded when
    the ``.bak`` generation served (the journal was rotated against the
    newer, now-lost primary), but raises for a valid primary — there it
    means mixed-up files, and ignoring it would silently drop
    acknowledged batches.
    """
    rec = resolve(recorder)
    with Span(rec, "durability.recover") as span:
        target = Path(checkpoint_path)
        chosen: Optional[Path] = None
        sequence = 0
        failures: List[str] = []
        for candidate in (target, backup_path(target)):
            if not candidate.exists():
                failures.append(f"{candidate}: not found")
                continue
            try:
                state = read_checkpoint_state(candidate)
            except CheckpointError as exc:
                failures.append(str(exc))
                continue
            chosen = candidate
            sequence = int(state.get("sequence", 0))
            break
        if chosen is None:
            raise CheckpointError(
                f"no recoverable checkpoint for {target}: "
                + "; ".join(failures)
            )
        used_backup = chosen != target
        if used_backup and rec.enabled:
            rec.counter("durability.checkpoint_fallback")

        clusterer, vocabulary = load_checkpoint(
            chosen, vocabulary, statistics_backend=statistics_backend
        )
        if recorder is not None:
            clusterer.set_recorder(rec)

        journal = (
            Path(journal_path) if journal_path is not None
            else default_journal_path(target)
        )
        replayed = 0
        truncated = False
        if journal.exists():
            try:
                contents = read_journal(journal)
            except JournalError:
                if rec.enabled:
                    rec.counter("durability.journal_discarded")
                contents = None
            if contents is not None and contents.base_sequence > sequence:
                if not used_backup:
                    # a valid primary checkpoint paired with a journal
                    # from its future means the files were mixed up —
                    # replaying nothing would silently lose batches the
                    # journal proves were acknowledged
                    raise CheckpointError(
                        f"{journal}: journal base sequence "
                        f"{contents.base_sequence} is ahead of "
                        f"checkpoint sequence {sequence} ({chosen}); "
                        f"the journal does not extend this checkpoint"
                    )
                # expected when the primary rotted away after its
                # journal rotation: the .bak is one checkpoint staler
                # than the journal's base, and is itself a consistent
                # prefix — recover it rather than refuse
                if rec.enabled:
                    rec.counter("durability.journal_discarded")
                contents = None
            if contents is not None:
                truncated = contents.truncated
                for entry in contents.entries:
                    if entry.sequence <= sequence:
                        continue
                    batch = [
                        record_to_document(record, vocabulary)
                        for record in entry.records
                    ]
                    clusterer.process_batch(batch, at_time=entry.at_time)
                    sequence = entry.sequence
                    replayed += 1
        if rec.enabled and replayed:
            rec.counter("durability.replayed_batches", replayed)
        span.tags["replayed"] = replayed
        span.tags["sequence"] = sequence
    return RecoveryResult(
        clusterer=clusterer,
        vocabulary=vocabulary,
        sequence=sequence,
        checkpoint_path=chosen,
        journal_path=journal,
        replayed_batches=replayed,
        used_backup=used_backup,
        journal_truncated=truncated,
    )
