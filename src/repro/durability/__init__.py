"""repro.durability — crash-safe persistence for the on-line clusterer.

The paper's clusterer is *long-lived*: its statistics are the product
of every batch since day one (Eq. 27-29), so losing them to a crash is
losing the model. This package makes process death a non-event:

* :mod:`~repro.durability.atomic` — temp-file + fsync + ``os.replace``
  writes with ``.bak`` rotation and sha256 payload checksums; no crash
  leaves a corrupt or truncated checkpoint.
* :mod:`~repro.durability.journal` — an append-only, fsync-per-batch
  JSONL write-ahead log of accepted batches, tied to its base
  checkpoint by a sequence number.
* :mod:`~repro.durability.checkpointer` — periodic checkpoints during a
  run (``repro cluster --checkpoint-every N``); registered as a commit
  hook so only committed batches are ever journaled.
* :mod:`~repro.durability.recovery` — :func:`recover`: newest valid
  checkpoint (falling back to ``.bak``) + exact journal replay. The
  returned :class:`RecoveryResult` is resumable: ``result.follow()``
  keeps yielding batches a live writer commits, ``result.apply(batch)``
  absorbs them — a warm-standby replica in four lines.
* :mod:`~repro.durability.follow` — :func:`follow`: public iterator
  over committed journal batches, polling for new ones.

Quickstart::

    from repro.durability import Checkpointer, recover

    checkpointer = Checkpointer(clusterer, vocabulary, "state.json")
    clusterer.add_commit_hook(checkpointer.record_batch)
    ...                      # process batches; crash whenever
    restored = recover("state.json")   # bit-equal to a batch prefix
"""

from .atomic import (
    BACKUP_SUFFIX,
    CHECKSUM_FIELD,
    atomic_write_json,
    atomic_write_text,
    backup_path,
    canonical_json,
    checksum_matches,
    payload_checksum,
    prepare_checkpoint_path,
)
from .checkpointer import Checkpointer
from .follow import FollowedBatch, follow
from .journal import (
    BatchJournal,
    JournalContents,
    JournalEntry,
    default_journal_path,
    read_journal,
)
from .recovery import RecoveryResult, recover

__all__ = [
    "BACKUP_SUFFIX",
    "CHECKSUM_FIELD",
    "atomic_write_json",
    "atomic_write_text",
    "backup_path",
    "canonical_json",
    "checksum_matches",
    "payload_checksum",
    "prepare_checkpoint_path",
    "BatchJournal",
    "JournalContents",
    "JournalEntry",
    "default_journal_path",
    "read_journal",
    "Checkpointer",
    "FollowedBatch",
    "follow",
    "RecoveryResult",
    "recover",
]
