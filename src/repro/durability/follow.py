"""Public journal tailing: iterate committed batches as they land.

:func:`follow` turns the batch journal into a stream: it yields every
committed batch beyond a starting sequence and then polls the file for
more, so an external consumer — a warm-standby replica, an indexer, a
monitoring probe — can observe exactly the batches the writer has
durably acknowledged, in order, without touching the writer process.

The journal is re-read from the start on every poll. That sounds
wasteful but is the simple *correct* choice: journals rotate (restart
against a new base) at every checkpoint, so they stay short, and a
rotation mid-poll is indistinguishable from a torn write — both show up
as an unreadable or restarted file that the next poll resolves. A torn
*tail* (the writer crashed mid-append) is simply not yielded, matching
:func:`read_journal`'s semantics; it never produces a partial batch.

Gap semantics: if a poll finds the journal's base sequence *ahead* of
the last yielded sequence (the journal rotated past this follower while
it slept — at least one committed batch can no longer be read here),
``follow`` raises :class:`~repro.exceptions.JournalError` rather than
silently skipping. The consumer should run
:func:`~repro.durability.recover` against the checkpoint and continue
with :meth:`RecoveryResult.follow`, which starts exactly where the
recovered state ends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple

from ..corpus.document import Document
from ..exceptions import JournalError
from ..persistence import record_to_document
from ..text.vocabulary import Vocabulary
from .atomic import PathLike
from .journal import read_journal


@dataclass(frozen=True)
class FollowedBatch:
    """One committed batch observed by :func:`follow`."""

    #: The batch's journal sequence number (1-based, gapless).
    sequence: int
    #: The logical time the batch was processed at.
    at_time: float
    #: The batch's documents, decoded against the follower's vocabulary.
    documents: Tuple[Document, ...]


def follow(
    path: PathLike,
    poll_interval: float = 0.5,
    *,
    vocabulary: Optional[Vocabulary] = None,
    after: int = 0,
    stop: Optional[Callable[[], bool]] = None,
    timeout: Optional[float] = None,
) -> Iterator[FollowedBatch]:
    """Yield committed batches from the journal at ``path``, then tail it.

    Parameters
    ----------
    path:
        The journal file (``Checkpointer.journal_path``, or
        ``default_journal_path(checkpoint)``). May not exist yet.
    poll_interval:
        Seconds to sleep between polls once caught up.
    vocabulary:
        Vocabulary to intern the batch terms into. A fresh one is grown
        when omitted — fine for observers, wrong for replicas (use
        :meth:`RecoveryResult.follow`, which passes the recovered one).
    after:
        Yield only batches with ``sequence > after`` (default: all).
    stop:
        Optional callable polled between reads; return True to end the
        iteration cleanly (e.g. ``lambda: done_event.is_set()``).
    timeout:
        Optional wall-clock bound in seconds: the iterator ends once it
        has been idle — no new batch — for this long. ``None`` tails
        forever (until ``stop`` fires).

    Raises
    ------
    JournalError
        When the journal has rotated past ``after`` — a committed batch
        this follower has not seen is no longer in the file. Recover
        from the checkpoint and continue from there.
    """
    if vocabulary is None:
        vocabulary = Vocabulary()
    last = int(after)
    idle_since = time.monotonic()
    while True:
        if stop is not None and stop():
            return
        target = Path(path)
        contents = None
        if target.exists():
            try:
                contents = read_journal(target)
            except JournalError:
                # mid-rotation or torn header: the next poll sees
                # either the finished rotation or the same — retry
                contents = None
        if contents is not None:
            if contents.base_sequence > last:
                raise JournalError(
                    f"{target}: journal base sequence "
                    f"{contents.base_sequence} is ahead of the last "
                    f"followed batch {last}; the journal rotated past "
                    f"this follower — re-run recover() and continue "
                    f"with RecoveryResult.follow()"
                )
            progressed = False
            for entry in contents.entries:
                if entry.sequence <= last:
                    continue
                batch = tuple(
                    record_to_document(record, vocabulary)
                    for record in entry.records
                )
                yield FollowedBatch(
                    sequence=entry.sequence,
                    at_time=entry.at_time,
                    documents=batch,
                )
                last = entry.sequence
                progressed = True
            if progressed:
                idle_since = time.monotonic()
                continue  # drained something: look again immediately
        if timeout is not None and time.monotonic() - idle_since >= timeout:
            return
        if stop is not None and stop():
            return
        time.sleep(poll_interval)
