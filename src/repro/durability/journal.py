"""Append-only batch journal: a write-ahead log of accepted batches.

Checkpoints alone lose everything since the last write; the journal
closes that gap. Every batch the incremental pipeline *commits* is
appended as one JSON line and fsynced before the call returns, so after
a crash the state is reconstructible as::

    newest valid checkpoint  +  journaled batches beyond its sequence

replayed through ``process_batch`` — exact, not approximate, by the
λ-multiplicativity of the forgetting model (Eq. 27-29): decaying
straight from the checkpoint clock to each journaled ``at_time``
produces bit-identical statistics to the uninterrupted run (see
DESIGN.md).

File layout (JSON Lines)::

    {"format": "repro-journal", "version": 1, "base_sequence": S,
     "base_now": 42.0, "checksum": "sha256:..."}        # header
    {"sequence": S+1, "at_time": 49.0, "documents": [...],
     "checksum": "sha256:..."}                          # one per batch

The header ties the journal to the checkpoint whose ``sequence`` is
``S``; each entry carries its own checksum, so a torn final line (the
only corruption an append-only fsynced writer can leave behind) is
detected and discarded on read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from ..corpus.document import Document
from ..exceptions import JournalError
from ..obs import Recorder, resolve
from ..persistence import document_record
from ..text.vocabulary import Vocabulary
from .atomic import (
    CHECKSUM_FIELD,
    PathLike,
    atomic_write_text,
    checksum_matches,
    payload_checksum,
)

_FORMAT = "repro-journal"
_VERSION = 1


def default_journal_path(checkpoint_path: PathLike) -> Path:
    """The journal maintained alongside a checkpoint file."""
    target = Path(checkpoint_path)
    return target.with_name(target.name + ".journal")


@dataclass(frozen=True)
class JournalEntry:
    """One committed batch: its sequence, clock, and document records."""

    sequence: int
    at_time: float
    records: Tuple[Mapping[str, Any], ...]


@dataclass(frozen=True)
class JournalContents:
    """A parsed journal: header fields plus the intact entry prefix."""

    base_sequence: int
    base_now: Optional[float]
    entries: Tuple[JournalEntry, ...]
    truncated: bool


def read_journal(path: PathLike) -> JournalContents:
    """Parse a journal, tolerating a torn tail.

    The header must be intact (it is written atomically, so a bad
    header means real corruption): :class:`JournalError` otherwise.
    Entries are consumed in order until the first unparsable,
    checksum-failing, or out-of-sequence line — everything from there
    on is a torn append and is discarded, with ``truncated`` set.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if not lines or not lines[0].strip():
        raise JournalError(f"{path}: empty journal (missing header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(
            f"{path}: invalid journal header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise JournalError(f"{path}: journal header is not a JSON object")
    if header.get("format") != _FORMAT:
        raise JournalError(
            f"{path}: not a repro journal "
            f"(format={header.get('format')!r})"
        )
    if header.get("version") != _VERSION:
        raise JournalError(
            f"{path}: unsupported journal version "
            f"{header.get('version')!r} (expected {_VERSION})"
        )
    if checksum_matches(header) is False:
        raise JournalError(f"{path}: journal header checksum mismatch")
    try:
        base_sequence = int(header["base_sequence"])
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(
            f"{path}: malformed journal header ({exc!r})"
        ) from exc
    raw_now = header.get("base_now")
    base_now = float(raw_now) if raw_now is not None else None

    entries: List[JournalEntry] = []
    truncated = False
    expected = base_sequence + 1
    for raw in lines[1:]:
        if raw == "":
            continue  # the file's trailing newline
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            truncated = True
            break
        if (
            not isinstance(record, dict)
            or checksum_matches(record) is not True
            or not isinstance(record.get("documents"), list)
        ):
            truncated = True
            break
        try:
            sequence = int(record["sequence"])
            at_time = float(record["at_time"])
        except (KeyError, TypeError, ValueError):
            truncated = True
            break
        if sequence != expected:
            truncated = True
            break
        entries.append(JournalEntry(
            sequence=sequence,
            at_time=at_time,
            records=tuple(record["documents"]),
        ))
        expected += 1
    return JournalContents(
        base_sequence=base_sequence,
        base_now=base_now,
        entries=tuple(entries),
        truncated=truncated,
    )


class BatchJournal:
    """Fsync-per-batch appender; one instance per run.

    Creating (or :meth:`rotate`-ing) a journal writes its header
    atomically — via temp file + rename, so a crash mid-rotation leaves
    either the complete old journal or the complete new header, never a
    hybrid. :meth:`append` serializes the batch *before* touching the
    file, writes one line, flushes, and fsyncs, so the on-disk journal
    only ever grows by whole, checksummed records (modulo a torn final
    line, which :func:`read_journal` discards).
    """

    def __init__(
        self,
        path: PathLike,
        vocabulary: Vocabulary,
        base_sequence: int = 0,
        base_now: Optional[float] = None,
        durable: bool = True,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.path = Path(path)
        self.vocabulary = vocabulary
        self.durable = durable
        self.recorder = resolve(recorder)
        self.sequence = int(base_sequence)
        self._handle: Optional[IO[str]] = None
        self._start(self.sequence, base_now)

    def _start(self, base_sequence: int, base_now: Optional[float]) -> None:
        header: Dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "base_sequence": int(base_sequence),
            "base_now": base_now,
        }
        header[CHECKSUM_FIELD] = payload_checksum(header)
        atomic_write_text(
            json.dumps(header, ensure_ascii=False) + "\n",
            self.path, durable=self.durable,
        )
        self.sequence = int(base_sequence)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, documents: Sequence[Document], at_time: float) -> int:
        """Journal one committed batch; returns its sequence number.

        The record is fully serialized (and checksummed) before any
        byte reaches the file. A failed write or fsync closes the
        journal — the on-disk tail may be torn, which the reader
        tolerates — and re-raises.
        """
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        try:
            record: Dict[str, Any] = {
                "sequence": self.sequence + 1,
                "at_time": float(at_time),
                "documents": [
                    document_record(doc, self.vocabulary)
                    for doc in documents
                ],
            }
            record[CHECKSUM_FIELD] = payload_checksum(record)
            line = json.dumps(record, ensure_ascii=False) + "\n"
        except Exception as exc:
            raise JournalError(
                f"{self.path}: cannot journal batch "
                f"{self.sequence + 1}: {exc}"
            ) from exc
        try:
            self._handle.write(line)
            self._handle.flush()
            if self.durable:
                os.fsync(self._handle.fileno())
        except BaseException:
            # the file may now hold a torn line; stop appending to it
            self.close()
            raise
        self.sequence += 1
        if self.recorder.enabled:
            self.recorder.counter("durability.journal_batches")
            self.recorder.gauge(
                "durability.journal_sequence", self.sequence
            )
        return self.sequence

    def rotate(
        self, base_sequence: int, base_now: Optional[float]
    ) -> None:
        """Reset the journal under a new base checkpoint.

        Called right *after* a checkpoint at ``base_sequence`` lands on
        disk: the journaled batches it absorbed are obsolete, so the
        file is restarted with a fresh header (atomically — see class
        docstring).
        """
        self.close()
        self._start(base_sequence, base_now)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.close()
        return False
