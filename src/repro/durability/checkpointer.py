"""Periodic checkpointing for long on-line runs.

``repro cluster --checkpoint`` used to write state once, at the very
end of the run — a crash at window N of M lost everything. The
:class:`Checkpointer` bounds that loss: registered as a commit hook on
:class:`~repro.core.incremental.IncrementalClusterer`, it journals
every accepted batch (fsynced before the hook returns) and rewrites the
checkpoint every ``every`` windows, rotating the journal under the new
base. With the journal, a crash loses at most the batch *being*
processed; even without replaying it, the checkpoint alone is at most
``every`` windows stale.

Write ordering per batch (the invariant recovery relies on)::

    process_batch commits  →  journal.append (fsync)
                           →  [when due] checkpoint (atomic) → rotate

so on disk, at every instant, ``checkpoint.sequence`` ≤ the journal's
last intact sequence + 1, and the journal's ``base_sequence`` never
exceeds the newest valid checkpoint's sequence. ``recover()`` needs
exactly that to land on a batch-prefix of the uninterrupted run.
"""

from __future__ import annotations

import threading
from pathlib import Path
from types import TracebackType
from typing import List, Optional, Type

from ..core.incremental import IncrementalClusterer
from ..corpus.document import Document
from ..exceptions import ConfigurationError
from ..obs import Recorder, resolve
from ..persistence import save_checkpoint
from ..text.vocabulary import Vocabulary
from .atomic import PathLike, prepare_checkpoint_path
from .journal import BatchJournal, default_journal_path


class Checkpointer:
    """Owns the checkpoint file and batch journal of one run.

    >>> checkpointer = Checkpointer(clusterer, vocab, "state.json")  # doctest: +SKIP
    >>> clusterer.add_commit_hook(checkpointer.record_batch)  # doctest: +SKIP
    >>> ...process batches...  # doctest: +SKIP
    >>> checkpointer.close()  # doctest: +SKIP

    Construction immediately anchors the pair on disk: the current
    state is checkpointed (even a fresh, never-fed clusterer — its
    checkpoint is trivially loadable) and the journal restarted against
    it, so recovery is well-defined from the first batch on. Pass
    ``sequence`` when the clusterer was itself restored by
    :func:`~repro.durability.recover` so numbering continues.
    """

    def __init__(
        self,
        clusterer: IncrementalClusterer,
        vocabulary: Vocabulary,
        checkpoint_path: PathLike,
        every: int = 1,
        journal_path: Optional[PathLike] = None,
        sequence: int = 0,
        durable: bool = True,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if every < 1:
            raise ConfigurationError(
                f"checkpoint interval must be >= 1 window, got {every}"
            )
        self.clusterer = clusterer
        self.vocabulary = vocabulary
        self.checkpoint_path = prepare_checkpoint_path(checkpoint_path)
        self.every = int(every)
        self.sequence = int(sequence)
        self.recorder = resolve(recorder)
        self.durable = durable
        self._since_checkpoint = 0
        # serializes record_batch/checkpoint against close()/abort():
        # a service shutting down can race its writer's final commit
        self._lock = threading.Lock()
        self._closed = False
        self._write_checkpoint()
        self._journal = BatchJournal(
            (
                Path(journal_path) if journal_path is not None
                else default_journal_path(self.checkpoint_path)
            ),
            vocabulary,
            base_sequence=self.sequence,
            base_now=clusterer.statistics.now,
            durable=durable,
            recorder=self.recorder,
        )

    @property
    def journal_path(self) -> Path:
        return self._journal.path

    @property
    def closed(self) -> bool:
        """True once :meth:`close` or :meth:`abort` has run."""
        return self._closed

    def record_batch(
        self, documents: List[Document], at_time: float
    ) -> None:
        """Commit hook: journal the batch, checkpoint when due."""
        with self._lock:
            self._journal.append(documents, at_time)
            self.sequence += 1
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.every:
                self._checkpoint_locked()

    def checkpoint(self) -> None:
        """Write the checkpoint now and restart the journal against it."""
        with self._lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        self._write_checkpoint()
        self._journal.rotate(
            self.sequence, self.clusterer.statistics.now
        )
        self._since_checkpoint = 0

    def _write_checkpoint(self) -> None:
        save_checkpoint(
            self.clusterer, self.vocabulary, self.checkpoint_path,
            sequence=self.sequence,
        )
        if self.recorder.enabled:
            self.recorder.counter("durability.checkpoints_written")

    def close(self) -> None:
        """Flush a final checkpoint (if batches are pending) and stop.

        Idempotent and thread-safe: concurrent or repeated calls (the
        service shutdown path and a ``with`` block both closing, or a
        close racing the writer's final ``record_batch``) serialize on
        the internal lock and flush exactly once. The journal handle is
        closed even when the final checkpoint write fails — its fsynced
        entries are the recovery path then.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not self._journal.closed:
                try:
                    if self._since_checkpoint:
                        self._checkpoint_locked()
                finally:
                    self._journal.close()

    def abort(self) -> None:
        """Stop *without* the final checkpoint (crash simulation).

        Closes the journal handle and nothing else: the on-disk state
        is exactly what a hard kill would leave — a possibly-stale
        checkpoint plus fsynced journal entries —
        which is what :func:`~repro.durability.recover` replays.
        Idempotent, like :meth:`close`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._journal.close()

    def __enter__(self) -> "Checkpointer":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.close()
        return False
