"""Sparse vector algebra used by document vectors and cluster representatives."""

from .sparse import SparseVector
from .tfidf import NoveltyTfidfWeighter

__all__ = ["SparseVector", "NoveltyTfidfWeighter"]
