"""CSR-backed weighted-vector batches.

:class:`WeightedVectorArrays` is the array twin of the
``{doc_id: SparseVector}`` mapping produced by
:meth:`~repro.vectors.tfidf.NoveltyTfidfWeighter.weighted_vectors`:
one flat ``(indptr, term_ids, data)`` CSR layout over the whole batch
instead of one dict per document. Engines that declare
``accepts_arrays = True`` consume the flat arrays directly (no
per-term Python loop between vectorisation and the engine's matrix
build); everything else still works, because the class is a read-only
``Mapping[str, SparseVector]`` that materialises individual rows
lazily — the K-means split/rescue paths touch only a handful of rows,
so almost no dicts are ever built.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .._typing import FloatArray, IntArray
from .sparse import SparseVector


class WeightedVectorArrays(Mapping[str, SparseVector]):
    """Batch of weighted document vectors in one CSR layout.

    Parameters
    ----------
    doc_ids:
        Row order — ``doc_ids[i]`` owns ``term_ids[indptr[i]:indptr[i+1]]``
        and the matching ``data`` slice.
    indptr:
        int64 array of ``len(doc_ids) + 1`` row boundaries.
    term_ids:
        int64 vocabulary term ids per stored component (unsorted within
        a row; engines re-map them to dense columns themselves).
    data:
        float64 component values (never 0.0 — zero components are
        dropped at construction, matching ``SparseVector`` semantics).
    """

    __slots__ = ("doc_ids", "indptr", "term_ids", "data", "_index",
                 "_row_cache")

    def __init__(
        self,
        doc_ids: Sequence[str],
        indptr: IntArray,
        term_ids: IntArray,
        data: FloatArray,
    ) -> None:
        self.doc_ids: List[str] = list(doc_ids)
        self.indptr = indptr
        self.term_ids = term_ids
        self.data = data
        self._index: Dict[str, int] = {
            doc_id: row for row, doc_id in enumerate(self.doc_ids)
        }
        self._row_cache: Dict[str, SparseVector] = {}

    # -- Mapping protocol ------------------------------------------------

    def __getitem__(self, doc_id: str) -> SparseVector:
        vector = self._row_cache.get(doc_id)
        if vector is None:
            row = self._index[doc_id]
            lo = int(self.indptr[row])
            hi = int(self.indptr[row + 1])
            vector = SparseVector._trusted(dict(zip(
                self.term_ids[lo:hi].tolist(),
                self.data[lo:hi].tolist(),
            )))
            self._row_cache[doc_id] = vector
        return vector

    def __iter__(self) -> Iterator[str]:
        return iter(self.doc_ids)

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._index

    # -- array access ----------------------------------------------------

    def csr_parts(
        self,
    ) -> Tuple[List[str], IntArray, IntArray, FloatArray]:
        """``(doc_ids, indptr, term_ids, data)`` — the engine fast path."""
        return self.doc_ids, self.indptr, self.term_ids, self.data

    def empty_doc_ids(self) -> List[str]:
        """Ids of documents with zero stored components."""
        lengths = np.diff(self.indptr)
        return [self.doc_ids[row]
                for row in np.flatnonzero(lengths == 0).tolist()]
