"""Novelty tf·idf weighting (paper Eq. 12-16).

The paper represents documents as ``d⃗_i = (tf_i1·idf_1, ..., tf_im·idf_m)``
with ``tf_ik = f_ik`` and the *novelty idf* ``idf_k = 1/sqrt(Pr(t_k))``
(Eq. 13-14). The similarity (Eq. 16) is then

    sim(d_i, d_j) = Pr(d_i)·Pr(d_j) · (d⃗_i · d⃗_j) / (len_i · len_j)

which factorises as a plain dot product of **weighted document vectors**

    w⃗_i = (Pr(d_i) / len_i) · d⃗_i          so   sim(d_i, d_j) = w⃗_i · w⃗_j.

That factorisation is exactly what makes the paper's cluster
representatives work: the representative (Eq. 19-20) is the *sum* of the
member ``w⃗_i`` vectors. :class:`NoveltyTfidfWeighter` builds both forms
against a statistics snapshot.

Because ``Pr(t_k)`` and ``Pr(d_i)`` change at every statistics update,
weighted vectors are valid only for the snapshot they were built from;
the clustering layer rebuilds them per run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

import numpy as np

from .._typing import FloatArray, IntArray
from ..corpus.document import Document
from ..forgetting.statistics import CorpusStatistics
from .arrays import WeightedVectorArrays
from .sparse import SparseVector


class NoveltyTfidfWeighter:
    """Build tf·idf and weighted document vectors from statistics.

    The idf table is captured eagerly at construction so that repeated
    vector builds within one clustering run are consistent and cheap.
    """

    def __init__(self, statistics: CorpusStatistics) -> None:
        self._statistics = statistics
        self._idf_cache: Dict[int, float] = {}

    @property
    def statistics(self) -> CorpusStatistics:
        return self._statistics

    def idf(self, term_id: int) -> float:
        """Cached ``idf_k = 1/sqrt(Pr(t_k))`` (Eq. 14)."""
        cached = self._idf_cache.get(term_id)
        if cached is None:
            cached = self._statistics.idf(term_id)
            self._idf_cache[term_id] = cached
        return cached

    def tfidf_vector(self, document: Document) -> SparseVector:
        """``d⃗_i`` with components ``tf_ik · idf_k`` (Eq. 12-14)."""
        return SparseVector({
            term_id: count * self.idf(term_id)
            for term_id, count in document.term_counts.items()
        })

    def weighted_vector(self, document: Document) -> SparseVector:
        """``w⃗_i = (Pr(d_i)/len_i) · d⃗_i`` — the similarity-carrying form.

        Empty documents produce the zero vector (they are similar to
        nothing, including themselves).
        """
        if document.length == 0:
            return SparseVector()
        scale = (
            self._statistics.pr_document(document.doc_id) / document.length
        )
        return SparseVector({
            term_id: count * self.idf(term_id) * scale
            for term_id, count in document.term_counts.items()
        })

    def weighted_vectors(
        self, documents: Iterable[Document]
    ) -> Dict[str, SparseVector]:
        """``{doc_id: w⃗_i}`` for many documents.

        Equivalent to calling :meth:`weighted_vector` per document but
        with the idf lookup and vector construction inlined — this is
        the vectorisation step of every clustering run, so the per-term
        constant factor matters at stream scale.
        """
        documents = list(documents)
        idf_cache = self._idf_cache
        statistics_idf = self._statistics.idf
        pr_document = self._statistics.pr_document
        terms: Set[int] = set()
        for doc in documents:
            terms.update(doc.term_counts)
        for term_id in terms.difference(idf_cache):
            idf_cache[term_id] = statistics_idf(term_id)
        # a component can only be 0.0 when its idf is 0.0 (a positive
        # idf is >= 1, and the positive per-document scale cannot
        # multiply it down to zero), so one check over the batch's
        # unique terms decides whether any per-document zero filtering
        # is needed at all
        has_zero_idf = any(idf_cache[term_id] == 0.0 for term_id in terms)
        out: Dict[str, SparseVector] = {}
        for doc in documents:
            length = doc.length
            if length == 0:
                out[doc.doc_id] = SparseVector()
                continue
            scale = pr_document(doc.doc_id) / length
            if scale == 0.0:
                out[doc.doc_id] = SparseVector()
                continue
            data = {
                term_id: count * idf_cache[term_id] * scale
                for term_id, count in doc.term_counts.items()
            }
            if has_zero_idf and 0.0 in data.values():
                data = {t: v for t, v in data.items() if v != 0.0}
            out[doc.doc_id] = SparseVector._trusted(data)
        return out

    def weighted_arrays(
        self, documents: Iterable[Document]
    ) -> WeightedVectorArrays:
        """``w⃗_i`` for many documents as one CSR batch.

        The array twin of :meth:`weighted_vectors`: identical values
        (the same floating-point operation order per component), but
        built with a handful of numpy expressions over the batch's
        concatenated term runs instead of one dict per document, and
        returned as a :class:`WeightedVectorArrays` whose flat rows
        array-aware engines consume directly.
        """
        documents = list(documents)
        n = len(documents)
        pr_document = self._statistics.pr_document
        doc_ids = [doc.doc_id for doc in documents]
        lens = np.zeros(n, dtype=np.int64)
        scales = np.zeros(n, dtype=np.float64)
        id_parts: List[IntArray] = []
        count_parts: List[FloatArray] = []
        for row, doc in enumerate(documents):
            length = doc.length
            if length == 0:
                continue
            scale = pr_document(doc.doc_id) / length
            if scale == 0.0:
                continue
            term_ids, counts = doc.term_arrays()
            scales[row] = scale
            lens[row] = term_ids.size
            id_parts.append(term_ids)
            count_parts.append(counts)
        if id_parts:
            terms = np.concatenate(id_parts)
            counts = np.concatenate(count_parts)
        else:
            terms = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.float64)
        unique_terms, inverse = np.unique(terms, return_inverse=True)
        idf_unique = self._statistics.idf_array(unique_terms)
        data = counts * idf_unique[inverse] * np.repeat(scales, lens)
        if idf_unique.size and (idf_unique == 0.0).any():
            # same pathological-underflow filter as the dict path:
            # only terms the statistics no longer carry produce zeros
            keep = data != 0.0
            terms = terms[keep]
            data = data[keep]
            rows = np.repeat(np.arange(n, dtype=np.int64), lens)[keep]
            lens = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        return WeightedVectorArrays(doc_ids, indptr, terms, data)

    def representative(
        self,
        documents: Iterable[Document],
        normalized: bool = False,
    ) -> SparseVector:
        """Cluster representative ``c⃗ = Σ w⃗_d`` over ``documents``
        (Eq. 19-20), optionally unit-normalised.

        The single construction point used by labeling, tracking and
        search — the vector whose top components name a cluster and
        whose cosine links clusters across snapshots.
        """
        representative = SparseVector()
        for doc in documents:
            representative.add_scaled(self.weighted_vector(doc), 1.0)
        if normalized:
            return representative.normalized()
        return representative

    def cosine_vectors(
        self, documents: Iterable[Document]
    ) -> Dict[str, SparseVector]:
        """Unit-normalised tf·idf vectors (for the classic baselines)."""
        return {
            doc.doc_id: self.tfidf_vector(doc).normalized()
            for doc in documents
        }

    def invalidate(self) -> None:
        """Drop the idf cache (call after the statistics were updated)."""
        self._idf_cache.clear()
