"""Dict-backed sparse vectors over integer term ids.

Documents and cluster representatives are extremely sparse relative to
the corpus vocabulary (a news story touches a few hundred of ~50k terms),
so a hash-map representation beats dense numpy arrays for the paper's
access pattern — many single-vector dot products against a mutating
accumulator. A helper converts to dense numpy for batch paths.

All mutating operations are explicit (``add_scaled``, ``scale_inplace``);
the arithmetic operators return new vectors.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

import numpy as np

from .._typing import FloatArray


class SparseVector:
    """A sparse mapping ``term_id -> float`` with vector algebra.

    Zero-valued entries are pruned on construction and after in-place
    updates, so ``len(v)`` is always the number of structurally non-zero
    components.

    >>> v = SparseVector({0: 1.0, 3: 2.0})
    >>> w = SparseVector({3: 4.0, 7: 1.0})
    >>> v.dot(w)
    8.0
    """

    __slots__ = ("_data",)

    def __init__(
        self,
        data: Union[
            "SparseVector",
            Mapping[int, float],
            Iterable[Tuple[int, float]],
        ] = (),
    ) -> None:
        if isinstance(data, SparseVector):
            self._data = dict(data._data)
        else:
            self._data = {
                int(k): float(v) for k, v in dict(data).items() if v != 0.0
            }

    # -- constructors --------------------------------------------------

    @classmethod
    def from_items(cls, items: Iterable[Tuple[int, float]]) -> "SparseVector":
        """Build from an iterable of (term_id, value) pairs (summing dups)."""
        data: Dict[int, float] = {}
        for key, value in items:
            data[key] = data.get(key, 0.0) + value
        return cls(data)

    @classmethod
    def zeros(cls) -> "SparseVector":
        """Return the empty (all-zero) vector."""
        return cls()

    @classmethod
    def _trusted(cls, data: Dict[int, float]) -> "SparseVector":
        """Adopt ``data`` without copying or zero-pruning.

        Hot-path constructor: the caller guarantees ``data`` maps int
        term ids to non-zero floats and hands over ownership.
        """
        vector = cls.__new__(cls)
        vector._data = data
        return vector

    def copy(self) -> "SparseVector":
        return SparseVector(self._data)

    # -- inspection -----------------------------------------------------

    def get(self, key: int, default: float = 0.0) -> float:
        return self._data.get(key, default)

    def items(self) -> Iterable[Tuple[int, float]]:
        return self._data.items()

    def keys(self) -> Iterable[int]:
        return self._data.keys()

    def values(self) -> Iterable[float]:
        return self._data.values()

    def to_dict(self) -> Dict[int, float]:
        return dict(self._data)

    def to_dense(self, size: int) -> FloatArray:
        """Return a dense ``numpy`` array of length ``size``."""
        dense = np.zeros(size, dtype=np.float64)
        for key, value in self._data.items():
            if key >= size:
                raise IndexError(
                    f"term id {key} does not fit in dense size {size}"
                )
            dense[key] = value
        return dense

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __getitem__(self, key: int) -> float:
        return self._data.get(key, 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = dict(list(sorted(self._data.items()))[:4])
        suffix = "..." if len(self._data) > 4 else ""
        return f"SparseVector({preview}{suffix}, nnz={len(self._data)})"

    def allclose(self, other: "SparseVector", rel_tol: float = 1e-9,
                 abs_tol: float = 1e-12) -> bool:
        """Numerical equality with tolerances over the union support."""
        for key in set(self._data) | set(other._data):
            if not math.isclose(
                self._data.get(key, 0.0),
                other._data.get(key, 0.0),
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            ):
                return False
        return True

    # -- algebra (pure) ---------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Sparse dot product; iterates the smaller operand."""
        a, b = self._data, other._data
        if len(a) > len(b):
            a, b = b, a
        total = 0.0
        for key, value in a.items():
            bval = b.get(key)
            if bval is not None:
                total += value * bval
        return total

    def norm(self) -> float:
        """Euclidean norm."""
        return math.sqrt(sum(value * value for value in self._data.values()))

    def sum(self) -> float:
        """Sum of all components."""
        return sum(self._data.values())

    def scaled(self, factor: float) -> "SparseVector":
        """Return ``factor * self`` as a new vector."""
        if factor == 0.0:
            return SparseVector()
        result = SparseVector()
        result._data = {k: v * factor for k, v in self._data.items()}
        return result

    def __add__(self, other: "SparseVector") -> "SparseVector":
        result = SparseVector(self._data)
        result.add_scaled(other, 1.0)
        return result

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        result = SparseVector(self._data)
        result.add_scaled(other, -1.0)
        return result

    def __mul__(self, factor: float) -> "SparseVector":
        return self.scaled(float(factor))

    __rmul__ = __mul__

    def cosine(self, other: "SparseVector") -> float:
        """Cosine similarity; 0.0 when either vector is zero."""
        denom = self.norm() * other.norm()
        if denom == 0.0:
            return 0.0
        return self.dot(other) / denom

    def normalized(self) -> "SparseVector":
        """Return the unit vector (or the zero vector unchanged)."""
        norm = self.norm()
        if norm == 0.0:
            return SparseVector()
        return self.scaled(1.0 / norm)

    # -- algebra (in place, for accumulators) ----------------------------

    def add_scaled(self, other: "SparseVector", factor: float) -> None:
        """In-place ``self += factor * other`` with zero pruning."""
        if factor == 0.0:
            return
        data = self._data
        for key, value in other._data.items():
            new_value = data.get(key, 0.0) + factor * value
            if new_value == 0.0:
                data.pop(key, None)
            else:
                data[key] = new_value

    def scale_inplace(self, factor: float) -> None:
        """In-place ``self *= factor`` (zero-pruned).

        A tiny ``factor`` can underflow individual products to exactly
        0.0; those entries are dropped to keep the structural-non-zero
        invariant.
        """
        if factor == 0.0:
            self._data.clear()
            return
        underflowed = False
        for key in self._data:
            self._data[key] *= factor
            if self._data[key] == 0.0:
                underflowed = True
        if underflowed:
            self._data = {k: v for k, v in self._data.items() if v != 0.0}

    def prune(self, abs_tol: float = 0.0) -> None:
        """Drop entries with ``|value| <= abs_tol`` (cleans float residue)."""
        self._data = {
            k: v for k, v in self._data.items() if abs(v) > abs_tol
        }
