"""Clustering result value objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of one clustering run.

    Attributes
    ----------
    clusters:
        Tuple of member-id tuples, indexed by cluster id. Empty clusters
        are kept in place so cluster ids are stable across windows.
    outliers:
        Documents left unassigned by the final iteration (Section 4.3
        step 1(b)).
    clustering_index:
        Final value of ``G`` (Eq. 17).
    index_history:
        ``G`` after each repetition-process iteration.
    iterations:
        Number of repetition-process iterations executed.
    converged:
        True when the ΔG/G < δ criterion fired (vs. the iteration cap).
    timings:
        Phase name -> seconds (``"statistics"``, ``"clustering"``...).
    """

    clusters: Tuple[Tuple[str, ...], ...]
    outliers: Tuple[str, ...]
    clustering_index: float
    index_history: Tuple[float, ...]
    iterations: int
    converged: bool
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of cluster slots (including empty ones)."""
        return len(self.clusters)

    @property
    def n_documents(self) -> int:
        """Documents assigned to clusters (excludes outliers)."""
        return sum(len(cluster) for cluster in self.clusters)

    def non_empty_clusters(self) -> List[Tuple[int, Tuple[str, ...]]]:
        """``(cluster_id, member_ids)`` for clusters with members."""
        return [
            (cluster_id, members)
            for cluster_id, members in enumerate(self.clusters)
            if members
        ]

    def assignments(self) -> Dict[str, int]:
        """``doc_id -> cluster_id`` for all clustered documents."""
        mapping: Dict[str, int] = {}
        for cluster_id, members in enumerate(self.clusters):
            for doc_id in members:
                mapping[doc_id] = cluster_id
        return mapping

    def labels(self, doc_ids: Sequence[str]) -> List[int]:
        """Cluster id per ``doc_ids`` entry; -1 for outliers/unknown."""
        assignments = self.assignments()
        return [assignments.get(doc_id, -1) for doc_id in doc_ids]

    def cluster_of(self, doc_id: str) -> Optional[int]:
        """Cluster id of ``doc_id`` or ``None`` if outlier/unknown."""
        for cluster_id, members in enumerate(self.clusters):
            if doc_id in members:
                return cluster_id
        return None

    def summary(self) -> str:
        """One-line human-readable description."""
        sizes = sorted((len(c) for c in self.clusters if c), reverse=True)
        return (
            f"{len(sizes)} non-empty clusters over {self.n_documents} docs "
            f"(+{len(self.outliers)} outliers), G={self.clustering_index:.3e}, "
            f"{self.iterations} iterations"
            f"{' (converged)' if self.converged else ''}, "
            f"sizes={sizes[:10]}{'...' if len(sizes) > 10 else ''}"
        )
