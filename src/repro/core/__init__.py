"""The paper's primary contribution: novelty-based similarity, the
extended K-means with cluster representatives, and the incremental
clustering pipeline."""

from .similarity import NoveltySimilarity
from .cluster import Cluster
from .config import ClustererConfig
from .engines import (
    Engine,
    available_engines,
    register_engine,
    resolve_engine,
)
from .result import ClusteringResult
from .kmeans import NoveltyKMeans
from .incremental import IncrementalClusterer, NonIncrementalClusterer
from .kestimate import KEstimate, estimate_k
from .search import ClusterSearcher, SearchHit
from .tracking import ThreadEvent, TopicThread, TopicTracker, TrackingSnapshot
from .labeling import (
    ClusterLabel,
    corpus_term_counts,
    discriminative_terms,
    label_clustering,
    medoid_document,
    representative_terms,
)

__all__ = [
    "NoveltySimilarity",
    "Cluster",
    "ClustererConfig",
    "ClusteringResult",
    "Engine",
    "available_engines",
    "register_engine",
    "resolve_engine",
    "NoveltyKMeans",
    "IncrementalClusterer",
    "NonIncrementalClusterer",
    "KEstimate",
    "estimate_k",
    "ClusterLabel",
    "label_clustering",
    "representative_terms",
    "discriminative_terms",
    "corpus_term_counts",
    "medoid_document",
    "TopicTracker",
    "TopicThread",
    "ThreadEvent",
    "TrackingSnapshot",
    "ClusterSearcher",
    "SearchHit",
]
