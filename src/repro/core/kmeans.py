"""The paper's extended K-means (Section 4.3) over pluggable engines.

Algorithm (paper Section 4.3):

* **Initial process** — pick K random documents as singleton clusters,
  compute representatives and the clustering index ``G`` (Eq. 17).
* **Repetition process** — for each document, compute the intra-cluster
  similarity it would produce in every cluster (Eq. 26, one sparse dot
  product per cluster) and assign it to the cluster whose
  *increase* is largest; documents that increase no cluster go to the
  **outlier list** and re-enter as normal documents next iteration.
  Terminate when ``(G_new - G_old)/G_old < δ``.

The numerical backend is an :class:`~repro.core.engines.Engine`
resolved by name from the engine registry (``"sparse"``, ``"dense"``,
``"matrix"``, or anything registered via
:func:`~repro.core.engines.register_engine`); the algorithm logic
exists exactly once here and drives whichever engine is selected. Each
iteration's assignment sweep goes through the engine's batched
``best_gains`` so vectorised engines can answer a whole pass with
matrix products.
"""

from __future__ import annotations

import random
import time as time_module
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .._validation import (
    require_in_open_interval,
    require_positive_int,
)
from ..corpus.document import Document
from ..exceptions import ClusteringError, ConfigurationError
from ..forgetting.statistics import CorpusStatistics
from ..obs import SPAN, Event, Recorder, Span, resolve
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter
from .cluster import Cluster
from .engines import DenseEngine, Engine, SparseEngine, resolve_engine
from .result import ClusteringResult

# Backwards-compatible aliases for the engine classes that used to be
# private to this module (PR 1 and earlier).
_SparseBackend = SparseEngine
_DenseBackend = DenseEngine
_BACKENDS = {"sparse": SparseEngine, "dense": DenseEngine}


def _empty_doc_set(vectors: Mapping[str, SparseVector]) -> Set[str]:
    """Doc ids with zero-component vectors, without materialising rows.

    A CSR batch (``WeightedVectorArrays``) answers this from its row
    pointers; asking ``len(vectors[doc_id])`` per document would build
    the per-document dicts the array path exists to avoid.
    """
    empties = getattr(vectors, "empty_doc_ids", None)
    if callable(empties):
        return set(empties())
    return {doc_id for doc_id, vector in vectors.items()
            if not len(vector)}


class NoveltyKMeans:
    """The paper's extended K-means over novelty-based similarity.

    Parameters
    ----------
    k:
        Number of clusters (paper uses 24 or 32).
    delta:
        Convergence threshold ``δ`` on the relative increase of the
        clustering index ``G`` (Section 4.3 step 4).
    max_iterations:
        Safety cap on repetition-process iterations.
    seed:
        Seed for the random initial seed-document selection.
    engine:
        Name of a registered engine (see :mod:`repro.core.engines`):
        ``"dense"`` (numpy, default), ``"sparse"`` (reference),
        ``"matrix"`` (vectorised CSR, requires scipy), ``"pruned"``
        (inverted-index candidate pruning, fastest at large K ×
        vocabulary), or any name added via
        :func:`~repro.core.engines.register_engine`.
    reseed_empty:
        When True (default), a cluster that lost all members is
        re-seeded with the strongest outlier at the end of the pass,
        keeping K live clusters as the paper assumes.
    criterion:
        Assignment gain criterion for step 1(b) of Section 4.3:

        * ``"g"`` (default) — greedy ascent on the clustering index
          ``G``: gain is the change of the cluster's ``|C_p|·avg_sim``
          term. Positive exactly when the document's mean similarity to
          the members exceeds *half* the current average. Consistent
          with the paper's convergence objective (step 4 monitors G)
          and with the cluster sizes its experiments report.
        * ``"avg"`` — the literal text of step 1(b): gain is the change
          of ``avg_sim`` itself. Rejects every document less similar
          than the current cluster average, which on homogeneous
          streams discards most documents as outliers; kept for the
          criterion-ablation benchmark.
    rescue_outliers:
        Library extension beyond the paper (default off) enabling two
        repair moves that per-document reassignment cannot express:

        * **outlier rescue** — under warm starts a newly emerging topic
          can starve: every cluster slot is held by an established
          topic, so the new topic's documents land in the outlier list
          forever (their gain against foreign clusters is never
          positive). After each pass a candidate cluster is grown
          greedily from the outlier list; if its ``G`` contribution
          exceeds the weakest live cluster's, the weakest cluster is
          evicted (its members re-enter as normal documents next
          iteration, mirroring the paper's outlier semantics) and the
          candidate takes the slot.
        * **split repair** — per-document moves can merge clusters but
          never split one, so a degenerate early merge (first batch
          smaller than K) persists forever, wasting empty slots. When
          an empty slot exists, the best positive-ΔG two-way split of
          an existing cluster fills it.

        Both moves are accepted only when they increase ``G``, so the
        greedy-ascent property is preserved. The on-line pipeline
        enables this by default; the batch experiments don't.
    recorder:
        Observability sink (:mod:`repro.obs`). Defaults to the ambient
        recorder (a no-op unless one was installed). When enabled,
        every fit emits vectorisation/per-pass spans, per-iteration
        ``G`` and outlier gauges, and reseed/rescue/split counters.
    """

    def __init__(
        self,
        k: int,
        delta: float = 0.01,
        max_iterations: int = 30,
        seed: Optional[int] = None,
        engine: str = "dense",
        reseed_empty: bool = True,
        criterion: str = "g",
        rescue_outliers: bool = False,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.k = require_positive_int("k", k)
        self.delta = require_in_open_interval("delta", delta, 0.0, 1.0)
        self.max_iterations = require_positive_int(
            "max_iterations", max_iterations
        )
        self.seed = seed
        resolve_engine(engine)  # fail fast with the list of valid names
        self.engine = engine
        self.reseed_empty = bool(reseed_empty)
        if criterion not in ("g", "avg"):
            raise ConfigurationError(
                f"criterion must be 'g' or 'avg', got {criterion!r}"
            )
        self.criterion = criterion
        self.rescue_outliers = bool(rescue_outliers)
        self.recorder = resolve(recorder)

    # -- public API ---------------------------------------------------------

    def fit(
        self,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
        initial_assignment: Optional[Dict[str, int]] = None,
    ) -> ClusteringResult:
        """Cluster ``documents`` against ``statistics``.

        ``initial_assignment`` (``doc_id -> cluster_id``) enables the
        warm start of Section 5.2: listed documents form the initial
        clusters and unlisted ones start unassigned. Without it, K
        random documents seed singleton clusters (Section 4.3).
        """
        start = time_module.perf_counter()
        docs = list(documents)
        if not docs:
            raise ClusteringError("cannot cluster an empty document set")
        if len(docs) < self.k and initial_assignment is None:
            raise ClusteringError(
                f"need at least k={self.k} documents for random "
                f"initialisation, got {len(docs)}"
            )
        recorder = self.recorder
        factory = resolve_engine(self.engine)
        with Span(recorder, "kmeans.vectorise",
                  {"docs": len(docs)}) as vectorise_span:
            weighter = NoveltyTfidfWeighter(statistics)
            if getattr(factory, "accepts_arrays", False):
                # engines that consume CSR rows directly skip the
                # per-document dict construction entirely
                vectors = weighter.weighted_arrays(docs)
            else:
                vectors = weighter.weighted_vectors(docs)

        backend = factory(self.k, vectors, self.criterion)
        assignment: Dict[str, int] = {}
        if initial_assignment is not None:
            self._warm_start(backend, docs, vectors, initial_assignment,
                             assignment)
        else:
            self._random_seeds(backend, docs, vectors, assignment)

        g_old = backend.clustering_index()
        history: List[float] = []
        outliers: List[str] = []
        converged = False
        iterations = 0

        for iterations in range(1, self.max_iterations + 1):
            with Span(recorder, "kmeans.pass",
                      {"iteration": iterations, "engine": self.engine}):
                outliers = self._assignment_pass(backend, docs, assignment)
                reseeded = 0
                if self.reseed_empty:
                    reseeded = self._reseed_empty_clusters(
                        backend, outliers, assignment
                    )
                rescued = split = False
                if self.rescue_outliers:
                    if outliers:
                        rescued = self._rescue_outliers(
                            backend, vectors, outliers, assignment
                        )
                    if not rescued:
                        split = self._split_repair(
                            backend, vectors, assignment
                        )
                backend.refresh()
                g_new = backend.clustering_index()
            history.append(g_new)
            if recorder.enabled:
                recorder.gauge("kmeans.g", g_new, iteration=iterations)
                recorder.gauge("kmeans.outliers", len(outliers),
                               iteration=iterations)
                if reseeded:
                    recorder.counter("kmeans.reseeds", reseeded)
                if rescued:
                    recorder.counter("kmeans.rescues")
                if split:
                    recorder.counter("kmeans.splits")
            repaired = rescued or split
            if not repaired and self._converged(g_old, g_new):
                converged = True
                break
            g_old = g_new

        elapsed = time_module.perf_counter() - start
        if recorder.enabled:
            recorder.emit(Event("kmeans.fit", SPAN, elapsed, {
                "engine": self.engine,
                "criterion": self.criterion,
                "docs": len(docs),
                "iterations": iterations,
                "converged": converged,
            }))
        return ClusteringResult(
            clusters=tuple(tuple(m) for m in backend.members()),
            outliers=tuple(outliers),
            clustering_index=history[-1] if history else g_old,
            index_history=tuple(history),
            iterations=iterations,
            converged=converged,
            timings={"clustering": elapsed,
                     "vectorisation": vectorise_span.duration},
        )

    # -- phases ------------------------------------------------------------

    def _random_seeds(
        self,
        backend: Engine,
        docs: Sequence[Document],
        vectors: Mapping[str, SparseVector],
        assignment: Dict[str, int],
    ) -> None:
        """Initial process step 1: K random singleton clusters."""
        rng = random.Random(self.seed)
        empty = _empty_doc_set(vectors)
        candidates = [d.doc_id for d in docs if d.doc_id not in empty]
        if not candidates:
            raise ClusteringError(
                "no document has a non-zero vector; nothing to cluster"
            )
        seeds = rng.sample(candidates, min(self.k, len(candidates)))
        for cluster_id, doc_id in enumerate(seeds):
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id

    def _warm_start(
        self,
        backend: Engine,
        docs: Sequence[Document],
        vectors: Mapping[str, SparseVector],
        initial_assignment: Dict[str, int],
        assignment: Dict[str, int],
    ) -> None:
        """Section 5.2 step 3: previous clusters as initial clusters."""
        known = {doc.doc_id for doc in docs}
        empty = _empty_doc_set(vectors)
        for doc_id, cluster_id in initial_assignment.items():
            if doc_id not in known:
                continue
            if not 0 <= cluster_id < self.k:
                raise ConfigurationError(
                    f"initial assignment of {doc_id!r} to cluster "
                    f"{cluster_id} outside [0, {self.k})"
                )
            if doc_id in empty:
                continue
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id

    def _assignment_pass(
        self,
        backend: Engine,
        docs: Sequence[Document],
        assignment: Dict[str, int],
    ) -> List[str]:
        """Repetition-process step 1 over all documents; returns outliers.

        The whole sweep is handed to the engine as one batched
        ``best_gains`` call (each document: leave its cluster, probe
        Eq. 26 against every cluster, join the best positive-gain one)
        so vectorised engines can answer it with matrix products.
        """
        doc_ids = [doc.doc_id for doc in docs]
        if self.recorder.enabled:
            self.recorder.gauge("kmeans.batch_size", len(doc_ids),
                                engine=self.engine)
        decisions = backend.best_gains(doc_ids)
        outliers: List[str] = []
        for doc_id, (cluster_id, gain) in zip(doc_ids, decisions):
            if cluster_id >= 0 and gain > 0.0:
                assignment[doc_id] = cluster_id
            else:
                assignment.pop(doc_id, None)
                outliers.append(doc_id)
        return outliers

    def _reseed_empty_clusters(
        self,
        backend: Engine,
        outliers: List[str],
        assignment: Dict[str, int],
    ) -> int:
        """Seed emptied clusters with the strongest remaining outliers.

        Returns the number of clusters re-seeded.
        """
        empty = [cid for cid, size in enumerate(backend.sizes()) if size == 0]
        if not empty or not outliers:
            return 0
        ranked = sorted(
            outliers,
            key=lambda doc_id: backend.self_similarity(doc_id),
            reverse=True,
        )
        seeded: Set[str] = set()
        next_rank = 0
        for cluster_id in empty:
            if next_rank >= len(ranked):
                break
            doc_id = ranked[next_rank]
            next_rank += 1
            if backend.self_similarity(doc_id) <= 0.0:
                break
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id
            seeded.add(doc_id)
        if seeded:
            outliers[:] = [d for d in outliers if d not in seeded]
        return len(seeded)

    def _rescue_outliers(
        self,
        backend: Engine,
        vectors: Mapping[str, SparseVector],
        outliers: List[str],
        assignment: Dict[str, int],
    ) -> bool:
        """Swap the weakest cluster for a cluster grown from outliers.

        Builds a scratch candidate greedily (strongest outlier as seed,
        then every outlier with positive ΔG gain), and performs the swap
        only when the candidate's ``G`` contribution beats the weakest
        live cluster's. Returns True when a swap happened.
        """
        candidate = Cluster(-1)
        ranked = sorted(
            (doc_id for doc_id in outliers
             if backend.self_similarity(doc_id) > 0.0),
            key=lambda doc_id: backend.self_similarity(doc_id),
            reverse=True,
        )
        if len(ranked) < 2:
            return False
        for doc_id in ranked:
            if candidate.is_empty:
                candidate.add(doc_id, vectors[doc_id])
            elif candidate.g_gain_if_added(vectors[doc_id]) > 0.0:
                candidate.add(doc_id, vectors[doc_id])
        if candidate.size < 2:
            return False

        sizes = backend.sizes()
        contributions = backend.contributions()
        live = [cid for cid, size in enumerate(sizes) if size > 0]
        if not live:
            return False
        weakest = min(live, key=lambda cid: contributions[cid])
        if candidate.index_contribution() <= contributions[weakest]:
            return False

        evicted = list(backend.members()[weakest])
        for doc_id in evicted:
            backend.remove(weakest, doc_id)
            del assignment[doc_id]
        rescued = set(candidate.member_ids())
        for doc_id in candidate.member_ids():
            backend.add(weakest, doc_id)
            assignment[doc_id] = weakest
        # one linear rebuild instead of a list.remove per rescued doc
        outliers[:] = [d for d in outliers if d not in rescued] + evicted
        return True

    def _split_repair(
        self,
        backend: Engine,
        vectors: Mapping[str, SparseVector],
        assignment: Dict[str, int],
    ) -> bool:
        """Fill an empty slot by splitting a low-cohesion cluster.

        Per-document moves can merge clusters but never split one, so a
        degenerate early merge (e.g. the first batch holding fewer
        documents than K) persists forever under warm starts, wasting
        empty slots. When an empty slot exists, propose a 2-way split
        of each cluster (seeds: the member farthest from the
        representative and the member least similar to it; members
        assigned by higher similarity) and perform the best split whose
        ``G`` delta is positive. One split per iteration keeps the
        ascent gentle.
        """
        sizes = backend.sizes()
        empty = [cid for cid, size in enumerate(sizes) if size == 0]
        if not empty:
            return False
        contributions = backend.contributions()
        all_members = backend.members()
        best: Optional[Tuple[float, int, List[str]]] = None
        for cid, size in enumerate(sizes):
            if size < 2:
                continue
            members = all_members[cid]
            moved = self._propose_split(members, vectors)
            if not moved or len(moved) == len(members):
                continue
            moved_set = set(moved)
            keep = [m for m in members if m not in moved_set]
            delta = (
                self._scratch_contribution(keep, vectors)
                + self._scratch_contribution(moved, vectors)
                - contributions[cid]
            )
            if delta > 1e-18 and (best is None or delta > best[0]):
                best = (delta, cid, moved)
        if best is None:
            return False
        _, cid, moved = best
        target = empty[0]
        for doc_id in moved:
            backend.remove(cid, doc_id)
            backend.add(target, doc_id)
            assignment[doc_id] = target
        return True

    @staticmethod
    def _propose_split(
        members: List[str], vectors: Mapping[str, SparseVector]
    ) -> List[str]:
        """Members to move out: the half closer to the 'odd one out'.

        Seed A is the member least similar to the cluster
        representative; seed B the member least similar to A. Each
        member goes with the seed it is more similar to; the group
        holding seed A (the outsiders) is returned.
        """
        representative = SparseVector()
        for doc_id in members:
            representative.add_scaled(vectors[doc_id], 1.0)
        seed_a = min(
            members,
            key=lambda m: representative.dot(vectors[m])
            - vectors[m].dot(vectors[m]),
        )
        seed_b = min(
            members, key=lambda m: vectors[seed_a].dot(vectors[m])
        )
        if seed_a == seed_b:
            return []
        moved: List[str] = []
        for doc_id in members:
            sim_a = vectors[seed_a].dot(vectors[doc_id])
            sim_b = vectors[seed_b].dot(vectors[doc_id])
            if doc_id == seed_a or sim_a > sim_b:
                moved.append(doc_id)
        return moved

    @staticmethod
    def _scratch_contribution(
        member_ids: List[str], vectors: Mapping[str, SparseVector]
    ) -> float:
        """``|C|·avg_sim`` of a hypothetical cluster over ``member_ids``."""
        scratch = Cluster(-1)
        for doc_id in member_ids:
            scratch.add(doc_id, vectors[doc_id])
        return scratch.index_contribution()

    def _converged(self, g_old: float, g_new: float) -> bool:
        """Section 4.3 step 4: ``(G_new - G_old)/G_old < δ``."""
        if g_old <= 0.0:
            return g_new <= 0.0
        return (g_new - g_old) / g_old < self.delta
