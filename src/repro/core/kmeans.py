"""The paper's extended K-means (Section 4.3) with two engines.

Algorithm (paper Section 4.3):

* **Initial process** — pick K random documents as singleton clusters,
  compute representatives and the clustering index ``G`` (Eq. 17).
* **Repetition process** — for each document, compute the intra-cluster
  similarity it would produce in every cluster (Eq. 26, one sparse dot
  product per cluster) and assign it to the cluster whose
  *increase* is largest; documents that increase no cluster go to the
  **outlier list** and re-enter as normal documents next iteration.
  Terminate when ``(G_new - G_old)/G_old < δ``.

Engines
-------

``engine="sparse"``
    Reference implementation built on :class:`~repro.core.Cluster`
    (dict-backed sparse vectors). Mirrors the paper's formulas
    line-by-line; used by the correctness tests.

``engine="dense"``
    numpy implementation: representatives live in a K×V dense matrix so
    the per-document gain over *all* clusters is one fancy-indexed
    matrix-vector product. Produces the same clustering (up to
    float-summation-order ties); used by the experiment harness where
    the corpus has thousands of documents.

Both engines implement the same small backend interface consumed by the
shared iteration loop, so the algorithm logic exists exactly once.
"""

from __future__ import annotations

import random
import time as time_module
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    require_in_open_interval,
    require_positive_int,
)
from ..corpus.document import Document
from ..exceptions import ClusteringError, ConfigurationError
from ..forgetting.statistics import CorpusStatistics
from ..obs import SPAN, Event, Recorder, Span, resolve
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter
from .cluster import Cluster
from .result import ClusteringResult


class _SparseBackend:
    """Backend over :class:`Cluster` objects (reference implementation)."""

    def __init__(
        self, k: int, vectors: Dict[str, SparseVector], criterion: str
    ) -> None:
        self.clusters = [Cluster(i) for i in range(k)]
        self._vectors = vectors
        self._criterion = criterion

    def add(self, cluster_id: int, doc_id: str) -> None:
        self.clusters[cluster_id].add(doc_id, self._vectors[doc_id])

    def remove(self, cluster_id: int, doc_id: str) -> None:
        self.clusters[cluster_id].remove(doc_id)

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        """Return ``(cluster_id, gain)`` of the largest-gain cluster."""
        vector = self._vectors[doc_id]
        best_id, best_gain = -1, float("-inf")
        for cluster in self.clusters:
            if self._criterion == "g":
                gain = cluster.g_gain_if_added(vector)
            else:
                gain = cluster.gain_if_added(vector)
            if gain > best_gain:
                best_id, best_gain = cluster.cluster_id, gain
        return best_id, best_gain

    def sizes(self) -> List[int]:
        return [cluster.size for cluster in self.clusters]

    def refresh(self) -> None:
        for cluster in self.clusters:
            cluster.refresh()

    def clustering_index(self) -> float:
        return sum(cluster.index_contribution() for cluster in self.clusters)

    def members(self) -> List[List[str]]:
        return [cluster.member_ids() for cluster in self.clusters]

    def self_similarity(self, doc_id: str) -> float:
        vector = self._vectors[doc_id]
        return vector.dot(vector)


class _DenseBackend:
    """numpy backend: K×V representative matrix, vectorised gains."""

    def __init__(
        self, k: int, vectors: Dict[str, SparseVector], criterion: str
    ) -> None:
        self._criterion = criterion
        term_ids = sorted({t for v in vectors.values() for t in v.keys()})
        self._column: Dict[int, int] = {t: i for i, t in enumerate(term_ids)}
        n_terms = max(1, len(term_ids))
        self._doc_ids: Dict[str, np.ndarray] = {}
        self._doc_vals: Dict[str, np.ndarray] = {}
        self._doc_w2: Dict[str, float] = {}
        for doc_id, vector in vectors.items():
            items = sorted(vector.items())
            ids = np.fromiter(
                (self._column[t] for t, _ in items), dtype=np.int64,
                count=len(items),
            )
            vals = np.fromiter(
                (v for _, v in items), dtype=np.float64, count=len(items)
            )
            self._doc_ids[doc_id] = ids
            self._doc_vals[doc_id] = vals
            self._doc_w2[doc_id] = float(vals @ vals)
        self._rep = np.zeros((k, n_terms), dtype=np.float64)
        self._crpp = np.zeros(k, dtype=np.float64)
        self._ss = np.zeros(k, dtype=np.float64)
        self._sizes = np.zeros(k, dtype=np.int64)
        self._members: List[Dict[str, None]] = [{} for _ in range(k)]

    def add(self, cluster_id: int, doc_id: str) -> None:
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        w2 = self._doc_w2[doc_id]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += 2.0 * dot + w2
        self._ss[cluster_id] += w2
        self._rep[cluster_id, ids] += vals
        self._sizes[cluster_id] += 1
        self._members[cluster_id][doc_id] = None

    def remove(self, cluster_id: int, doc_id: str) -> None:
        del self._members[cluster_id][doc_id]
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        w2 = self._doc_w2[doc_id]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += -2.0 * dot + w2
        self._ss[cluster_id] -= w2
        self._rep[cluster_id, ids] -= vals
        self._sizes[cluster_id] -= 1
        if self._sizes[cluster_id] == 0:
            self._rep[cluster_id, :] = 0.0
            self._crpp[cluster_id] = 0.0
            self._ss[cluster_id] = 0.0

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        n = self._sizes
        cr_pq = self._rep[:, ids] @ vals
        if self._criterion == "g":
            pair_sum = (self._crpp - self._ss) / 2.0
            gains = np.where(
                n > 1,
                2.0 * (cr_pq * (n - 1) - pair_sum)
                / np.maximum(n * (n - 1), 1),
                np.where(n == 1, 2.0 * cr_pq, 0.0),
            )
        else:
            avg_new = np.where(
                n > 0,
                (self._crpp + 2.0 * cr_pq - self._ss)
                / np.maximum(n * (n + 1), 1),
                0.0,
            )
            avg_cur = np.where(
                n > 1,
                (self._crpp - self._ss) / np.maximum(n * (n - 1), 1),
                0.0,
            )
            gains = avg_new - avg_cur
        best = int(np.argmax(gains))
        return best, float(gains[best])

    def sizes(self) -> List[int]:
        return [int(s) for s in self._sizes]

    def refresh(self) -> None:
        self._crpp = np.einsum("ij,ij->i", self._rep, self._rep)

    def clustering_index(self) -> float:
        n = self._sizes
        contributions = np.where(
            n > 1,
            (self._crpp - self._ss) / np.maximum(n - 1, 1),
            0.0,
        )
        return float(contributions.sum())

    def members(self) -> List[List[str]]:
        return [list(members.keys()) for members in self._members]

    def self_similarity(self, doc_id: str) -> float:
        return self._doc_w2[doc_id]


_BACKENDS = {"sparse": _SparseBackend, "dense": _DenseBackend}


class NoveltyKMeans:
    """The paper's extended K-means over novelty-based similarity.

    Parameters
    ----------
    k:
        Number of clusters (paper uses 24 or 32).
    delta:
        Convergence threshold ``δ`` on the relative increase of the
        clustering index ``G`` (Section 4.3 step 4).
    max_iterations:
        Safety cap on repetition-process iterations.
    seed:
        Seed for the random initial seed-document selection.
    engine:
        ``"dense"`` (numpy, default) or ``"sparse"`` (reference).
    reseed_empty:
        When True (default), a cluster that lost all members is
        re-seeded with the strongest outlier at the end of the pass,
        keeping K live clusters as the paper assumes.
    criterion:
        Assignment gain criterion for step 1(b) of Section 4.3:

        * ``"g"`` (default) — greedy ascent on the clustering index
          ``G``: gain is the change of the cluster's ``|C_p|·avg_sim``
          term. Positive exactly when the document's mean similarity to
          the members exceeds *half* the current average. Consistent
          with the paper's convergence objective (step 4 monitors G)
          and with the cluster sizes its experiments report.
        * ``"avg"`` — the literal text of step 1(b): gain is the change
          of ``avg_sim`` itself. Rejects every document less similar
          than the current cluster average, which on homogeneous
          streams discards most documents as outliers; kept for the
          criterion-ablation benchmark.
    rescue_outliers:
        Library extension beyond the paper (default off) enabling two
        repair moves that per-document reassignment cannot express:

        * **outlier rescue** — under warm starts a newly emerging topic
          can starve: every cluster slot is held by an established
          topic, so the new topic's documents land in the outlier list
          forever (their gain against foreign clusters is never
          positive). After each pass a candidate cluster is grown
          greedily from the outlier list; if its ``G`` contribution
          exceeds the weakest live cluster's, the weakest cluster is
          evicted (its members re-enter as normal documents next
          iteration, mirroring the paper's outlier semantics) and the
          candidate takes the slot.
        * **split repair** — per-document moves can merge clusters but
          never split one, so a degenerate early merge (first batch
          smaller than K) persists forever, wasting empty slots. When
          an empty slot exists, the best positive-ΔG two-way split of
          an existing cluster fills it.

        Both moves are accepted only when they increase ``G``, so the
        greedy-ascent property is preserved. The on-line pipeline
        enables this by default; the batch experiments don't.
    recorder:
        Observability sink (:mod:`repro.obs`). Defaults to the ambient
        recorder (a no-op unless one was installed). When enabled,
        every fit emits vectorisation/per-pass spans, per-iteration
        ``G`` and outlier gauges, and reseed/rescue/split counters.
    """

    def __init__(
        self,
        k: int,
        delta: float = 0.01,
        max_iterations: int = 30,
        seed: Optional[int] = None,
        engine: str = "dense",
        reseed_empty: bool = True,
        criterion: str = "g",
        rescue_outliers: bool = False,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.k = require_positive_int("k", k)
        self.delta = require_in_open_interval("delta", delta, 0.0, 1.0)
        self.max_iterations = require_positive_int(
            "max_iterations", max_iterations
        )
        self.seed = seed
        if engine not in _BACKENDS:
            raise ConfigurationError(
                f"engine must be one of {sorted(_BACKENDS)}, got {engine!r}"
            )
        self.engine = engine
        self.reseed_empty = bool(reseed_empty)
        if criterion not in ("g", "avg"):
            raise ConfigurationError(
                f"criterion must be 'g' or 'avg', got {criterion!r}"
            )
        self.criterion = criterion
        self.rescue_outliers = bool(rescue_outliers)
        self.recorder = resolve(recorder)

    # -- public API ---------------------------------------------------------

    def fit(
        self,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
        initial_assignment: Optional[Dict[str, int]] = None,
    ) -> ClusteringResult:
        """Cluster ``documents`` against ``statistics``.

        ``initial_assignment`` (``doc_id -> cluster_id``) enables the
        warm start of Section 5.2: listed documents form the initial
        clusters and unlisted ones start unassigned. Without it, K
        random documents seed singleton clusters (Section 4.3).
        """
        start = time_module.perf_counter()
        docs = list(documents)
        if not docs:
            raise ClusteringError("cannot cluster an empty document set")
        if len(docs) < self.k and initial_assignment is None:
            raise ClusteringError(
                f"need at least k={self.k} documents for random "
                f"initialisation, got {len(docs)}"
            )
        recorder = self.recorder
        with Span(recorder, "kmeans.vectorise",
                  {"docs": len(docs)}) as vectorise_span:
            vectors = NoveltyTfidfWeighter(statistics).weighted_vectors(docs)

        backend = _BACKENDS[self.engine](self.k, vectors, self.criterion)
        assignment: Dict[str, int] = {}
        if initial_assignment is not None:
            self._warm_start(backend, docs, vectors, initial_assignment,
                             assignment)
        else:
            self._random_seeds(backend, docs, vectors, assignment)

        g_old = backend.clustering_index()
        history: List[float] = []
        outliers: List[str] = []
        converged = False
        iterations = 0

        for iterations in range(1, self.max_iterations + 1):
            with Span(recorder, "kmeans.pass",
                      {"iteration": iterations}):
                outliers = self._assignment_pass(backend, docs, vectors,
                                                 assignment)
                reseeded = 0
                if self.reseed_empty:
                    reseeded = self._reseed_empty_clusters(
                        backend, outliers, assignment
                    )
                rescued = split = False
                if self.rescue_outliers:
                    if outliers:
                        rescued = self._rescue_outliers(
                            backend, vectors, outliers, assignment
                        )
                    if not rescued:
                        split = self._split_repair(
                            backend, vectors, assignment
                        )
                backend.refresh()
                g_new = backend.clustering_index()
            history.append(g_new)
            if recorder.enabled:
                recorder.gauge("kmeans.g", g_new, iteration=iterations)
                recorder.gauge("kmeans.outliers", len(outliers),
                               iteration=iterations)
                if reseeded:
                    recorder.counter("kmeans.reseeds", reseeded)
                if rescued:
                    recorder.counter("kmeans.rescues")
                if split:
                    recorder.counter("kmeans.splits")
            repaired = rescued or split
            if not repaired and self._converged(g_old, g_new):
                converged = True
                break
            g_old = g_new

        elapsed = time_module.perf_counter() - start
        if recorder.enabled:
            recorder.emit(Event("kmeans.fit", SPAN, elapsed, {
                "engine": self.engine,
                "criterion": self.criterion,
                "docs": len(docs),
                "iterations": iterations,
                "converged": converged,
            }))
        return ClusteringResult(
            clusters=tuple(tuple(m) for m in backend.members()),
            outliers=tuple(outliers),
            clustering_index=history[-1] if history else g_old,
            index_history=tuple(history),
            iterations=iterations,
            converged=converged,
            timings={"clustering": elapsed,
                     "vectorisation": vectorise_span.duration},
        )

    # -- phases ------------------------------------------------------------

    def _random_seeds(
        self,
        backend,
        docs: Sequence[Document],
        vectors: Dict[str, SparseVector],
        assignment: Dict[str, int],
    ) -> None:
        """Initial process step 1: K random singleton clusters."""
        rng = random.Random(self.seed)
        candidates = [d.doc_id for d in docs if len(vectors[d.doc_id])]
        if not candidates:
            raise ClusteringError(
                "no document has a non-zero vector; nothing to cluster"
            )
        seeds = rng.sample(candidates, min(self.k, len(candidates)))
        for cluster_id, doc_id in enumerate(seeds):
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id

    def _warm_start(
        self,
        backend,
        docs: Sequence[Document],
        vectors: Dict[str, SparseVector],
        initial_assignment: Dict[str, int],
        assignment: Dict[str, int],
    ) -> None:
        """Section 5.2 step 3: previous clusters as initial clusters."""
        known = {doc.doc_id for doc in docs}
        for doc_id, cluster_id in initial_assignment.items():
            if doc_id not in known:
                continue
            if not 0 <= cluster_id < self.k:
                raise ConfigurationError(
                    f"initial assignment of {doc_id!r} to cluster "
                    f"{cluster_id} outside [0, {self.k})"
                )
            if not len(vectors[doc_id]):
                continue
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id

    def _assignment_pass(
        self,
        backend,
        docs: Sequence[Document],
        vectors: Dict[str, SparseVector],
        assignment: Dict[str, int],
    ) -> List[str]:
        """Repetition-process step 1 over all documents; returns outliers."""
        outliers: List[str] = []
        for doc in docs:
            doc_id = doc.doc_id
            current = assignment.pop(doc_id, None)
            if current is not None:
                backend.remove(current, doc_id)
            if not len(vectors[doc_id]):
                outliers.append(doc_id)
                continue
            best_cluster, best_gain = backend.best_gain(doc_id)
            if best_gain > 0.0:
                backend.add(best_cluster, doc_id)
                assignment[doc_id] = best_cluster
            else:
                outliers.append(doc_id)
        return outliers

    def _reseed_empty_clusters(
        self,
        backend,
        outliers: List[str],
        assignment: Dict[str, int],
    ) -> int:
        """Seed emptied clusters with the strongest remaining outliers.

        Returns the number of clusters re-seeded.
        """
        empty = [cid for cid, size in enumerate(backend.sizes()) if size == 0]
        if not empty or not outliers:
            return 0
        ranked = sorted(
            outliers,
            key=lambda doc_id: backend.self_similarity(doc_id),
            reverse=True,
        )
        seeded = set()
        next_rank = 0
        for cluster_id in empty:
            if next_rank >= len(ranked):
                break
            doc_id = ranked[next_rank]
            next_rank += 1
            if backend.self_similarity(doc_id) <= 0.0:
                break
            backend.add(cluster_id, doc_id)
            assignment[doc_id] = cluster_id
            seeded.add(doc_id)
        if seeded:
            outliers[:] = [d for d in outliers if d not in seeded]
        return len(seeded)

    def _rescue_outliers(
        self,
        backend,
        vectors: Dict[str, SparseVector],
        outliers: List[str],
        assignment: Dict[str, int],
    ) -> bool:
        """Swap the weakest cluster for a cluster grown from outliers.

        Builds a scratch candidate greedily (strongest outlier as seed,
        then every outlier with positive ΔG gain), and performs the swap
        only when the candidate's ``G`` contribution beats the weakest
        live cluster's. Returns True when a swap happened.
        """
        candidate = Cluster(-1)
        ranked = sorted(
            (doc_id for doc_id in outliers
             if backend.self_similarity(doc_id) > 0.0),
            key=lambda doc_id: backend.self_similarity(doc_id),
            reverse=True,
        )
        if len(ranked) < 2:
            return False
        for doc_id in ranked:
            if candidate.is_empty:
                candidate.add(doc_id, vectors[doc_id])
            elif candidate.g_gain_if_added(vectors[doc_id]) > 0.0:
                candidate.add(doc_id, vectors[doc_id])
        if candidate.size < 2:
            return False

        sizes = backend.sizes()
        contributions = self._contributions(backend)
        live = [cid for cid, size in enumerate(sizes) if size > 0]
        if not live:
            return False
        weakest = min(live, key=lambda cid: contributions[cid])
        if candidate.index_contribution() <= contributions[weakest]:
            return False

        evicted = list(backend.members()[weakest])
        for doc_id in evicted:
            backend.remove(weakest, doc_id)
            del assignment[doc_id]
        rescued = set(candidate.member_ids())
        for doc_id in candidate.member_ids():
            backend.add(weakest, doc_id)
            assignment[doc_id] = weakest
        # one linear rebuild instead of a list.remove per rescued doc
        outliers[:] = [d for d in outliers if d not in rescued] + evicted
        return True

    def _split_repair(
        self,
        backend,
        vectors: Dict[str, SparseVector],
        assignment: Dict[str, int],
    ) -> bool:
        """Fill an empty slot by splitting a low-cohesion cluster.

        Per-document moves can merge clusters but never split one, so a
        degenerate early merge (e.g. the first batch holding fewer
        documents than K) persists forever under warm starts, wasting
        empty slots. When an empty slot exists, propose a 2-way split
        of each cluster (seeds: the member farthest from the
        representative and the member least similar to it; members
        assigned by higher similarity) and perform the best split whose
        ``G`` delta is positive. One split per iteration keeps the
        ascent gentle.
        """
        sizes = backend.sizes()
        empty = [cid for cid, size in enumerate(sizes) if size == 0]
        if not empty:
            return False
        contributions = self._contributions(backend)
        all_members = backend.members()
        best: Optional[Tuple[float, int, List[str]]] = None
        for cid, size in enumerate(sizes):
            if size < 2:
                continue
            members = all_members[cid]
            moved = self._propose_split(members, vectors)
            if not moved or len(moved) == len(members):
                continue
            moved_set = set(moved)
            keep = [m for m in members if m not in moved_set]
            delta = (
                self._scratch_contribution(keep, vectors)
                + self._scratch_contribution(moved, vectors)
                - contributions[cid]
            )
            if delta > 1e-18 and (best is None or delta > best[0]):
                best = (delta, cid, moved)
        if best is None:
            return False
        _, cid, moved = best
        target = empty[0]
        for doc_id in moved:
            backend.remove(cid, doc_id)
            backend.add(target, doc_id)
            assignment[doc_id] = target
        return True

    @staticmethod
    def _propose_split(
        members: List[str], vectors: Dict[str, SparseVector]
    ) -> List[str]:
        """Members to move out: the half closer to the 'odd one out'.

        Seed A is the member least similar to the cluster
        representative; seed B the member least similar to A. Each
        member goes with the seed it is more similar to; the group
        holding seed A (the outsiders) is returned.
        """
        representative = SparseVector()
        for doc_id in members:
            representative.add_scaled(vectors[doc_id], 1.0)
        seed_a = min(
            members,
            key=lambda m: representative.dot(vectors[m])
            - vectors[m].dot(vectors[m]),
        )
        seed_b = min(
            members, key=lambda m: vectors[seed_a].dot(vectors[m])
        )
        if seed_a == seed_b:
            return []
        moved = []
        for doc_id in members:
            sim_a = vectors[seed_a].dot(vectors[doc_id])
            sim_b = vectors[seed_b].dot(vectors[doc_id])
            if doc_id == seed_a or sim_a > sim_b:
                moved.append(doc_id)
        return moved

    @staticmethod
    def _scratch_contribution(
        member_ids: List[str], vectors: Dict[str, SparseVector]
    ) -> float:
        """``|C|·avg_sim`` of a hypothetical cluster over ``member_ids``."""
        scratch = Cluster(-1)
        for doc_id in member_ids:
            scratch.add(doc_id, vectors[doc_id])
        return scratch.index_contribution()

    @staticmethod
    def _contributions(backend) -> List[float]:
        """Per-cluster ``|C_p|·avg_sim(C_p)`` terms of G."""
        if isinstance(backend, _SparseBackend):
            return [c.index_contribution() for c in backend.clusters]
        sizes = backend.sizes()
        contributions = []
        for cid, size in enumerate(sizes):
            if size < 2:
                contributions.append(0.0)
                continue
            contributions.append(
                (backend._crpp[cid] - backend._ss[cid]) / (size - 1)
            )
        return contributions

    def _converged(self, g_old: float, g_new: float) -> bool:
        """Section 4.3 step 4: ``(G_new - G_old)/G_old < δ``."""
        if g_old <= 0.0:
            return g_new <= 0.0
        return (g_new - g_old) / g_old < self.delta
