"""Topic threads: linking clusters across successive clusterings.

The paper produces an independent clustering per time window; a user
watching the stream also wants to know *which cluster is the same story
as last week's*. :class:`TopicTracker` links clusters of consecutive
snapshots into **threads** by cosine similarity of their (normalised)
representative vectors — the TDT "topic tracking" task built on the
paper's own cluster representatives (Eq. 19-20).

Matching is greedy on descending similarity with a threshold; clusters
that match no existing thread found a new one, and threads unmatched
for ``patience`` consecutive updates are retired. Cluster ids are *not*
trusted across snapshots (warm starts mostly preserve them, but rescue
swaps and re-seeding reuse slots), so matching is purely content-based.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import (
    require_non_negative_int,
    require_probability,
)
from ..corpus.document import Document
from ..forgetting.statistics import CorpusStatistics
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter
from .result import ClusteringResult


@dataclass(frozen=True)
class ThreadEvent:
    """One observation of a thread: which cluster carried it and when."""

    at_time: float
    cluster_id: int
    size: int
    similarity: float  # to the thread's previous representative (1.0 at birth)


@dataclass
class TopicThread:
    """A story line followed across snapshots."""

    thread_id: int
    born_at: float
    events: List[ThreadEvent] = field(default_factory=list)
    representative: SparseVector = field(default_factory=SparseVector)
    misses: int = 0
    retired: bool = False

    @property
    def last_seen(self) -> float:
        return self.events[-1].at_time if self.events else self.born_at

    @property
    def current_cluster(self) -> Optional[int]:
        """Cluster id at the latest snapshot; None once retired/missed."""
        if self.retired or self.misses > 0 or not self.events:
            return None
        return self.events[-1].cluster_id

    @property
    def span(self) -> float:
        return self.last_seen - self.born_at

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class TrackingSnapshot:
    """Outcome of one tracker update."""

    at_time: float
    continued: Tuple[int, ...]   # thread ids matched this snapshot
    born: Tuple[int, ...]        # thread ids created this snapshot
    retired: Tuple[int, ...]     # thread ids retired this snapshot
    cluster_to_thread: Dict[int, int] = field(default_factory=dict)


class TopicTracker:
    """Track cluster identity across successive clustering snapshots.

    Parameters
    ----------
    threshold:
        Minimum cosine between a cluster's representative and a live
        thread's last representative to count as the same story.
    patience:
        Number of consecutive snapshots a thread may go unmatched
        before it is retired (0 = retire immediately).
    """

    def __init__(self, threshold: float = 0.3, patience: int = 1) -> None:
        self.threshold = require_probability("threshold", threshold)
        self.patience = require_non_negative_int("patience", patience)
        self.threads: Dict[int, TopicThread] = {}
        self._next_id = 0
        self._last_time: Optional[float] = None

    # -- queries ---------------------------------------------------------

    def active_threads(self) -> List[TopicThread]:
        """Threads not retired, most recently seen first."""
        return sorted(
            (t for t in self.threads.values() if not t.retired),
            key=lambda t: t.last_seen,
            reverse=True,
        )

    def thread_of_cluster(self, cluster_id: int) -> Optional[TopicThread]:
        """The live thread currently carried by ``cluster_id``."""
        for thread in self.threads.values():
            if not thread.retired and thread.current_cluster == cluster_id:
                return thread
        return None

    def prune_retired(self, keep_latest: int = 0) -> int:
        """Drop retired threads, keeping the ``keep_latest`` most
        recently seen. Long-running monitors call this periodically;
        the tracker otherwise keeps every thread ever created as the
        historical record. Returns the number removed."""
        retired = sorted(
            (t for t in self.threads.values() if t.retired),
            key=lambda t: t.last_seen,
            reverse=True,
        )
        to_drop = retired[keep_latest:] if keep_latest > 0 else retired
        for thread in to_drop:
            del self.threads[thread.thread_id]
        return len(to_drop)

    # -- updates -----------------------------------------------------------

    def update(
        self,
        result: ClusteringResult,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
        at_time: float,
    ) -> TrackingSnapshot:
        """Ingest one clustering snapshot and link it to the threads.

        ``documents`` must cover the clustered documents (extras are
        fine); representatives are built against ``statistics``.
        """
        if self._last_time is not None and at_time <= self._last_time:
            raise ValueError(
                f"snapshots must advance in time: {at_time} after "
                f"{self._last_time}"
            )
        self._last_time = at_time

        representatives = self._representatives(
            result, documents, statistics
        )
        candidates = self._ranked_candidates(representatives)

        matched_threads: Dict[int, Tuple[int, float]] = {}
        matched_clusters: Dict[int, int] = {}
        for similarity, thread_id, cluster_id in candidates:
            if similarity < self.threshold:
                break
            if thread_id in matched_threads or cluster_id in matched_clusters:
                continue
            matched_threads[thread_id] = (cluster_id, similarity)
            matched_clusters[cluster_id] = thread_id

        born: List[int] = []
        for cluster_id, representative in representatives.items():
            if cluster_id in matched_clusters:
                continue
            thread = TopicThread(
                thread_id=self._next_id, born_at=at_time
            )
            self._next_id += 1
            self.threads[thread.thread_id] = thread
            matched_threads[thread.thread_id] = (cluster_id, 1.0)
            matched_clusters[cluster_id] = thread.thread_id
            born.append(thread.thread_id)

        sizes = {
            cluster_id: len(members)
            for cluster_id, members in enumerate(result.clusters)
        }
        continued: List[int] = []
        retired: List[int] = []
        for thread_id, thread in self.threads.items():
            if thread.retired:
                continue
            if thread_id in matched_threads:
                cluster_id, similarity = matched_threads[thread_id]
                thread.events.append(ThreadEvent(
                    at_time=at_time,
                    cluster_id=cluster_id,
                    size=sizes.get(cluster_id, 0),
                    similarity=similarity,
                ))
                thread.representative = representatives[cluster_id]
                thread.misses = 0
                if thread_id not in born:
                    continued.append(thread_id)
            else:
                thread.misses += 1
                if thread.misses > self.patience:
                    thread.retired = True
                    retired.append(thread_id)

        return TrackingSnapshot(
            at_time=at_time,
            continued=tuple(continued),
            born=tuple(born),
            retired=tuple(retired),
            cluster_to_thread=dict(matched_clusters),
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _representatives(
        result: ClusteringResult,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
    ) -> Dict[int, SparseVector]:
        """Normalised representative per non-empty cluster."""
        by_id = {doc.doc_id: doc for doc in documents}
        weighter = NoveltyTfidfWeighter(statistics)
        representatives: Dict[int, SparseVector] = {}
        for cluster_id, member_ids in result.non_empty_clusters():
            members = [by_id[m] for m in member_ids if m in by_id]
            representative = weighter.representative(members,
                                                     normalized=True)
            if representative:
                representatives[cluster_id] = representative
        return representatives

    def _ranked_candidates(
        self, representatives: Dict[int, SparseVector]
    ) -> List[Tuple[float, int, int]]:
        """(similarity, thread_id, cluster_id) sorted descending."""
        candidates: List[Tuple[float, int, int]] = []
        for thread_id, thread in self.threads.items():
            if thread.retired or not thread.representative:
                continue
            for cluster_id, representative in representatives.items():
                similarity = thread.representative.dot(representative)
                candidates.append((similarity, thread_id, cluster_id))
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        return candidates
