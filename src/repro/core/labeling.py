"""Human-readable cluster labels.

The paper presents clustering results as "recent topics", which needs a
label per cluster. Two scorers are provided:

* :func:`representative_terms` — the top components of the cluster
  representative ``c⃗_p`` (Eq. 19-20). Since ``c⃗_p`` sums
  ``Pr(d)·tf·idf/len`` over members, its largest coordinates are the
  terms that are frequent *in the cluster's recent documents* and rare
  in the corpus — a novelty-weighted label, for free.
* :func:`discriminative_terms` — frequency²/corpus-frequency scoring
  with no statistics dependency; useful for labelling baseline results
  that have no forgetting model.

:func:`label_clustering` applies either to a whole
:class:`~repro.core.ClusteringResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..corpus.document import Document
from ..forgetting.statistics import CorpusStatistics
from ..text.vocabulary import Vocabulary
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter
from .result import ClusteringResult


@dataclass(frozen=True)
class ClusterLabel:
    """Label of one cluster: ranked terms with their scores."""

    cluster_id: int
    size: int
    terms: Tuple[str, ...]
    scores: Tuple[float, ...]

    def __str__(self) -> str:
        return ", ".join(self.terms)


def representative_terms(
    members: Sequence[Document],
    statistics: CorpusStatistics,
    vocabulary: Vocabulary,
    limit: int = 5,
) -> List[Tuple[str, float]]:
    """Top-``limit`` components of the cluster representative (Eq. 20).

    Returns ``(term, weight)`` pairs sorted by descending weight.
    """
    require_positive_int("limit", limit)
    weighter = NoveltyTfidfWeighter(statistics)
    representative = weighter.representative(members)
    ranked = sorted(
        representative.items(), key=lambda item: item[1], reverse=True
    )
    return [
        (vocabulary.term(term_id), weight)
        for term_id, weight in ranked[:limit]
    ]


def discriminative_terms(
    members: Sequence[Document],
    corpus_counts: Mapping[int, int],
    vocabulary: Vocabulary,
    limit: int = 5,
) -> List[Tuple[str, float]]:
    """Top-``limit`` terms by ``count² / (1 + corpus count)``.

    ``corpus_counts`` maps term id to its total frequency in the whole
    corpus (see :func:`corpus_term_counts`); the ratio suppresses
    background words while still favouring frequent cluster terms.
    """
    require_positive_int("limit", limit)
    totals: Dict[int, int] = {}
    for doc in members:
        for term_id, count in doc.term_counts.items():
            totals[term_id] = totals.get(term_id, 0) + count
    scored = [
        (term_id, count * count / (1.0 + corpus_counts.get(term_id, 0)))
        for term_id, count in totals.items()
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    return [
        (vocabulary.term(term_id), score)
        for term_id, score in scored[:limit]
    ]


def corpus_term_counts(documents: Sequence[Document]) -> Dict[int, int]:
    """Total term frequencies over ``documents`` (for the
    discriminative scorer)."""
    counts: Dict[int, int] = {}
    for doc in documents:
        for term_id, count in doc.term_counts.items():
            counts[term_id] = counts.get(term_id, 0) + count
    return counts


def medoid_document(
    members: Sequence[Document],
    statistics: CorpusStatistics,
) -> Optional[Document]:
    """The cluster's most central document (max mean similarity).

    A one-document extractive summary: the story whose novelty-weighted
    similarity to the rest of the cluster is highest. ``None`` for
    empty input; the single member for singletons.
    """
    if not members:
        return None
    if len(members) == 1:
        return members[0]
    weighter = NoveltyTfidfWeighter(statistics)
    vectors = [weighter.weighted_vector(doc) for doc in members]
    representative = SparseVector()
    for vector in vectors:
        representative.add_scaled(vector, 1.0)
    best_doc = None
    best_score = float("-inf")
    for doc, vector in zip(members, vectors):
        # Σ_j sim(d, d_j) for j != d  ==  c⃗·w⃗ - w⃗·w⃗
        score = representative.dot(vector) - vector.dot(vector)
        if score > best_score:
            best_score = score
            best_doc = doc
    return best_doc


def label_clustering(
    result: ClusteringResult,
    documents: Sequence[Document],
    vocabulary: Vocabulary,
    statistics: Optional[CorpusStatistics] = None,
    limit: int = 5,
) -> List[ClusterLabel]:
    """Label every non-empty cluster of ``result``.

    Uses :func:`representative_terms` when ``statistics`` is given
    (novelty-weighted labels), otherwise :func:`discriminative_terms`.
    Documents listed in ``result`` but missing from ``documents`` are
    skipped (e.g. expired between clustering and labelling).
    """
    by_id = {doc.doc_id: doc for doc in documents}
    corpus_counts = (
        corpus_term_counts(documents) if statistics is None else None
    )
    labels: List[ClusterLabel] = []
    for cluster_id, member_ids in result.non_empty_clusters():
        members = [by_id[m] for m in member_ids if m in by_id]
        if not members:
            continue
        if statistics is not None:
            ranked = representative_terms(
                members, statistics, vocabulary, limit
            )
        else:
            ranked = discriminative_terms(
                members, corpus_counts, vocabulary, limit
            )
        labels.append(
            ClusterLabel(
                cluster_id=cluster_id,
                size=len(members),
                terms=tuple(term for term, _ in ranked),
                scores=tuple(score for _, score in ranked),
            )
        )
    return labels
