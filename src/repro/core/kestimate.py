"""Estimating the number of clusters K (the paper's future work).

Section 7: "Future work also includes a method to estimate the
appropriate K value." This module provides that method for the paper's
objective: the clustering index ``G`` (Eq. 17) saturates once K reaches
the number of coherent topics — splitting a topic-pure cluster leaves
its contribution roughly unchanged, while merging distinct topics
depresses it. :func:`estimate_k` sweeps candidate K values and picks
the knee of the G(K) curve: the last candidate *before* the curve goes
flat — i.e. the K whose successor improves G by less than
``saturation`` relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import require_in_open_interval
from ..corpus.document import Document
from ..exceptions import ClusteringError, ConfigurationError
from ..forgetting.statistics import CorpusStatistics
from .kmeans import NoveltyKMeans


@dataclass(frozen=True)
class KEstimate:
    """Outcome of a K sweep.

    ``curve`` maps each candidate K to its converged clustering index;
    ``best_k`` is the knee; ``saturated`` is False when even the largest
    candidate still improved G markedly (the sweep should be widened).
    """

    best_k: int
    curve: Dict[int, float]
    saturated: bool

    def gains(self) -> List[Tuple[int, float]]:
        """Relative G gain of each candidate over its predecessor."""
        ks = sorted(self.curve)
        result: List[Tuple[int, float]] = []
        for previous, current in zip(ks, ks[1:]):
            g_prev = self.curve[previous]
            g_cur = self.curve[current]
            gain = (g_cur - g_prev) / g_prev if g_prev > 0 else float("inf")
            result.append((current, gain))
        return result


def estimate_k(
    documents: Sequence[Document],
    statistics: CorpusStatistics,
    candidates: Sequence[int] = (4, 8, 12, 16, 24, 32, 48),
    saturation: float = 0.05,
    seed: Optional[int] = 0,
    delta: float = 0.01,
    max_iterations: int = 30,
    engine: str = "dense",
) -> KEstimate:
    """Pick K by the knee of the clustering-index curve.

    Parameters
    ----------
    candidates:
        Strictly increasing K values to try; each must be feasible
        (<= number of documents).
    saturation:
        Relative G-gain threshold below which the curve is considered
        flat (0.05 = "under 5% improvement per step").

    >>> estimate = estimate_k(docs, stats, candidates=(4, 8, 16))  # doctest: +SKIP
    >>> estimate.best_k  # doctest: +SKIP
    8
    """
    ks = list(candidates)
    if len(ks) < 2:
        raise ConfigurationError(
            "need at least two candidate K values to compare"
        )
    if ks != sorted(set(ks)):
        raise ConfigurationError(
            f"candidates must be strictly increasing, got {candidates!r}"
        )
    require_in_open_interval("saturation", saturation, 0.0, 1.0)
    n_docs = len(documents)
    if ks[-1] > n_docs:
        raise ClusteringError(
            f"largest candidate K ({ks[-1]}) exceeds the document "
            f"count ({n_docs})"
        )

    curve: Dict[int, float] = {}
    for k in ks:
        kmeans = NoveltyKMeans(
            k=k, delta=delta, max_iterations=max_iterations,
            seed=seed, engine=engine,
        )
        result = kmeans.fit(documents, statistics)
        curve[k] = result.clustering_index

    best_k = ks[-1]
    saturated = False
    for previous, current in zip(ks, ks[1:]):
        g_prev, g_cur = curve[previous], curve[current]
        if g_prev <= 0:
            continue
        if (g_cur - g_prev) / g_prev < saturation:
            best_k = previous
            saturated = True
            break
    return KEstimate(best_k=best_k, curve=curve, saturated=saturated)
