"""repro.core.engines — pluggable backends for the extended K-means.

The clustering *algorithm* (Section 4.3's initial/repetition process,
outlier handling, convergence on ``G``) lives once, in
:class:`~repro.core.NoveltyKMeans`. The *numerics* — cluster
representatives, the Eq. 21-26 incremental accounting, and the
assignment-sweep gain queries — live behind the :class:`Engine`
protocol, selected by name through a registry:

============  ==========================================================
``"sparse"``  Reference implementation over :class:`~repro.core.Cluster`
              dict-backed vectors; mirrors the paper line-by-line.
``"dense"``   numpy K×V representative matrix; per-document gains as one
              fancy-indexed matrix-vector product. The default.
``"matrix"``  CSR document matrix + blockwise sweep matmuls; answers an
              entire assignment pass with matrix products (requires
              scipy). The fastest on stream-scale corpora.
``"pruned"``  Inverted term→cluster index with exact upper-bound
              candidate pruning over column-major representatives;
              skips every cluster that provably cannot win a document
              before its dot product is taken. Assignment-identical to
              the exact path; the fastest at large K × large
              vocabulary (numpy only).
============  ==========================================================

Register your own with :func:`register_engine`::

    from repro.core.engines import Engine, register_engine

    def build_my_engine(k, vectors, criterion):
        return MyEngine(k, vectors, criterion)

    register_engine("mine", build_my_engine)
    NoveltyKMeans(k=8, engine="mine")
"""

from .base import NO_GAIN, Engine, EngineBase, affine_gain_coefficients
from .dense import DenseEngine
from .matrix import MatrixEngine
from .pruned import PrunedEngine
from .registry import (
    EngineFactory,
    available_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from .sparse import SparseEngine

register_engine("sparse", SparseEngine)
register_engine("dense", DenseEngine)
register_engine("matrix", MatrixEngine)
register_engine("pruned", PrunedEngine)

__all__ = [
    "NO_GAIN",
    "Engine",
    "EngineBase",
    "EngineFactory",
    "SparseEngine",
    "DenseEngine",
    "MatrixEngine",
    "PrunedEngine",
    "affine_gain_coefficients",
    "register_engine",
    "unregister_engine",
    "available_engines",
    "resolve_engine",
]
