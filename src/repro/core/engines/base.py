"""The :class:`Engine` protocol and the shared :class:`EngineBase` helper.

An *engine* is the numerical backend of the extended K-means
(:class:`~repro.core.NoveltyKMeans`): it owns the per-cluster state of
Section 4.4's efficient calculation —

* the cluster representative ``c⃗_p = Σ_{d∈C_p} w⃗_d`` (Eq. 19-20),
* ``cr_sim(C_p, C_p) = c⃗_p · c⃗_p`` (Eq. 21-22), maintained
  incrementally on every append/delete,
* ``ss(C_p) = Σ_{d∈C_p} sim(d, d)`` (Eq. 23),

from which the intra-cluster average similarity (Eq. 24) and the
*what-if-appended* gain (Eq. 25-26, one dot product against the
representative) follow in O(1) per cluster. The clustering loop itself
lives exactly once in :class:`~repro.core.NoveltyKMeans`; engines only
answer state queries and apply membership mutations, so a new engine
(GPU, distributed, approximate) plugs in without touching the
algorithm.

Engines are constructed per ``fit`` call with the signature
``factory(k, vectors, criterion)`` where ``vectors`` maps ``doc_id`` to
the weighted document vector ``w⃗_d = (Pr(d)/len_d)·d⃗`` (Eq. 12-16) and
``criterion`` is ``"g"`` or ``"avg"`` (see
:class:`~repro.core.NoveltyKMeans`). Register a factory under a name
with :func:`~repro.core.engines.register_engine` to make it selectable
via ``NoveltyKMeans(engine=...)``, the pipeline clusterers, and the
``repro cluster --engine`` command line.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ...vectors.sparse import SparseVector

#: Gain reported for a document whose vector is empty: it is similar to
#: nothing (including itself), so no cluster can ever gain from it.
NO_GAIN = float("-inf")


def affine_gain_coefficients(
    criterion: str, size: int, crpp: float, ss: float
) -> Tuple[float, float]:
    """Coefficients ``(a, b)`` of the affine gain form (Eq. 25-26).

    The what-if-appended gain of any document ``d_q`` against a cluster
    ``C_p`` is affine in the one quantity that depends on the document,
    ``cr = cr_sim(C_p, d_q) = c⃗_p · w⃗_q``::

        gain(C_p, d_q) = a_p * cr + b_p

    with, for criterion ``"g"`` (Δ of the ``|C_p|·avg_sim`` term of
    Eq. 17, ``n = |C_p|``)::

        a = 2/n                  b = -(crpp - ss) / (n(n-1))

    and for criterion ``"avg"`` (Δ of ``avg_sim`` itself, Eq. 24)::

        a = 2/(n(n+1))           b = (crpp-ss)/(n(n+1)) - avg_cur

    where ``crpp = cr_sim(C_p, C_p)`` (Eq. 21-22) and ``ss = ss(C_p)``
    (Eq. 23), with the ``n ∈ {0, 1}`` degeneracies of Eq. 24 folded in
    (an empty cluster gains nothing: ``a = b = 0``). Because weighted
    vectors are non-negative, ``a >= 0`` always — the gain is
    non-decreasing in ``cr``, which is what makes upper bounds on
    ``cr`` usable as exact pruning bounds (see
    :mod:`repro.core.engines.pruned`).
    """
    if size <= 0:
        return 0.0, 0.0
    if criterion == "g":
        if size == 1:
            return 2.0, 0.0
        return (
            2.0 / size,
            -(crpp - ss) / (size * (size - 1)),
        )
    diff = crpp - ss
    denominator = size * (size + 1)
    avg_cur = diff / (size * (size - 1)) if size > 1 else 0.0
    return 2.0 / denominator, diff / denominator - avg_cur


@runtime_checkable
class Engine(Protocol):
    """The state backend consumed by the extended K-means loop.

    All mutating calls keep Eq. 21-23's incremental bookkeeping exact:
    ``add``/``remove`` are O(nnz of the document vector), and the gain
    queries are O(K) plus one representative dot product (Eq. 26).
    """

    def add(self, cluster_id: int, doc_id: str) -> None:
        """Append ``doc_id`` to cluster ``cluster_id`` (Eq. 19-23 update)."""

    def remove(self, cluster_id: int, doc_id: str) -> None:
        """Delete ``doc_id`` from cluster ``cluster_id`` (Eq. 19-23 update)."""

    def cluster_of(self, doc_id: str) -> Optional[int]:
        """Cluster currently holding ``doc_id`` (None when unassigned)."""

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        """``(cluster_id, gain)`` of the largest-gain cluster (Eq. 25-26)."""

    def best_gains(
        self, doc_ids: Sequence[str]
    ) -> List[Tuple[int, float]]:
        """Run one batched assignment sweep (Section 4.3 step 1).

        Equivalent to, for each ``doc_id`` in order: remove it from its
        current cluster (if any), compute :meth:`best_gain`, and append
        it to the winning cluster when the gain is positive. Returns
        the ``(cluster_id, gain)`` decision per document
        (``(-1, -inf)`` for empty-vector documents). Batching the
        whole sweep lets vectorised engines answer it with matrix
        products instead of per-document dot products.
        """

    def sizes(self) -> List[int]:
        """``|C_p|`` per cluster."""

    def refresh(self) -> None:
        """Recompute Eq. 21 from the representative, clearing float drift."""

    def clustering_index(self) -> float:
        """The clustering index ``G`` (Eq. 17) over all clusters."""

    def contributions(self) -> List[float]:
        """Per-cluster ``|C_p|·avg_sim(C_p)`` terms of ``G`` (Eq. 17, 24)."""

    def members(self) -> List[List[str]]:
        """Member doc ids per cluster, in insertion order."""

    def self_similarity(self, doc_id: str) -> float:
        """``sim(d, d) = w⃗_d · w⃗_d`` (the Eq. 23 summand)."""


class EngineBase:
    """Shared plumbing for engines: membership map + default batch sweep.

    Subclasses implement the per-cluster accounting via ``_add`` /
    ``_remove`` and the single-document gain query ``best_gain``; this
    base keeps the ``doc_id -> cluster_id`` map consistent and derives
    :meth:`best_gains` from them with exactly the semantics the
    sequential reference loop had. Vectorised engines override
    :meth:`best_gains` wholesale.
    """

    def __init__(self, k: int, vectors: Mapping[str, SparseVector]) -> None:
        self.k = int(k)
        self._assigned: Dict[str, int] = {}
        # a CSR batch (WeightedVectorArrays) answers emptiness for the
        # whole batch from its row pointers; asking row by row would
        # materialise every SparseVector it exists to avoid
        empties = getattr(vectors, "empty_doc_ids", None)
        if callable(empties):
            self._empty_docs = set(empties())
        else:
            self._empty_docs = {
                doc_id for doc_id, vector in vectors.items()
                if not len(vector)
            }

    # -- membership -----------------------------------------------------

    def add(self, cluster_id: int, doc_id: str) -> None:
        self._add(cluster_id, doc_id)
        self._assigned[doc_id] = cluster_id

    def remove(self, cluster_id: int, doc_id: str) -> None:
        self._remove(cluster_id, doc_id)
        self._assigned.pop(doc_id, None)

    def cluster_of(self, doc_id: str) -> Optional[int]:
        return self._assigned.get(doc_id)

    # -- batched sweep ---------------------------------------------------

    def best_gains(
        self, doc_ids: Sequence[str]
    ) -> List[Tuple[int, float]]:
        decisions: List[Tuple[int, float]] = []
        for doc_id in doc_ids:
            current = self.cluster_of(doc_id)
            if current is not None:
                self.remove(current, doc_id)
            if doc_id in self._empty_docs:
                decisions.append((-1, NO_GAIN))
                continue
            cluster_id, gain = self.best_gain(doc_id)
            if gain > 0.0:
                self.add(cluster_id, doc_id)
            decisions.append((cluster_id, gain))
        return decisions

    # -- hooks ----------------------------------------------------------

    def _add(self, cluster_id: int, doc_id: str) -> None:
        raise NotImplementedError

    def _remove(self, cluster_id: int, doc_id: str) -> None:
        raise NotImplementedError

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        raise NotImplementedError
