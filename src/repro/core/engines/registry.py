"""Engine registry: name -> factory, with a clear failure mode.

The registry is what makes the engine layer *pluggable*: anything
callable as ``factory(k, vectors, criterion)`` and returning an
:class:`~repro.core.engines.Engine` can be registered under a name and
then selected by string everywhere an ``engine=`` parameter exists
(:class:`~repro.core.NoveltyKMeans`, both pipeline clusterers,
checkpoints, and ``repro cluster --engine``).

>>> from repro.core.engines import register_engine, available_engines
>>> def my_engine(k, vectors, criterion):  # doctest: +SKIP
...     return MyEngine(k, vectors, criterion)
>>> register_engine("mine", my_engine)     # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from ...exceptions import ConfigurationError

if TYPE_CHECKING:
    from .base import Engine

#: ``factory(k, vectors, criterion) -> Engine`` — returning the protocol
#: type makes ``register_engine(name, SomeEngine)`` a conformance check:
#: a concrete class whose methods drift from :class:`Engine` stops being
#: assignable to this alias and fails mypy at the registration site.
EngineFactory = Callable[..., "Engine"]

_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(
    name: str, factory: EngineFactory, *, overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``overwrite=True``,
    so a typo cannot silently shadow a built-in engine.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"engine name must be a non-empty string, got {name!r}"
        )
    if not callable(factory):
        raise ConfigurationError(
            f"engine factory for {name!r} must be callable, got {factory!r}"
        )
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = factory


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_engine(name: str) -> EngineFactory:
    """Return the factory registered under ``name``.

    Unknown names raise a :class:`ConfigurationError` that lists every
    valid name, so the fix is visible from the error alone.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(available_engines()) or "<none>"
        raise ConfigurationError(
            f"unknown engine {name!r}; available engines: {available}"
        ) from None
