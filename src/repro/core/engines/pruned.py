"""Candidate-pruned engine: inverted term→cluster index, exact gains.

The assignment hot path scores every document against all K cluster
representatives (Eq. 26): ``best_gain`` is one ``c⃗_p · w⃗_q`` per
cluster, so a sweep costs ``O(K · nnz)`` per document no matter how
little vocabulary the document shares with most clusters. At large K
and vocabulary almost all of that work multiplies zeros: a cluster
whose representative carries *none* of the document's terms has
``cr_sim(C_p, d_q) = 0`` exactly, and its Eq. 25-26 gain is the
document-independent constant ``b_p`` of the affine form
``gain = a_p·cr + b_p`` (:func:`~repro.core.engines.base.\
affine_gain_coefficients`). This engine exploits that with three
layers, none of which approximates:

* **Inverted term→cluster index** — per term, a K-bit posting set of
  the clusters whose representative holds a *non-zero* coordinate
  there (maintained against the float array itself, so cancellation
  residues stay indexed and parity with the dense path is exact).
  Clusters sharing no term with the document are never dotted: their
  gain is ``b_p``, read straight off the coefficient vector.
* **Heavy/light term split** — terms carried by at least
  ``k//4`` representatives ("heavy": stopword-like survivors, bursty
  background vocabulary) would put every cluster in the candidate set;
  their contribution is instead computed for all K clusters in one
  slim matrix-vector product over just those columns. Candidate
  enumeration runs only over the light (rare) terms, where posting
  sets are genuinely small.
* **Residual-mass bound** — among the candidates, Cauchy-Schwarz
  bounds the light-term mass: ``cr_light ≤ √(cr_sim(C_p,C_p) · w2_l)``
  with ``cr_sim(C_p, C_p)`` the representative's own mass (Eq. 21-22,
  already maintained) and ``w2_l`` the document's light-term
  self-similarity. A candidate whose bound cannot lift its gain to the
  best exactly-known gain (the best non-candidate's ``a_p·cr_heavy +
  b_p``, which this engine has already computed exactly) is skipped
  before its dot product is taken. The bound is inflated by a relative
  margin that dominates float rounding, and skipping is strict, so a
  cluster is only ever pruned when it *provably* cannot win — the
  argmax, and therefore every assignment, is identical to the exact
  path (see DESIGN.md for the argument).

Pruning shrinks the arithmetic, but a document-at-a-time loop would
still pay tens of microseconds of interpreter and dispatch overhead
per probe — more than the dot products it saves. :meth:`best_gains`
therefore resolves runs of *net-stationary* documents (removed, probed
and re-joining the cluster they came from — the overwhelmingly common
case once a stream has settled) in vectorised windows that never
materialise a full ``(window, K)`` gain table: only candidate and
own-cluster pairs are scored, every other cluster is dispatched by one
window-wide Cauchy-Schwarz screen over the *heavy* term mass (see
:meth:`_speculate`), and the sequential reference path takes over at
the first document that actually changes membership. The same
speculation idea drives the scipy matrix engine's sweep; here it is
index-pruned and numpy-only.

Everything else — membership bookkeeping, the single-document fallback
semantics, CSR batch construction — is inherited from
:class:`~repro.core.engines.dense.DenseEngine`, so the pruned engine
needs numpy only.
"""

from __future__ import annotations

from operator import itemgetter
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..._typing import BoolArray, FloatArray, IntArray
from ...obs import Span, resolve
from ...vectors.sparse import SparseVector
from .base import NO_GAIN, affine_gain_coefficients
from .dense import DenseEngine

#: A term carried by at least this fraction of the K representatives is
#: "heavy": it is scored for every cluster in one matrix-vector product
#: instead of enumerating its (near-full) posting set. Any value is
#: exact — the split only moves terms between two exact code paths.
HEAVY_FRACTION = 0.25

#: Relative inflation of the Cauchy-Schwarz bound before a candidate is
#: skipped. The float error of the bound and of the exact dot products
#: is O(nnz·eps) ≈ 1e-13 relative; 1e-9 dominates it by four orders of
#: magnitude while staying far too small to keep a beatable candidate.
BOUND_MARGIN = 1e-9

#: Documents resolved per speculation attempt. Larger windows amortise
#: the fixed count of numpy dispatches over more documents; the work
#: per window stays proportional to the documents' term counts.
SPECULATE_WINDOW = 256


def _ragged_positions(starts: IntArray, lengths: IntArray) -> IntArray:
    """Flat positions selecting the runs ``starts[i]:starts[i]+lengths[i]``.

    The returned index array concatenates the (variable-length) runs,
    turning per-segment gathers into one fancy index.
    """
    total = int(lengths.sum())
    prefix = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=prefix[1:])
    return (
        np.repeat(starts - prefix, lengths)
        + np.arange(total, dtype=np.int64)
    )


class PrunedEngine(DenseEngine):
    """Inverted-index candidate pruning over the dense representatives."""

    def __init__(
        self, k: int, vectors: Mapping[str, SparseVector], criterion: str
    ) -> None:
        super().__init__(k, vectors, criterion)
        n_terms = self._rep.shape[1]
        # posting sets as K-bit rows (little-endian: bit i = cluster i),
        # plus per-term posting sizes for the heavy/light split
        self._posting_words = (k + 63) // 64
        self._bits = np.zeros(
            (n_terms, self._posting_words), dtype=np.uint64
        )
        self._nzcount = np.zeros(n_terms, dtype=np.int64)
        self._heavy_cut = max(1, int(k * HEAVY_FRACTION))
        # single-cluster posting shortcut: owner[t] is the one cluster
        # whose representative carries term t (-1: none, -2: several).
        # Redundant with the bit rows, but a 4-byte gather against a
        # table that fits in cache — the windowed sweep enumerates
        # candidates through it whenever no light term is shared
        # (owner == -2 falls back to the exact posting words).
        self._owner = np.full(n_terms, -1, dtype=np.int32)
        # affine gain coefficients per cluster (Eq. 25-26)
        self._gain_a = np.zeros(k, dtype=np.float64)
        self._gain_b = np.zeros(k, dtype=np.float64)
        # per-sweep pruning statistics, flushed by best_gains' span
        self._stat_probes = 0
        self._stat_candidates = 0
        self._stat_scored = 0

    # -- index maintenance ------------------------------------------------

    def _refresh_coeffs(self, cluster_id: int) -> None:
        a, b = affine_gain_coefficients(
            self._criterion,
            int(self._sizes[cluster_id]),
            float(self._crpp[cluster_id]),
            float(self._ss[cluster_id]),
        )
        self._gain_a[cluster_id] = a
        self._gain_b[cluster_id] = b

    def _sync_postings(self, cluster_id: int, ids: IntArray) -> None:
        """Re-derive the touched posting bits from the float array.

        The invariant is ``bit(t, p) set ⇔ rep[p, t] != 0.0`` over the
        *actual float values*, not over membership counts: a coordinate
        that cancels to exactly 0.0 leaves the posting set (its dot
        contribution is exactly zero), and a residue that survives a
        removal stays in it (the exact path would still see it).
        """
        word = cluster_id >> 6
        mask = np.uint64(1 << (cluster_id & 63))
        had = (self._bits[ids, word] & mask) != 0
        now = self._rep[cluster_id, ids] != 0.0
        gained = ids[now & ~had]
        lost = ids[had & ~now]
        if gained.size:
            self._bits[gained, word] |= mask
            self._nzcount[gained] += 1
            nz = self._nzcount[gained]
            self._owner[gained[nz == 1]] = cluster_id
            self._owner[gained[nz == 2]] = -2
        if lost.size:
            self._bits[lost, word] &= ~mask
            self._nzcount[lost] -= 1
            self._reown(lost)

    def _reown(self, lost: IntArray) -> None:
        """Restore the owner shortcut for terms that lost a posting."""
        nz = self._nzcount[lost]
        self._owner[lost[nz == 0]] = -1
        down = lost[nz == 1]
        if down.size:
            # back to a single posting: find the one remaining bit
            spread = np.unpackbits(
                self._bits[down].view(np.uint8), axis=1,
                count=self.k, bitorder="little",
            )
            self._owner[down] = np.argmax(spread, axis=1)

    def _clear_postings(self, cluster_id: int) -> None:
        """Drop every posting of one cluster (its rep row was zeroed)."""
        word = cluster_id >> 6
        mask = np.uint64(1 << (cluster_id & 63))
        column = self._bits[:, word]
        had = (column & mask) != 0
        if had.any():
            self._nzcount[had] -= 1
            column[had] &= ~mask
            self._reown(np.flatnonzero(had))

    def _add(self, cluster_id: int, doc_id: str) -> None:
        super()._add(cluster_id, doc_id)
        self._sync_postings(cluster_id, self._doc_ids[doc_id])
        self._refresh_coeffs(cluster_id)

    def _remove(self, cluster_id: int, doc_id: str) -> None:
        super()._remove(cluster_id, doc_id)
        if self._sizes[cluster_id] == 0:
            # DenseEngine zeroed the whole representative row, including
            # residues at terms this document never carried
            self._clear_postings(cluster_id)
        else:
            self._sync_postings(cluster_id, self._doc_ids[doc_id])
        self._refresh_coeffs(cluster_id)

    def refresh(self) -> None:
        super().refresh()
        for cluster_id in range(self.k):
            self._refresh_coeffs(cluster_id)

    # -- pruned gain query ------------------------------------------------

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        gains = self._pruned_gains(doc_id)
        best = int(np.argmax(gains))
        return best, float(gains[best])

    def _pruned_gains(self, doc_id: str) -> FloatArray:
        """Eq. 25-26 gains with candidate pruning; argmax-exact.

        Entries of skipped clusters hold an exact *lower* bound that is
        provably below the true maximum, so ``argmax`` (winner, value
        and first-index tie-break) matches the unpruned computation.
        """
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        self._stat_probes += 1
        heavy = self._nzcount[ids] >= self._heavy_cut
        heavy_ids = ids[heavy]
        if heavy_ids.size:
            cr = self._rep[:, heavy_ids] @ vals[heavy]
        else:
            cr = np.zeros(self.k, dtype=np.float64)
        gains = self._gain_a * cr
        gains += self._gain_b
        light_ids = ids[~heavy]
        if not light_ids.size:
            self._stat_scored += self.k
            return gains
        words = np.bitwise_or.reduce(self._bits[light_ids], axis=0)
        candidates = np.flatnonzero(
            np.unpackbits(
                words.view(np.uint8), count=self.k, bitorder="little"
            )
        )
        self._stat_candidates += candidates.size
        if not candidates.size:
            # no cluster shares a light term: every light contribution
            # is exactly zero and `gains` is already exact
            self._stat_scored += self.k
            return gains
        light_vals = vals[~heavy]
        # residual-mass bound: cr_light ≤ √(crpp · w2_light), so gain ≤
        # heavy-only gain + a·bound. Anything below the best *exactly
        # known* gain (the best non-candidate, whose light mass is
        # exactly zero) cannot win the argmax.
        if candidates.size < self.k:
            shadowed = gains.copy()
            shadowed[candidates] = -np.inf
            floor = float(shadowed.max())
            bound = np.sqrt(
                self._crpp[candidates] * float(light_vals @ light_vals)
            )
            ceiling = gains[candidates] + (
                self._gain_a[candidates] * bound * (1.0 + BOUND_MARGIN)
            )
            scored = candidates[ceiling >= floor]
        else:
            scored = candidates
        self._stat_scored += self.k - candidates.size + scored.size
        if scored.size:
            light = self._rep[np.ix_(scored, light_ids)] @ light_vals
            gains[scored] = (
                self._gain_a[scored] * (cr[scored] + light)
                + self._gain_b[scored]
            )
        return gains

    # -- batched sweep ----------------------------------------------------

    def best_gains(
        self, doc_ids: Sequence[str]
    ) -> List[Tuple[int, float]]:
        """Windowed speculative sweep, instrumented with prune rates.

        Equivalent to the sequential reference loop of
        :meth:`EngineBase.best_gains`: runs of net-stationary documents
        are resolved in vectorised windows (:meth:`_speculate`), and
        the sequential remove/probe/re-add path handles every document
        that actually changes membership.
        """
        recorder = resolve(None)
        self._stat_probes = 0
        self._stat_candidates = 0
        self._stat_scored = 0
        n = len(doc_ids)
        best_out = np.empty(n, dtype=np.int64)
        gain_out = np.empty(n, dtype=np.float64)
        with Span(recorder, "engine.pruned.sweep",
                  {"docs": n, "k": self.k}):
            i = 0
            spec_fails = 0
            arena = None
            while i < n:
                # vectorised fast path over a run of net-stationary
                # documents; gives up for the sweep after three
                # immediate misses (e.g. a first pass, where every
                # document moves)
                if spec_fails < 3 and n - i > 16:
                    if arena is None:
                        arena = self._build_arena(doc_ids)
                    advanced = self._speculate(
                        doc_ids, i, arena, best_out, gain_out
                    )
                    if advanced:
                        spec_fails = 0
                        i += advanced
                        if i >= n:
                            break
                    else:
                        spec_fails += 1
                doc_id = doc_ids[i]
                current = self._assigned.get(doc_id)
                if current is not None:
                    self.remove(current, doc_id)
                if doc_id in self._empty_docs:
                    best_out[i] = -1
                    gain_out[i] = NO_GAIN
                    i += 1
                    continue
                cluster_id, gain = self.best_gain(doc_id)
                if gain > 0.0:
                    self.add(cluster_id, doc_id)
                best_out[i] = cluster_id
                gain_out[i] = gain
                i += 1
        if recorder.enabled and self._stat_probes:
            probes = self._stat_probes
            recorder.gauge(
                "engine.pruned.candidates_per_doc",
                self._stat_candidates / probes,
            )
            recorder.gauge(
                "engine.pruned.scored_per_doc",
                self._stat_scored / probes,
            )
            recorder.gauge(
                "engine.pruned.pruned_fraction",
                1.0 - self._stat_scored / (probes * self.k),
            )
        return list(zip(best_out.tolist(), gain_out.tolist()))

    def _build_arena(
        self, doc_ids: Sequence[str]
    ) -> Tuple[IntArray, IntArray, FloatArray, FloatArray, BoolArray]:
        """Sweep-wide flat term arrays — every window is a view.

        Document vectors, their masses and the empty-document set are
        fixed at construction, so one concatenation per sweep replaces
        a per-window gather/concatenate of the same immutable data.
        Only assignment-dependent state (current cluster, postings,
        coefficients) is read per window.
        """
        n = len(doc_ids)
        parts_ids = itemgetter(*doc_ids)(self._doc_ids)
        parts_vals = itemgetter(*doc_ids)(self._doc_vals)
        bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter(
                (p.size for p in parts_ids), dtype=np.int64, count=n
            ),
            out=bounds[1:],
        )
        flat_ids = np.concatenate(parts_ids)
        flat_vals = np.concatenate(parts_vals)
        w2v_all = np.asarray(
            itemgetter(*doc_ids)(self._doc_w2), dtype=np.float64
        )
        empty_docs = self._empty_docs
        empty_all = np.fromiter(
            (d in empty_docs for d in doc_ids), dtype=bool, count=n
        )
        return bounds, flat_ids, flat_vals, w2v_all, empty_all

    def _speculate(
        self,
        doc_ids: Sequence[str],
        i0: int,
        arena: Tuple[
            IntArray, IntArray, FloatArray, FloatArray, BoolArray
        ],
        best_out: IntArray,
        gain_out: FloatArray,
    ) -> int:
        """Resolve a leading run of net-stationary documents at once.

        In settled streams almost every document is removed, probed,
        and re-joins the cluster it came from — a net no-op on every
        cluster's accounting. This path never materialises a full
        ``(window, K)`` gain table. It evaluates Eq. 25-26 *exactly*
        only for the pairs that can win: each document's inverted-index
        candidates and its own cluster (with the own-cluster
        coefficients adjusted for its removal, exactly as the
        sequential loop computes them). Every other cluster shares no
        light term with the document, so its gain is bounded by the
        heavy-mass Cauchy-Schwarz form ``b_p + a_p·√(crpp_p · w2_h)``
        — one outer product over the window. Clusters whose inflated
        bound stays below the document's best exactly-known gain are
        dispatched without any per-pair arithmetic; the rare survivors
        are scored exactly (heavy-only dot — their light mass is
        exactly zero). The winner is the maximum over the exactly
        scored set with first-index tie-breaking, i.e. the sequential
        argmax. Decisions are recorded up to the first document that
        actually changes membership and the count resolved is
        returned; the caller's sequential loop takes over at the first
        net mover. Returns 0 when the very next document moves.
        """
        stop_at = min(i0 + SPECULATE_WINDOW, len(doc_ids))
        ids_seq = doc_ids[i0:stop_at]
        m = len(ids_seq)  # >= 2: the caller gates on > 16 pending docs
        k = self.k
        rep = self._rep
        gain_a, gain_b = self._gain_a, self._gain_b
        assigned = self._assigned
        bounds, flat_all, vals_all, w2v_all, empty_all = arena
        base = int(bounds[i0])
        flat_ids = flat_all[base:int(bounds[stop_at])]
        flat_vals = vals_all[base:int(bounds[stop_at])]
        lens = bounds[i0 + 1:stop_at + 1] - bounds[i0:stop_at]
        starts = bounds[i0:stop_at] - base
        seg = np.repeat(np.arange(m, dtype=np.int64), lens)
        w2v = w2v_all[i0:stop_at]
        empty = empty_all[i0:stop_at]
        cur = np.fromiter(
            (assigned.get(d, -1) for d in ids_seq),
            dtype=np.int64, count=m,
        )
        # heavy/light split; the heavy side only needs its per-document
        # mass w2_h for the screening bound (the flat arrays are pulled
        # out only if a survivor must be scored). reduceat runs only at
        # the starts of non-empty segments — its empty-segment
        # semantics would smear neighbours otherwise.
        heavy = self._nzcount[flat_ids] >= self._heavy_cut
        hv2 = flat_vals * flat_vals
        hv2 *= heavy
        ne = np.flatnonzero(lens)
        w2h = np.zeros(m, dtype=np.float64)
        if flat_ids.size:
            w2h[ne] = np.add.reduceat(hv2, starts[ne])
        # candidate sets. The single-owner shortcut scatters most light
        # tokens straight into the candidate matrix; only if some light
        # token's posting spans several clusters (owner == -2) does the
        # exact fallback OR the posting words per document. Both paths
        # read the same postings, so the resulting matrix is identical.
        light = ~heavy
        light_ids = flat_ids[light]
        cand = np.zeros((m, k), dtype=np.uint8)
        if light_ids.size:
            owner = self._owner[light_ids]
            seg_l = seg[light]
            if (owner == -2).any():
                l_counts = np.bincount(seg_l, minlength=m)
                l_starts = np.zeros(m, dtype=np.int64)
                np.cumsum(l_counts[:-1], out=l_starts[1:])
                l_ne = np.flatnonzero(l_counts)
                words = np.zeros(
                    (m, self._posting_words), dtype=np.uint64
                )
                words[l_ne] = np.bitwise_or.reduceat(
                    self._bits[light_ids], l_starts[l_ne], axis=0
                )
                cand = np.unpackbits(
                    words.view(np.uint8), axis=1, count=k,
                    bitorder="little",
                )
            else:
                single = owner >= 0
                cand[seg_l[single], owner[single]] = 1
        # the exactly scored pairs: inverted-index candidates (doc-major
        # from np.nonzero, clusters ascending within a doc) plus each
        # assigned document's own cluster where that is not already a
        # candidate (in settled streams it almost always is — appending
        # it unconditionally would gather every own dot twice); one
        # ragged gather computes their full Eq. 26 dots over the
        # documents' complete term lists
        asg = cur >= 0
        own_j = np.flatnonzero(asg)
        own_c = cur[own_j]
        pair_doc, pair_cl = np.nonzero(cand)
        n_cand = pair_doc.size
        own_is_cand = cand[own_j, own_c] != 0
        p_doc = np.concatenate([pair_doc, own_j[~own_is_cand]])
        p_cl = np.concatenate([pair_cl, own_c[~own_is_cand]])
        p_len = lens[p_doc]
        pos = _ragged_positions(starts[p_doc], p_len)
        prod = rep[np.repeat(p_cl, p_len), flat_ids[pos]]
        prod *= flat_vals[pos]
        p_starts = np.zeros(p_doc.size, dtype=np.int64)
        np.cumsum(p_len[:-1], out=p_starts[1:])
        dots = np.zeros(p_doc.size, dtype=np.float64)
        if prod.size:
            p_ne = np.flatnonzero(p_len)
            dots[p_ne] = np.add.reduceat(prod, p_starts[p_ne])
        gains = gain_a[p_cl] * dots
        gains += gain_b[p_cl]
        # own-cluster pairs: the gain the sequential loop would see
        # after removing the document, from the algebraically adjusted
        # coefficients (crpp', ss', n-1) — the unadjusted value is not
        # a gain any path ever observes. Each assigned document's own
        # pair sits either in the (key-sorted) candidate block or in
        # the appended tail, located once for both read and overwrite.
        if own_j.size:
            own_idx = np.empty(own_j.size, dtype=np.int64)
            own_idx[own_is_cand] = np.searchsorted(
                pair_doc * np.int64(k + 1) + pair_cl,
                own_j[own_is_cand] * np.int64(k + 1)
                + own_c[own_is_cand],
            )
            own_idx[~own_is_cand] = n_cand + np.arange(
                own_j.size - int(own_is_cand.sum()), dtype=np.int64
            )
            o_dots = dots[own_idx]
            w2a = w2v[own_j]
            crpp1 = self._crpp[own_c] + (-2.0 * o_dots + w2a)
            ss1 = self._ss[own_c] - w2a
            n1 = self._sizes[own_c] - 1
            dprime = o_dots - w2a
            if self._criterion == "g":
                a_ = 2.0 / np.maximum(n1, 1)
                b_ = -(crpp1 - ss1) / np.maximum(n1 * (n1 - 1), 1)
                g_own = np.where(
                    n1 <= 0, 0.0,
                    np.where(n1 == 1, 2.0 * dprime, a_ * dprime + b_),
                )
            else:
                diff = crpp1 - ss1
                d1 = np.maximum(n1 * (n1 + 1), 1)
                a_ = 2.0 / d1
                avg_cur = np.where(
                    n1 > 1, diff / np.maximum(n1 * (n1 - 1), 1), 0.0
                )
                b_ = diff / d1 - avg_cur
                g_own = np.where(n1 <= 0, 0.0, a_ * dprime + b_)
            gains[own_idx] = g_own
        # best exactly-known gain per document — the floor the screening
        # bound must beat (candidate pairs are doc-major, so a segmented
        # max covers them; own pairs fold in by scatter)
        bk = np.full(m, -np.inf)
        if n_cand:
            c_cnt = np.bincount(pair_doc, minlength=m)
            c_st = np.zeros(m, dtype=np.int64)
            np.cumsum(c_cnt[:-1], out=c_st[1:])
            c_ne = np.flatnonzero(c_cnt)
            bk[c_ne] = np.maximum.reduceat(gains[:n_cand], c_st[c_ne])
        if own_j.size:
            bk[own_j] = np.maximum(bk[own_j], g_own)
        # every remaining cluster shares no light term with its
        # document, so its light mass is exactly zero and its gain is
        # a_p·cr_heavy + b_p ≤ b_p + a_p·√(crpp_p · w2_h) by
        # Cauchy-Schwarz. One outer product bounds all of them; only
        # the margin-inflated survivors are scored. Empty documents
        # resolve to (-1, NO_GAIN) below, so they screen out entirely.
        bk[empty] = np.inf
        sq = np.sqrt(w2h)
        sq *= 1.0 + BOUND_MARGIN
        # clamp accumulation drift: a representative mass can only
        # round below zero when it is ~0, and sqrt(negative) would
        # poison the whole bound row with NaN
        amax = gain_a * np.sqrt(np.maximum(self._crpp, 0.0))
        # cheap per-document pre-check: sq·max(a√crpp) + max(b) caps
        # every cluster's bound, so documents whose floor already
        # clears it (in settled streams: all of them) skip the
        # (window, K) screen entirely
        q = np.flatnonzero(
            sq * float(amax.max()) + float(gain_b.max()) >= bk
        )
        s_doc = np.zeros(0, dtype=np.int64)
        s_cl = np.zeros(0, dtype=np.int64)
        g_s = np.zeros(0, dtype=np.float64)
        if q.size:
            ub = np.outer(sq[q], amax)
            ub += gain_b[None, :]
            surv = ub >= bk[q, None]
            surv &= cand[q] == 0
            row_of = np.full(m, -1, dtype=np.int64)
            row_of[q] = np.arange(q.size, dtype=np.int64)
            sel = row_of[own_j] >= 0
            surv[row_of[own_j[sel]], own_c[sel]] = False
            s_row, s_cl = np.nonzero(surv)
            s_doc = q[s_row]
        if s_doc.size:
            heavy_ids = flat_ids[heavy]
            heavy_vals = flat_vals[heavy]
            h_counts = np.bincount(seg[heavy], minlength=m)
            h_starts = np.zeros(m, dtype=np.int64)
            np.cumsum(h_counts[:-1], out=h_starts[1:])
            s_len = h_counts[s_doc]
            pos = _ragged_positions(h_starts[s_doc], s_len)
            prod = rep[np.repeat(s_cl, s_len), heavy_ids[pos]]
            prod *= heavy_vals[pos]
            s_st = np.zeros(s_doc.size, dtype=np.int64)
            np.cumsum(s_len[:-1], out=s_st[1:])
            s_dots = np.zeros(s_doc.size, dtype=np.float64)
            if prod.size:
                s_ne = np.flatnonzero(s_len)
                s_dots[s_ne] = np.add.reduceat(prod, s_st[s_ne])
            g_s = gain_a[s_cl] * s_dots
            g_s += gain_b[s_cl]
        # winner per document over the exactly scored set. Screened-out
        # clusters sit strictly below the document's floor, so the
        # maximum matches the full argmax; ties between exactly scored
        # entries break to the lowest cluster id, which is np.argmax's
        # first-index rule.
        all_doc = np.concatenate([p_doc, s_doc])
        all_cl = np.concatenate([p_cl, s_cl])
        all_g = np.concatenate([gains, g_s])
        order = np.argsort(
            all_doc * np.int64(k + 1) + all_cl, kind="stable"
        )
        d_s = all_doc[order]
        c_s = all_cl[order]
        g_sorted = all_g[order]
        a_cnt = np.bincount(d_s, minlength=m)
        a_st = np.zeros(m, dtype=np.int64)
        np.cumsum(a_cnt[:-1], out=a_st[1:])
        a_ne = np.flatnonzero(a_cnt)
        gain0 = np.full(m, NO_GAIN)
        gain0[a_ne] = np.maximum.reduceat(g_sorted, a_st[a_ne])
        is_max = g_sorted == gain0[d_s]
        best0 = np.zeros(m, dtype=np.int64)
        best0[a_ne] = np.minimum.reduceat(
            np.where(is_max, c_s, k), a_st[a_ne]
        )
        # same membership-set gate as the sequential path (base.py); an
        # assigned empty document is a mover — the reference loop
        # removes it and never re-adds
        join = gain0 > 0.0
        moved = np.where(
            asg, (best0 != cur) | ~join | empty, join & ~empty
        )
        movers = np.flatnonzero(moved)
        stop = int(movers[0]) if movers.size else m
        if stop == 0:
            return 0
        b_seg, g_seg = best0[:stop], gain0[:stop]
        e = empty[:stop]
        if e.any():
            b_seg, g_seg = b_seg.copy(), g_seg.copy()
            b_seg[e] = -1
            g_seg[e] = NO_GAIN
        best_out[i0:i0 + stop] = b_seg
        gain_out[i0:i0 + stop] = g_seg
        # pruning statistics over the committed, probed prefix.
        # "scored" counts gains pinned by per-pair arithmetic; clusters
        # dispatched by the window screening bound contribute nothing,
        # so the batched path reports the (much smaller) number of
        # dot products it actually takes per document.
        probed = ~e
        cand_counts = cand[:stop].sum(axis=1)
        exact_counts = np.bincount(all_doc, minlength=m)[:stop]
        self._stat_probes += int(probed.sum())
        self._stat_candidates += int(cand_counts[probed].sum())
        self._stat_scored += int(exact_counts[probed].sum())
        # the reference loop's remove+re-add cycles a stationary doc to
        # the end of its cluster's member dict; preserve that order so
        # members() stays identical to the exact engines'
        members = self._members
        cur_l = cur[:stop].tolist()
        for off in range(stop):
            cluster_id = cur_l[off]
            if cluster_id >= 0:
                doc_id = ids_seq[off]
                cluster_members = members[cluster_id]
                del cluster_members[doc_id]
                cluster_members[doc_id] = None
        return stop
