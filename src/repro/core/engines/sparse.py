"""Reference engine over :class:`~repro.core.Cluster` objects.

Mirrors the paper's formulas line-by-line (one :class:`Cluster` per
slot, dict-backed sparse vectors); the correctness tests are written
against this engine, and the other engines are tested for parity with
it.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ...vectors.sparse import SparseVector
from ..cluster import Cluster
from .base import EngineBase


class SparseEngine(EngineBase):
    """Backend over :class:`Cluster` objects (reference implementation)."""

    def __init__(
        self, k: int, vectors: Mapping[str, SparseVector], criterion: str
    ) -> None:
        super().__init__(k, vectors)
        self.clusters = [Cluster(i) for i in range(k)]
        self._vectors = vectors
        self._criterion = criterion

    def _add(self, cluster_id: int, doc_id: str) -> None:
        self.clusters[cluster_id].add(doc_id, self._vectors[doc_id])

    def _remove(self, cluster_id: int, doc_id: str) -> None:
        self.clusters[cluster_id].remove(doc_id)

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        """Return ``(cluster_id, gain)`` of the largest-gain cluster."""
        vector = self._vectors[doc_id]
        best_id, best_gain = -1, float("-inf")
        for cluster in self.clusters:
            if self._criterion == "g":
                gain = cluster.g_gain_if_added(vector)
            else:
                gain = cluster.gain_if_added(vector)
            if gain > best_gain:
                best_id, best_gain = cluster.cluster_id, gain
        return best_id, best_gain

    def sizes(self) -> List[int]:
        return [cluster.size for cluster in self.clusters]

    def refresh(self) -> None:
        for cluster in self.clusters:
            cluster.refresh()

    def clustering_index(self) -> float:
        return sum(cluster.index_contribution() for cluster in self.clusters)

    def contributions(self) -> List[float]:
        return [cluster.index_contribution() for cluster in self.clusters]

    def members(self) -> List[List[str]]:
        return [cluster.member_ids() for cluster in self.clusters]

    def self_similarity(self, doc_id: str) -> float:
        vector = self._vectors[doc_id]
        return vector.dot(vector)
