"""numpy engine: K×V representative matrix, vectorised per-doc gains.

Representatives live in a dense K×V matrix so the gain of one document
over *all* clusters (Eq. 26) is a single fancy-indexed matrix-vector
product. Produces the same clustering as the sparse reference up to
float-summation-order ties; the default for medium corpora.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..._typing import FloatArray, IntArray
from ...vectors.sparse import SparseVector
from .base import EngineBase


class DenseEngine(EngineBase):
    """numpy backend: K×V representative matrix, vectorised gains."""

    #: advertises the CSR construction fast path to NoveltyKMeans
    accepts_arrays = True

    def __init__(
        self, k: int, vectors: Mapping[str, SparseVector], criterion: str
    ) -> None:
        super().__init__(k, vectors)
        self._criterion = criterion
        self._doc_ids: Dict[str, IntArray] = {}
        self._doc_vals: Dict[str, FloatArray] = {}
        self._doc_w2: Dict[str, float] = {}
        csr_parts = getattr(vectors, "csr_parts", None)
        if callable(csr_parts):
            # CSR batch: compact the columns and sort terms within each
            # row in one global argsort — same column map and per-row
            # order (terms ascending) as the per-document sorted()
            # build below, so per-doc arrays and w2 are bit-identical
            doc_id_list, indptr, raw_terms, raw_vals = csr_parts()
            n_docs = len(doc_id_list)
            term_id_arr = np.unique(raw_terms)
            self._column = {
                t: i for i, t in enumerate(term_id_arr.tolist())
            }
            n_terms = max(1, int(term_id_arr.size))
            cols = np.searchsorted(term_id_arr, raw_terms)
            lens = np.diff(indptr)
            row_of = np.repeat(np.arange(n_docs, dtype=np.int64), lens)
            order = np.argsort(row_of * n_terms + cols, kind="stable")
            all_ids = cols[order]
            all_vals = raw_vals[order]
            for row, doc_id in enumerate(doc_id_list):
                lo, hi = int(indptr[row]), int(indptr[row + 1])
                ids = all_ids[lo:hi]
                vals = all_vals[lo:hi]
                self._doc_ids[doc_id] = ids
                self._doc_vals[doc_id] = vals
                self._doc_w2[doc_id] = float(vals @ vals)
        else:
            term_ids = sorted(
                {t for v in vectors.values() for t in v.keys()}
            )
            self._column = {t: i for i, t in enumerate(term_ids)}
            n_terms = max(1, len(term_ids))
            for doc_id, vector in vectors.items():
                items = sorted(vector.items())
                ids = np.fromiter(
                    (self._column[t] for t, _ in items), dtype=np.int64,
                    count=len(items),
                )
                vals = np.fromiter(
                    (v for _, v in items), dtype=np.float64,
                    count=len(items),
                )
                self._doc_ids[doc_id] = ids
                self._doc_vals[doc_id] = vals
                self._doc_w2[doc_id] = float(vals @ vals)
        self._rep = np.zeros((k, n_terms), dtype=np.float64)
        self._crpp = np.zeros(k, dtype=np.float64)
        self._ss = np.zeros(k, dtype=np.float64)
        self._sizes = np.zeros(k, dtype=np.int64)
        self._members: List[Dict[str, None]] = [{} for _ in range(k)]

    def _add(self, cluster_id: int, doc_id: str) -> None:
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        w2 = self._doc_w2[doc_id]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += 2.0 * dot + w2
        self._ss[cluster_id] += w2
        self._rep[cluster_id, ids] += vals
        self._sizes[cluster_id] += 1
        self._members[cluster_id][doc_id] = None

    def _remove(self, cluster_id: int, doc_id: str) -> None:
        del self._members[cluster_id][doc_id]
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        w2 = self._doc_w2[doc_id]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += -2.0 * dot + w2
        self._ss[cluster_id] -= w2
        self._rep[cluster_id, ids] -= vals
        self._sizes[cluster_id] -= 1
        if self._sizes[cluster_id] == 0:
            self._rep[cluster_id, :] = 0.0
            self._crpp[cluster_id] = 0.0
            self._ss[cluster_id] = 0.0

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        ids, vals = self._doc_ids[doc_id], self._doc_vals[doc_id]
        n = self._sizes
        cr_pq = self._rep[:, ids] @ vals
        if self._criterion == "g":
            pair_sum = (self._crpp - self._ss) / 2.0
            gains = np.where(
                n > 1,
                2.0 * (cr_pq * (n - 1) - pair_sum)
                / np.maximum(n * (n - 1), 1),
                np.where(n == 1, 2.0 * cr_pq, 0.0),
            )
        else:
            avg_new = np.where(
                n > 0,
                (self._crpp + 2.0 * cr_pq - self._ss)
                / np.maximum(n * (n + 1), 1),
                0.0,
            )
            avg_cur = np.where(
                n > 1,
                (self._crpp - self._ss) / np.maximum(n * (n - 1), 1),
                0.0,
            )
            gains = avg_new - avg_cur
        best = int(np.argmax(gains))
        return best, float(gains[best])

    def sizes(self) -> List[int]:
        return [int(s) for s in self._sizes]

    def refresh(self) -> None:
        self._crpp = np.einsum("ij,ij->i", self._rep, self._rep)

    def clustering_index(self) -> float:
        n = self._sizes
        contributions = np.where(
            n > 1,
            (self._crpp - self._ss) / np.maximum(n - 1, 1),
            0.0,
        )
        return float(contributions.sum())

    def contributions(self) -> List[float]:
        result: List[float] = []
        for cid in range(self.k):
            size = int(self._sizes[cid])
            if size < 2:
                result.append(0.0)
            else:
                result.append(
                    float(self._crpp[cid] - self._ss[cid]) / (size - 1)
                )
        return result

    def members(self) -> List[List[str]]:
        return [list(members.keys()) for members in self._members]

    def self_similarity(self, doc_id: str) -> float:
        return self._doc_w2[doc_id]
