"""Vectorised engine: one CSR matrix, assignment sweeps by matmul.

The assignment pass (Section 4.3 step 1) is the hot path of the
extended K-means: for every document it needs ``cr_sim(C_p, d_q) =
c⃗_p · w⃗_q`` against every cluster representative (Eq. 26). The dense
engine answers that with one fancy-indexed gather per document; this
engine batches the *whole sweep*:

* all weighted document vectors live in one CSR matrix ``X`` (N×V)
  with cached self-similarities ``w⃗_d·w⃗_d`` (the Eq. 23 summands, which
  already fold in the ``Pr(d)/len_d`` novelty weights of Eq. 12-16),
* cluster representatives are dense accumulator rows ``R`` (K×V,
  Eq. 19-20),
* per block of documents the representative dot products arrive as one
  sparse-dense product ``S = X_blk · Rᵀ`` plus one intra-block Gram
  matrix ``X_blk · X_blkᵀ`` that replays the sweep's own membership
  moves into ``S`` exactly (when document j left/joined cluster p, the
  later rows' similarity to p changes by ∓``w⃗_i·w⃗_j`` — a column of
  the Gram matrix),
* the Eq. 25-26 gain of document q against cluster p is affine in
  ``cr_sim(C_p, d_q)``, so per document the K gains are one
  fused multiply-add ``a ⊙ cr + b`` over incrementally maintained
  coefficient vectors instead of the full Eq. 24 recomputation.

The arithmetic is exactly the reference recurrence — same additions,
same order of membership moves — so assignments match the dense engine
(G agrees to float-summation-order, like dense vs sparse).

Requires :mod:`scipy` (the only engine that does); construction fails
with a clear message when it is missing.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple

import numpy as np

from ..._typing import FloatArray, IntArray
from ...exceptions import ConfigurationError
from ...vectors.sparse import SparseVector
from .base import NO_GAIN, EngineBase, affine_gain_coefficients

# typed Any rather than a module so both the ImportError fallback and
# the attribute accesses below type-check with or without scipy stubs
_sp: Any = None
try:  # pragma: no cover - exercised implicitly on import
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy is present in CI/dev envs
    pass
else:
    _sp = _scipy_sparse

#: Documents per sweep block: large enough to amortise the two matmuls,
#: small enough that the b×b Gram matrix stays cache-resident.
DEFAULT_BLOCK_SIZE = 256

#: Lookahead of the net-stationary fast path: bounds the work thrown
#: away when a mover interrupts a stationary run.
SPECULATE_WINDOW = 64


class MatrixEngine(EngineBase):
    """CSR document matrix + dense representatives, blockwise sweeps."""

    #: advertises the CSR construction fast path to NoveltyKMeans
    accepts_arrays = True

    def __init__(
        self,
        k: int,
        vectors: Mapping[str, SparseVector],
        criterion: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if _sp is None:
            raise ConfigurationError(
                "the 'matrix' engine requires scipy, which is not "
                "installed; use engine='dense' or install scipy"
            )
        super().__init__(k, vectors)
        self._criterion = criterion
        self._block_size = max(1, int(block_size))

        csr_parts = getattr(vectors, "csr_parts", None)
        if callable(csr_parts):
            # CSR batch from the vectoriser: the flat arrays are already
            # exactly what the extraction below produces, minus the
            # per-term Python iteration
            doc_id_list, indptr, raw_terms, raw_vals = csr_parts()
            n_docs = len(doc_id_list)
            self._row: Dict[str, int] = {
                doc_id: row for row, doc_id in enumerate(doc_id_list)
            }
            indptr = np.asarray(indptr, dtype=np.int64)
            lens = np.diff(indptr)
        else:
            n_docs = len(vectors)
            self._row = {
                doc_id: row for row, doc_id in enumerate(vectors)
            }
            lens = np.fromiter(
                (len(v) for v in vectors.values()), dtype=np.int64,
                count=n_docs,
            )
            total_nnz = int(lens.sum())
            indptr = np.zeros(n_docs + 1, dtype=np.int64)
            np.cumsum(lens, out=indptr[1:])
            raw_terms = np.fromiter(
                chain.from_iterable(v.keys() for v in vectors.values()),
                dtype=np.int64, count=total_nnz,
            )
            raw_vals = np.fromiter(
                chain.from_iterable(v.values() for v in vectors.values()),
                dtype=np.float64, count=total_nnz,
            )
        # compact the columns and sort terms within each row in one
        # global argsort — same column map and per-row order as the
        # dense engine's per-document sorted() build
        term_ids = np.unique(raw_terms)
        n_terms = max(1, len(term_ids))
        cols = np.searchsorted(term_ids, raw_terms)
        row_of = np.repeat(np.arange(n_docs, dtype=np.int64), lens)
        order = np.argsort(row_of * n_terms + cols, kind="stable")
        indices = cols[order]
        data = raw_vals[order]
        self._X = _sp.csr_matrix(
            (data, indices, indptr), shape=(n_docs, n_terms)
        )
        # per-row self similarity, bit-equal to the dense engine's
        # (same values, same order, same contiguous np.dot)
        self._w2 = [
            float(np.dot(data[indptr[r]:indptr[r + 1]],
                         data[indptr[r]:indptr[r + 1]]))
            for r in range(n_docs)
        ]

        self._rep = np.zeros((k, n_terms), dtype=np.float64)
        self._crpp: List[float] = [0.0] * k
        self._ss: List[float] = [0.0] * k
        self._sizes: List[int] = [0] * k
        self._members: List[Dict[str, None]] = [{} for _ in range(k)]
        # gain(q, p) = a[p] * cr_sim(C_p, d_q) + b[p]  (Eq. 25-26)
        self._gain_a = np.zeros(k, dtype=np.float64)
        self._gain_b = np.zeros(k, dtype=np.float64)
        # (rows, Xb, Gb) per block-start row: X never changes within a
        # fit, so block slices and their Gram matrices are reused by
        # every assignment pass. LRU-bounded to the number of blocks of
        # one full sweep — callers that probe shifting doc subsets
        # (streaming fits, ad-hoc best_gains calls) would otherwise
        # accumulate one dense Gram block per distinct block start.
        self._block_cache: Dict[int, Tuple[IntArray, Any, FloatArray]] = {}
        self._block_cache_limit = max(
            1, -(-max(1, n_docs) // self._block_size)
        )

    # -- gain coefficients ----------------------------------------------

    def _refresh_coeffs(self, cluster_id: int) -> None:
        """Rebuild the affine gain coefficients of one cluster.

        See :func:`~repro.core.engines.base.affine_gain_coefficients`
        for the ``gain = a·cr + b`` derivation (Eq. 25-26).
        """
        a, b = affine_gain_coefficients(
            self._criterion,
            self._sizes[cluster_id],
            self._crpp[cluster_id],
            self._ss[cluster_id],
        )
        self._gain_a[cluster_id] = a
        self._gain_b[cluster_id] = b

    # -- membership (direct path: warm start, reseed, rescue, split) -----

    def _doc_slice(self, doc_id: str) -> Tuple[IntArray, FloatArray]:
        row = self._row[doc_id]
        start, stop = self._X.indptr[row], self._X.indptr[row + 1]
        return self._X.indices[start:stop], self._X.data[start:stop]

    def _add(self, cluster_id: int, doc_id: str) -> None:
        ids, vals = self._doc_slice(doc_id)
        w2 = self._w2[self._row[doc_id]]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += 2.0 * dot + w2
        self._ss[cluster_id] += w2
        self._rep[cluster_id, ids] += vals
        self._sizes[cluster_id] += 1
        self._members[cluster_id][doc_id] = None
        self._refresh_coeffs(cluster_id)

    def _remove(self, cluster_id: int, doc_id: str) -> None:
        del self._members[cluster_id][doc_id]
        ids, vals = self._doc_slice(doc_id)
        w2 = self._w2[self._row[doc_id]]
        dot = float(self._rep[cluster_id, ids] @ vals)
        self._crpp[cluster_id] += -2.0 * dot + w2
        self._ss[cluster_id] -= w2
        self._rep[cluster_id, ids] -= vals
        self._sizes[cluster_id] -= 1
        if self._sizes[cluster_id] == 0:
            self._rep[cluster_id, :] = 0.0
            self._crpp[cluster_id] = 0.0
            self._ss[cluster_id] = 0.0
        self._refresh_coeffs(cluster_id)

    # -- gain queries -----------------------------------------------------

    def best_gain(self, doc_id: str) -> Tuple[int, float]:
        ids, vals = self._doc_slice(doc_id)
        cr = self._rep[:, ids] @ vals
        gains = self._gain_a * cr + self._gain_b
        best = int(np.argmax(gains))
        return best, float(gains[best])

    def best_gains(
        self, doc_ids: Sequence[str]
    ) -> List[Tuple[int, float]]:
        n = len(doc_ids)
        if n == 0:
            return []
        rows = np.fromiter(
            (self._row[d] for d in doc_ids), dtype=np.int64, count=n
        )
        best_out = np.empty(n, dtype=np.int64)
        gain_out = np.empty(n, dtype=np.float64)
        gains = np.empty(self.k, dtype=np.float64)
        block = self._block_size
        for start in range(0, n, block):
            stop = min(start + block, n)
            self._sweep_block(
                doc_ids[start:stop], rows[start:stop], gains,
                best_out[start:stop], gain_out[start:stop],
            )
        return list(zip(best_out.tolist(), gain_out.tolist()))

    def _block(
        self, block_rows: IntArray
    ) -> Tuple[Any, FloatArray]:
        """Block slice ``Xb`` and its Gram matrix, cached across passes.

        ``X`` is immutable for the engine's lifetime and every
        assignment pass sweeps the documents in the same order, so the
        (sparse-sparse, and therefore expensive) Gram products are paid
        once per fit instead of once per iteration. The cache is LRU —
        bounded to one full sweep's block count — so probing shifting
        document subsets over a long-lived engine recycles entries
        instead of accumulating a dense Gram block per block start.
        """
        nb = len(block_rows)
        first = int(block_rows[0])
        cached = self._block_cache.get(first)
        if cached is not None and np.array_equal(cached[0], block_rows):
            self._block_cache[first] = self._block_cache.pop(first)
            return cached[1], cached[2]
        if first + nb - 1 == int(block_rows[-1]) and np.array_equal(
            block_rows, np.arange(first, first + nb, dtype=np.int64)
        ):
            # the usual case (pass order == matrix order): a cheap slice
            # instead of the fancy-index extraction product
            Xb = self._X[first:first + nb]
        else:
            Xb = self._X[block_rows]
        Gb = (Xb @ Xb.T).toarray()
        while (
            first not in self._block_cache
            and len(self._block_cache) >= self._block_cache_limit
        ):
            self._block_cache.pop(next(iter(self._block_cache)))
        self._block_cache[first] = (block_rows.copy(), Xb, Gb)
        return Xb, Gb

    def _sweep_block(
        self,
        block_ids: Sequence[str],
        block_rows: IntArray,
        gains: FloatArray,
        best_out: IntArray,
        gain_out: FloatArray,
    ) -> None:
        """One block of the assignment sweep, answered by two matmuls.

        ``ST[p, i]`` starts as ``c⃗_p · w⃗_i`` against the block-entry
        representatives; every membership move inside the block folds
        the corresponding Gram row into the not-yet-processed columns,
        so each document sees exactly the representative state the
        sequential reference loop would have seen. Representative rows
        themselves are updated once per block from the accumulated
        moves (one sparse product), not per document.
        """
        nb = len(block_ids)
        Xb, Gb = self._block(block_rows)
        # cluster-major layout: the per-move correction touches one
        # contiguous row slice, and Gb is exactly symmetric (sorted
        # CSR indices), so its rows stand in for its columns
        ST = np.ascontiguousarray(np.asarray(Xb @ self._rep.T).T)
        move_cluster: List[int] = []
        move_idx: List[int] = []
        move_sign: List[float] = []
        emptied: Set[int] = set()
        assigned = self._assigned
        crpp, ss, sizes = self._crpp, self._ss, self._sizes
        members = self._members
        empty_docs = self._empty_docs
        w2s = self._w2
        gain_a, gain_b = self._gain_a, self._gain_b
        is_g = self._criterion == "g"
        w2_blk = [w2s[r] for r in block_rows.tolist()]
        i = 0
        spec_fails = 0
        while i < nb:
            # vectorised fast path over a run of net-stationary
            # documents; gives up for the block after three immediate
            # misses (e.g. the first pass, where every document moves)
            if spec_fails < 3 and nb - i > 16:
                advanced = self._speculate(
                    block_ids, i, ST, w2_blk, best_out, gain_out
                )
                if advanced:
                    spec_fails = 0
                    i += advanced
                    if i >= nb:
                        break
                else:
                    spec_fails += 1
            doc_id = block_ids[i]
            w2 = w2_blk[i]
            current = assigned.pop(doc_id, None)
            if current is not None:
                dot = float(ST[current, i])
                crpp[current] += -2.0 * dot + w2
                ss[current] -= w2
                n = sizes[current] - 1
                sizes[current] = n
                del members[current][doc_id]
                if n == 0:
                    crpp[current] = 0.0
                    ss[current] = 0.0
                    emptied.add(current)
                    gain_a[current] = 0.0
                    gain_b[current] = 0.0
                elif is_g:
                    if n == 1:
                        gain_a[current] = 2.0
                        gain_b[current] = 0.0
                    else:
                        gain_a[current] = 2.0 / n
                        gain_b[current] = \
                            -(crpp[current] - ss[current]) / (n * (n - 1))
                else:
                    diff = crpp[current] - ss[current]
                    gain_a[current] = 2.0 / (n * (n + 1))
                    avg_cur = diff / (n * (n - 1)) if n > 1 else 0.0
                    gain_b[current] = diff / (n * (n + 1)) - avg_cur
                ST[current, i] = dot - w2
                ST[current, i + 1:] -= Gb[i, i + 1:]
                move_cluster.append(current)
                move_idx.append(i)
                move_sign.append(-1.0)
            # the EngineBase contract (base.py): empty-vector documents
            # — and exactly those — decide (-1, NO_GAIN). Gating on the
            # membership set rather than `w2 <= 0.0` keeps parity with
            # the sequential engines for pathological non-empty vectors
            # whose self-similarity underflows to 0.0.
            if doc_id in empty_docs:
                best_out[i] = -1
                gain_out[i] = NO_GAIN
                i += 1
                continue
            np.multiply(gain_a, ST[:, i], out=gains)
            gains += gain_b
            best = int(np.argmax(gains))
            gain = float(gains[best])
            best_out[i] = best
            gain_out[i] = gain
            if gain > 0.0:
                dot = float(ST[best, i])
                crpp[best] += 2.0 * dot + w2
                ss[best] += w2
                n = sizes[best] + 1
                sizes[best] = n
                members[best][doc_id] = None
                assigned[doc_id] = best
                if is_g:
                    if n == 1:
                        gain_a[best] = 2.0
                        gain_b[best] = 0.0
                    else:
                        gain_a[best] = 2.0 / n
                        gain_b[best] = \
                            -(crpp[best] - ss[best]) / (n * (n - 1))
                else:
                    diff = crpp[best] - ss[best]
                    gain_a[best] = 2.0 / (n * (n + 1))
                    avg_cur = diff / (n * (n - 1)) if n > 1 else 0.0
                    gain_b[best] = diff / (n * (n + 1)) - avg_cur
                ST[best, i + 1:] += Gb[i, i + 1:]
                move_cluster.append(best)
                move_idx.append(i)
                move_sign.append(1.0)
            i += 1
        if move_idx:
            delta = (
                _sp.csr_matrix(
                    (
                        np.asarray(move_sign, dtype=np.float64),
                        (
                            np.asarray(move_cluster, dtype=np.int64),
                            np.asarray(move_idx, dtype=np.int64),
                        ),
                    ),
                    shape=(self.k, nb),
                )
                @ Xb
            ).tocsr()
            indptr, indices, data = delta.indptr, delta.indices, delta.data
            for cluster_id in set(move_cluster):
                lo, hi = indptr[cluster_id], indptr[cluster_id + 1]
                if lo != hi:
                    self._rep[cluster_id, indices[lo:hi]] += data[lo:hi]
        for cluster_id in emptied:
            if sizes[cluster_id] == 0:
                # clear the float residue, as the direct path does
                self._rep[cluster_id, :] = 0.0

    def _speculate(
        self,
        block_ids: Sequence[str],
        i0: int,
        ST: FloatArray,
        w2_blk: List[float],
        best_out: IntArray,
        gain_out: FloatArray,
    ) -> int:
        """Resolve a leading run of net-stationary documents at once.

        In converged iterations almost every document is removed,
        probed, and re-joins the cluster it came from — a net no-op on
        every cluster's accounting. This path evaluates the Eq. 25-26
        gains of all remaining documents in one broadcast (each with
        its own-cluster coefficients adjusted for its removal, exactly
        as the sequential loop computes them), records the decisions up
        to the first document that actually changes membership, and
        returns how many were resolved; the caller's sequential loop
        takes over at the first net mover. Returns 0 when the very next
        document moves.
        """
        assigned = self._assigned
        stop_at = min(i0 + SPECULATE_WINDOW, ST.shape[1])
        STv = ST[:, i0:stop_at]
        m = STv.shape[1]
        ids = block_ids[i0:stop_at]
        cur = np.fromiter(
            (assigned.get(d, -1) for d in ids), dtype=np.int64, count=m
        )
        w2v = np.asarray(w2_blk[i0:stop_at], dtype=np.float64)
        G = self._gain_a[:, None] * STv
        G += self._gain_b[:, None]
        asg = cur >= 0
        if asg.any():
            j = np.flatnonzero(asg)
            c = cur[j]
            dots = STv[c, j]
            w2a = w2v[j]
            crpp1 = np.asarray(self._crpp)[c] + (-2.0 * dots + w2a)
            ss1 = np.asarray(self._ss)[c] - w2a
            n1 = np.asarray(self._sizes)[c] - 1
            dprime = dots - w2a
            if self._criterion == "g":
                a_ = 2.0 / np.maximum(n1, 1)
                b_ = -(crpp1 - ss1) / np.maximum(n1 * (n1 - 1), 1)
                g_own = np.where(
                    n1 <= 0, 0.0,
                    np.where(n1 == 1, 2.0 * dprime, a_ * dprime + b_),
                )
            else:
                diff = crpp1 - ss1
                d1 = np.maximum(n1 * (n1 + 1), 1)
                a_ = 2.0 / d1
                avg_cur = np.where(
                    n1 > 1, diff / np.maximum(n1 * (n1 - 1), 1), 0.0
                )
                b_ = diff / d1 - avg_cur
                g_own = np.where(n1 <= 0, 0.0, a_ * dprime + b_)
            G[c, j] = g_own
        best0 = np.argmax(G, axis=0)
        gain0 = G[best0, np.arange(m)]
        # same membership-set gate as the sequential path (base.py)
        empty_docs = self._empty_docs
        empty = np.fromiter(
            (d in empty_docs for d in ids), dtype=bool, count=m
        )
        join = gain0 > 0.0
        moved = np.where(asg, (best0 != cur) | ~join, join & ~empty)
        movers = np.flatnonzero(moved)
        stop = int(movers[0]) if movers.size else m
        if stop == 0:
            return 0
        b_seg, g_seg = best0[:stop], gain0[:stop]
        e = empty[:stop]
        if e.any():
            b_seg, g_seg = b_seg.copy(), g_seg.copy()
            b_seg[e] = -1
            g_seg[e] = NO_GAIN
        best_out[i0:i0 + stop] = b_seg
        gain_out[i0:i0 + stop] = g_seg
        # the reference loop's remove+re-add cycles a stationary doc to
        # the end of its cluster's member dict; preserve that order so
        # members() stays identical to the dense engine's
        members = self._members
        cur_l = cur[:stop].tolist()
        for off in range(stop):
            cluster_id = cur_l[off]
            if cluster_id >= 0:
                doc_id = ids[off]
                cluster_members = members[cluster_id]
                del cluster_members[doc_id]
                cluster_members[doc_id] = None
        return stop

    # -- global queries ---------------------------------------------------

    def sizes(self) -> List[int]:
        return list(self._sizes)

    def refresh(self) -> None:
        fresh = np.einsum("ij,ij->i", self._rep, self._rep)
        self._crpp = [float(value) for value in fresh]
        for cluster_id in range(self.k):
            self._refresh_coeffs(cluster_id)

    def contributions(self) -> List[float]:
        result: List[float] = []
        for cluster_id in range(self.k):
            size = self._sizes[cluster_id]
            if size < 2:
                result.append(0.0)
            else:
                result.append(
                    (self._crpp[cluster_id] - self._ss[cluster_id])
                    / (size - 1)
                )
        return result

    def clustering_index(self) -> float:
        return float(sum(self.contributions()))

    def members(self) -> List[List[str]]:
        return [list(members.keys()) for members in self._members]

    def self_similarity(self, doc_id: str) -> float:
        return self._w2[self._row[doc_id]]
