"""Shared configuration for the clustering pipelines.

:class:`IncrementalClusterer` and :class:`NonIncrementalClusterer` are
compared head-to-head throughout the paper's experiments, so they must
run with *identical* K-means settings. :class:`ClustererConfig` captures
the parameters common to both pipelines in one value object that can be
built once and handed to each::

    config = ClustererConfig(k=32, seed=1998, engine="matrix")
    incremental = IncrementalClusterer(model, config)
    baseline = NonIncrementalClusterer(model, config)

Pipeline-specific switches (``warm_start``, ``rescue_outliers``) stay
keyword arguments on the individual constructors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs import Recorder


@dataclass(frozen=True)
class ClustererConfig:
    """K-means parameters shared by both clustering pipelines.

    Attributes mirror the :class:`~repro.core.NoveltyKMeans` surface:

    ``k``
        Number of clusters (required, positive).
    ``delta``
        Convergence threshold on the relative ``G`` improvement
        (paper Section 4.3), in ``(0, 1)``.
    ``max_iterations``
        Upper bound on repetition-process iterations per fit.
    ``seed``
        Seed for the initial random assignment (``None`` = fresh
        randomness per fit).
    ``engine``
        Name of a registered numerical engine
        (see :mod:`repro.core.engines`): ``"sparse"``, ``"dense"``
        (default), ``"matrix"``, or ``"pruned"``. All four are
        assignment-identical; they differ only in speed and
        dependencies.
    ``statistics_backend``
        Name of a registered corpus-statistics storage backend
        (see :mod:`repro.forgetting.backends`).
    ``recorder``
        Observability sink shared by the pipeline and its K-means.

    Use :func:`dataclasses.replace` to derive variants::

        fast = dataclasses.replace(config, engine="matrix")
    """

    k: int
    delta: float = 0.01
    max_iterations: int = 30
    seed: Optional[int] = None
    engine: str = "dense"
    statistics_backend: str = "dict"
    recorder: Optional[Recorder] = None


_UNSET: Any = object()

#: Positional parameter order of the pre-config constructors (after
#: ``model``). Positional calls no longer resolve — they raise
#: ``TypeError`` — but the order is kept so the error can tell the
#: caller which keyword each stray positional maps to.
LEGACY_INCREMENTAL_ORDER: Tuple[str, ...] = (
    "k", "delta", "max_iterations", "seed", "engine",
    "warm_start", "rescue_outliers", "recorder",
)
LEGACY_NONINCREMENTAL_ORDER: Tuple[str, ...] = (
    "k", "delta", "max_iterations", "seed", "engine", "recorder",
)


def resolve_clusterer_config(
    cls_name: str,
    args: Sequence[Any],
    config: Optional[ClustererConfig],
    keyword_values: Dict[str, Any],
    legacy_order: Tuple[str, ...],
    extra_defaults: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge a constructor's inputs into one parameter dict.

    ``args`` are positional arguments beyond ``model``; a leading
    :class:`ClustererConfig` is accepted there (the blessed call shape).
    Anything further is the pre-config positional protocol, removed
    after its deprecation cycle — it now raises :class:`TypeError` with
    a migration hint. Precedence, lowest to highest: dataclass defaults
    < ``config`` fields < explicit keywords. ``keyword_values`` entries
    equal to :data:`_UNSET` mean "not passed".
    """
    positionals = list(args)
    if positionals and isinstance(positionals[0], ClustererConfig):
        if config is not None:
            raise ConfigurationError(
                f"{cls_name}: config passed both positionally and as "
                f"config= keyword"
            )
        config = positionals.pop(0)
    if positionals:
        hint = ", ".join(
            f"{name}=..." for name in legacy_order[: len(positionals)]
        )
        raise TypeError(
            f"{cls_name} no longer accepts positional arguments beyond "
            f"'model' (they were deprecated, now removed). Pass a "
            f"ClustererConfig — {cls_name}(model, ClustererConfig(k=...)) "
            f"— or keyword arguments ({hint}); applications should "
            f"construct pipelines via repro.api.open_stream()"
        )

    resolved: Dict[str, Any] = {
        field.name: (
            None if field.default is dataclasses.MISSING else field.default
        )
        for field in dataclasses.fields(ClustererConfig)
    }
    resolved.update(extra_defaults or {})
    if config is not None:
        for field in dataclasses.fields(ClustererConfig):
            resolved[field.name] = getattr(config, field.name)
    for name, value in keyword_values.items():
        if value is not _UNSET:
            resolved[name] = value
    if resolved.get("k") in (None, _UNSET):
        raise ConfigurationError(
            f"{cls_name}: k is required (pass k= or a ClustererConfig)"
        )
    return resolved
