"""Novelty-based document similarity (paper Section 3).

Two equivalent computations are provided:

* :meth:`NoveltySimilarity.similarity` — the factorised form of Eq. 16,
  a dot product of weighted vectors ``w⃗_i · w⃗_j``. This is the form the
  clustering algorithm uses.
* :meth:`NoveltySimilarity.similarity_probabilistic` — the direct
  probabilistic form of Eq. 11,

      sim(d_i,d_j) ≃ Pr(d_i)·Pr(d_j) / (len_i·len_j) · Σ_k f_ik·f_jk/Pr(t_k)

  kept as an independently-coded oracle; the test suite asserts the two
  agree to floating-point tolerance on random corpora.

The similarity is a co-occurrence *probability*, not a cosine: it is not
bounded by 1 and decays quadratically as documents age (both ``Pr(d)``
factors shrink). That asymmetry against old documents is the paper's
entire point.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..corpus.document import Document
from ..forgetting.statistics import CorpusStatistics
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter


class NoveltySimilarity:
    """Similarity oracle bound to one statistics snapshot."""

    def __init__(
        self,
        statistics: CorpusStatistics,
        weighter: Optional[NoveltyTfidfWeighter] = None,
    ) -> None:
        self.statistics = statistics
        self.weighter = (
            weighter if weighter is not None
            else NoveltyTfidfWeighter(statistics)
        )
        self._vector_cache: Dict[str, SparseVector] = {}

    # -- factorised form (Eq. 16) ------------------------------------------

    def weighted_vector(self, document: Document) -> SparseVector:
        """Cached ``w⃗_i``; see :class:`NoveltyTfidfWeighter`."""
        vector = self._vector_cache.get(document.doc_id)
        if vector is None:
            vector = self.weighter.weighted_vector(document)
            self._vector_cache[document.doc_id] = vector
        return vector

    def similarity(self, first: Document, second: Document) -> float:
        """``sim(d_i, d_j) = w⃗_i · w⃗_j`` (Eq. 16, factorised)."""
        return self.weighted_vector(first).dot(self.weighted_vector(second))

    def self_similarity(self, document: Document) -> float:
        """``sim(d_i, d_i)`` — a term of ``ss(C_p)`` (Eq. 23)."""
        vector = self.weighted_vector(document)
        return vector.dot(vector)

    # -- direct probabilistic form (Eq. 11) ---------------------------------

    def similarity_probabilistic(
        self, first: Document, second: Document
    ) -> float:
        """Direct evaluation of Eq. 11; an oracle for testing Eq. 16."""
        if first.length == 0 or second.length == 0:
            return 0.0
        stats = self.statistics
        pr_i = stats.pr_document(first.doc_id)
        pr_j = stats.pr_document(second.doc_id)
        total = 0.0
        # iterate the shorter document's terms
        small, large = first, second
        if len(small.term_counts) > len(large.term_counts):
            small, large = large, small
        for term_id, f_small in small.term_counts.items():
            f_large = large.term_counts.get(term_id)
            if not f_large:
                continue
            pr_t = stats.pr_term(term_id)
            if pr_t <= 0.0:
                continue
            total += f_small * f_large / pr_t
        return pr_i * pr_j * total / (first.length * second.length)

    # -- batch helpers --------------------------------------------------------

    def pairwise_matrix(
        self, documents: Iterable[Document]
    ) -> Dict[str, Dict[str, float]]:
        """Dense pairwise similarity table keyed by doc id (small inputs)."""
        docs = list(documents)
        matrix: Dict[str, Dict[str, float]] = {d.doc_id: {} for d in docs}
        for i, first in enumerate(docs):
            for second in docs[i:]:
                value = self.similarity(first, second)
                matrix[first.doc_id][second.doc_id] = value
                matrix[second.doc_id][first.doc_id] = value
        return matrix

    def invalidate(self) -> None:
        """Drop caches after the underlying statistics changed."""
        self._vector_cache.clear()
        self.weighter.invalidate()
