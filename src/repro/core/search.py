"""Query -> cluster retrieval over novelty-weighted representatives.

A monitoring UI needs "show me the clusters about X". The searcher
embeds a free-text query with the same pipeline and novelty idf the
clusters were built with, and ranks clusters by cosine between the
query vector and each (normalised) cluster representative. Because the
representatives are ``Pr(d)``-weighted sums, recently active clusters
score higher for equally matching content — search inherits the
novelty bias for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..corpus.document import Document
from ..forgetting.statistics import CorpusStatistics
from ..text.pipeline import TextPipeline
from ..text.vocabulary import Vocabulary
from ..vectors.sparse import SparseVector
from ..vectors.tfidf import NoveltyTfidfWeighter
from .result import ClusteringResult


@dataclass(frozen=True)
class SearchHit:
    """One retrieved cluster."""

    cluster_id: int
    score: float            # cosine in [0, 1]
    size: int
    matched_terms: Tuple[str, ...]


class ClusterSearcher:
    """Rank a clustering's clusters against free-text queries.

    Representatives are built once at construction; rebuild the
    searcher after re-clustering.

    >>> searcher = ClusterSearcher(result, docs, stats, vocabulary)  # doctest: +SKIP
    >>> searcher.search("asian economy crisis")[0].cluster_id         # doctest: +SKIP
    """

    def __init__(
        self,
        result: ClusteringResult,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
        vocabulary: Vocabulary,
        pipeline: Optional[TextPipeline] = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.pipeline = pipeline if pipeline is not None else TextPipeline()
        self._weighter = NoveltyTfidfWeighter(statistics)
        by_id = {doc.doc_id: doc for doc in documents}
        self._representatives: Dict[int, SparseVector] = {}
        self._sizes: Dict[int, int] = {}
        for cluster_id, member_ids in result.non_empty_clusters():
            members = [by_id[m] for m in member_ids if m in by_id]
            representative = self._weighter.representative(
                members, normalized=True
            )
            if representative:
                self._representatives[cluster_id] = representative
                self._sizes[cluster_id] = len(member_ids)

    def query_vector(self, query: str) -> SparseVector:
        """Unit tf·idf vector of ``query`` (novelty idf; unknown or
        zero-information terms drop out)."""
        counts = self.pipeline.term_frequencies(query)
        weighted: Dict[int, float] = {}
        for term, count in counts.items():
            term_id = self.vocabulary.get(term)
            if term_id < 0:
                continue
            idf = self._weighter.idf(term_id)
            if idf > 0.0:
                weighted[term_id] = count * idf
        return SparseVector(weighted).normalized()

    def search(self, query: str, limit: int = 5) -> List[SearchHit]:
        """Top-``limit`` clusters for ``query``, best first.

        Clusters with zero overlap are omitted, so fewer than ``limit``
        hits (or none) may return.
        """
        require_positive_int("limit", limit)
        vector = self.query_vector(query)
        if not vector:
            return []
        query_terms = set(vector.keys())
        hits: List[SearchHit] = []
        for cluster_id, representative in self._representatives.items():
            score = representative.dot(vector)
            if score <= 0.0:
                continue
            matched = tuple(
                self.vocabulary.term(term_id)
                for term_id in sorted(
                    query_terms & set(representative.keys()),
                    key=lambda t: -(representative[t] * vector[t]),
                )
            )
            hits.append(SearchHit(
                cluster_id=cluster_id,
                score=score,
                size=self._sizes[cluster_id],
                matched_terms=matched,
            ))
        hits.sort(key=lambda hit: (-hit.score, hit.cluster_id))
        return hits[:limit]
