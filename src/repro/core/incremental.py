"""Incremental and non-incremental clustering pipelines (paper Section 5.2).

:class:`IncrementalClusterer` is the paper's proposal: each arriving
batch (a "time window" of news) triggers

1. incorporation of the new documents into the statistics,
2. expiry of documents whose weight fell below ``ε = λ^γ``,
3. an incremental statistics update (Eq. 27-29), and
4. a warm-started run of the extended K-means, reusing the previous
   clustering's membership/representatives as the initial state.

:class:`NonIncrementalClusterer` is the baseline it is compared to in
Experiment 1: at every batch it recomputes all statistics from scratch
over the full (non-expired) archive and cold-starts the clustering from
random seeds.

Both expose the same ``process_batch`` interface and record per-phase
timings on the returned :class:`~repro.core.ClusteringResult`, which is
what the Table 1 benchmark measures.
"""

from __future__ import annotations

import dataclasses
import time as time_module
from typing import Dict, Iterable, List, Optional

from ..corpus.document import Document
from ..exceptions import ClusteringError
from ..forgetting.model import ForgettingModel
from ..forgetting.statistics import CorpusStatistics
from .kmeans import NoveltyKMeans
from .result import ClusteringResult


class IncrementalClusterer:
    """Stateful on-line clusterer with incremental statistics + warm start.

    >>> model = ForgettingModel(half_life=7.0, life_span=14.0)
    >>> clusterer = IncrementalClusterer(model, k=4, seed=0)  # doctest: +SKIP
    >>> result = clusterer.process_batch(monday_docs, at_time=0.0)  # doctest: +SKIP
    """

    def __init__(
        self,
        model: ForgettingModel,
        k: int,
        delta: float = 0.01,
        max_iterations: int = 30,
        seed: Optional[int] = None,
        engine: str = "dense",
        warm_start: bool = True,
        rescue_outliers: bool = True,
    ) -> None:
        self.model = model
        # rescue_outliers defaults on here (unlike NoveltyKMeans): under
        # warm starts an emerging topic would otherwise never obtain a
        # cluster slot; see NoveltyKMeans for the mechanism.
        self.kmeans = NoveltyKMeans(
            k=k,
            delta=delta,
            max_iterations=max_iterations,
            seed=seed,
            engine=engine,
            rescue_outliers=rescue_outliers,
        )
        self.warm_start = bool(warm_start)
        self.statistics = CorpusStatistics(model)
        self.history: List[ClusteringResult] = []
        self._assignment: Dict[str, int] = {}

    @property
    def last_result(self) -> Optional[ClusteringResult]:
        return self.history[-1] if self.history else None

    def process_batch(
        self, documents: Iterable[Document], at_time: float
    ) -> ClusteringResult:
        """Ingest a batch arriving at ``at_time`` and re-cluster.

        Returns the new clustering; ``result.timings`` holds the
        ``"statistics"`` (incremental update + expiry) and
        ``"clustering"`` phase durations in seconds.
        """
        batch = list(documents)
        if not (self.warm_start and self._assignment):
            # a cold start needs at least k documents; check before the
            # statistics are mutated, or a failed batch would poison
            # the state (the documents would already be ingested)
            if self.statistics.size + len(batch) < self.kmeans.k:
                raise ClusteringError(
                    f"cold start needs at least k={self.kmeans.k} "
                    f"documents; have {self.statistics.size} active "
                    f"+ {len(batch)} new"
                )
        stats_start = time_module.perf_counter()
        self.statistics.observe(batch, at_time)
        expired = self.statistics.expire()
        for doc in expired:
            self._assignment.pop(doc.doc_id, None)
        stats_elapsed = time_module.perf_counter() - stats_start

        active = self.statistics.documents()
        if not active:
            raise ClusteringError(
                f"no active documents at t={at_time} "
                f"(all expired; life_span={self.model.life_span})"
            )
        initial = (
            dict(self._assignment)
            if self.warm_start and self._assignment
            else None
        )
        result = self.kmeans.fit(active, self.statistics, initial)
        self._assignment = result.assignments()

        timings = dict(result.timings)
        timings["statistics"] = stats_elapsed
        result = dataclasses.replace(result, timings=timings)
        self.history.append(result)
        return result

    def assignments(self) -> Dict[str, int]:
        """Current ``doc_id -> cluster_id`` map (copy)."""
        return dict(self._assignment)


class NonIncrementalClusterer:
    """From-scratch baseline: full statistics rebuild + cold start per batch.

    Keeps the complete archive of every document ever seen; at each
    batch the statistics are recomputed over the archive (applying
    expiry during the rebuild) and clustering starts from fresh random
    seeds — the paper's "non-incremental version".
    """

    def __init__(
        self,
        model: ForgettingModel,
        k: int,
        delta: float = 0.01,
        max_iterations: int = 30,
        seed: Optional[int] = None,
        engine: str = "dense",
    ) -> None:
        self.model = model
        self.kmeans = NoveltyKMeans(
            k=k,
            delta=delta,
            max_iterations=max_iterations,
            seed=seed,
            engine=engine,
        )
        self.archive: List[Document] = []
        self.statistics: Optional[CorpusStatistics] = None
        self.history: List[ClusteringResult] = []

    @property
    def last_result(self) -> Optional[ClusteringResult]:
        return self.history[-1] if self.history else None

    def process_batch(
        self, documents: Iterable[Document], at_time: float
    ) -> ClusteringResult:
        """Add ``documents`` to the archive and rebuild everything.

        A batch whose clustering fails is rolled out of the archive, so
        the same documents can be re-sent with a later batch.
        """
        batch = list(documents)
        self.archive.extend(batch)

        try:
            stats_start = time_module.perf_counter()
            self.statistics = CorpusStatistics.from_scratch(
                self.model, self.archive, at_time
            )
            stats_elapsed = time_module.perf_counter() - stats_start

            active = self.statistics.documents()
            if not active:
                raise ClusteringError(
                    f"no active documents at t={at_time} "
                    f"(all expired; life_span={self.model.life_span})"
                )
            result = self.kmeans.fit(active, self.statistics)
        except Exception:
            del self.archive[len(self.archive) - len(batch):]
            raise

        timings = dict(result.timings)
        timings["statistics"] = stats_elapsed
        result = dataclasses.replace(result, timings=timings)
        self.history.append(result)
        return result
