"""Incremental and non-incremental clustering pipelines (paper Section 5.2).

:class:`IncrementalClusterer` is the paper's proposal: each arriving
batch (a "time window" of news) triggers

1. incorporation of the new documents into the statistics,
2. expiry of documents whose weight fell below ``ε = λ^γ``,
3. an incremental statistics update (Eq. 27-29), and
4. a warm-started run of the extended K-means, reusing the previous
   clustering's membership/representatives as the initial state.

:class:`NonIncrementalClusterer` is the baseline it is compared to in
Experiment 1: at every batch it recomputes all statistics from scratch
over the full (non-expired) archive and cold-starts the clustering from
random seeds.

Both expose the same ``process_batch`` interface and record per-phase
timings on the returned :class:`~repro.core.ClusteringResult`, which is
what the Table 1 benchmark measures.

**Batch ingestion is transactional** in both pipelines: a batch either
fully updates the state (statistics, assignments, archive, history) or
leaves it exactly as it was. Rejections — a future-dated or duplicate
document, the cold-start guard, a clustering failure — restore the
pre-batch state, so the corrected batch can simply be re-sent.

Both pipelines emit structured observability events (phase spans,
batch counters, the warm-start reuse ratio) through :mod:`repro.obs`;
pass ``recorder=`` or install an ambient recorder to collect them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..corpus.document import Document
from ..exceptions import ClusteringError
from ..forgetting.model import ForgettingModel
from ..forgetting.statistics import CorpusStatistics
from ..obs import Recorder, Span, resolve
from .config import (
    _UNSET,
    LEGACY_INCREMENTAL_ORDER,
    LEGACY_NONINCREMENTAL_ORDER,
    ClustererConfig,
    resolve_clusterer_config,
)
from .kmeans import NoveltyKMeans
from .result import ClusteringResult

#: Callback invoked with ``(batch, at_time)`` after a batch commits.
CommitHook = Callable[[List[Document], float], None]


class IncrementalClusterer:
    """Stateful on-line clusterer with incremental statistics + warm start.

    >>> model = ForgettingModel(half_life=7.0, life_span=14.0)
    >>> clusterer = IncrementalClusterer(model, k=4, seed=0)  # doctest: +SKIP
    >>> result = clusterer.process_batch(monday_docs, at_time=0.0)  # doctest: +SKIP

    The K-means parameters shared with the non-incremental baseline can
    be packaged once in a :class:`~repro.core.ClustererConfig` and
    passed as the second argument (or ``config=``); pipeline-specific
    switches (``warm_start``, ``rescue_outliers``) stay keywords.
    Positional arguments beyond ``model`` (the pre-config signature)
    are no longer accepted and raise :class:`TypeError`; applications
    should construct pipelines via :func:`repro.api.open_stream` (or
    :func:`repro.api.build_clusterer` for batch experiments).
    """

    def __init__(
        self,
        model: ForgettingModel,
        *args: Any,
        config: Optional[ClustererConfig] = None,
        k: Any = _UNSET,
        delta: Any = _UNSET,
        max_iterations: Any = _UNSET,
        seed: Any = _UNSET,
        engine: Any = _UNSET,
        statistics_backend: Any = _UNSET,
        warm_start: Any = _UNSET,
        rescue_outliers: Any = _UNSET,
        recorder: Any = _UNSET,
    ) -> None:
        params = resolve_clusterer_config(
            "IncrementalClusterer",
            args,
            config,
            {
                "k": k, "delta": delta, "max_iterations": max_iterations,
                "seed": seed, "engine": engine,
                "statistics_backend": statistics_backend,
                "warm_start": warm_start,
                "rescue_outliers": rescue_outliers, "recorder": recorder,
            },
            LEGACY_INCREMENTAL_ORDER,
            extra_defaults={"warm_start": True, "rescue_outliers": True},
        )
        self.model = model
        self.recorder = resolve(params["recorder"])
        # rescue_outliers defaults on here (unlike NoveltyKMeans): under
        # warm starts an emerging topic would otherwise never obtain a
        # cluster slot; see NoveltyKMeans for the mechanism.
        self.kmeans = NoveltyKMeans(
            k=params["k"],
            delta=params["delta"],
            max_iterations=params["max_iterations"],
            seed=params["seed"],
            engine=params["engine"],
            rescue_outliers=params["rescue_outliers"],
            recorder=self.recorder,
        )
        self.warm_start = bool(params["warm_start"])
        self.statistics = CorpusStatistics(
            model,
            recorder=self.recorder,
            backend=params["statistics_backend"],
        )
        self.history: List[ClusteringResult] = []
        self._assignment: Dict[str, int] = {}
        self._commit_hooks: List[CommitHook] = []

    @property
    def last_result(self) -> Optional[ClusteringResult]:
        return self.history[-1] if self.history else None

    def add_commit_hook(self, hook: CommitHook) -> None:
        """Register ``hook(batch, at_time)``, called after a batch commits.

        Hooks run only once the transactional ingestion has fully
        succeeded (statistics, assignments, and history updated), so a
        hook observes exactly the batches the in-memory state contains
        — which is what lets :class:`repro.durability.Checkpointer`
        journal accepted batches without ever journaling a rolled-back
        one. A hook failure propagates to the caller; the batch itself
        stays committed.
        """
        self._commit_hooks.append(hook)

    def set_recorder(self, recorder: Optional[Recorder]) -> None:
        """Attach ``recorder`` to the pipeline and all its components.

        Useful after :func:`repro.persistence.load_checkpoint`, which
        builds the pipeline before a trace sink exists.
        """
        resolved = resolve(recorder)
        self.recorder = resolved
        self.kmeans.recorder = resolved
        self.statistics.recorder = resolved

    def process_batch(
        self, documents: Iterable[Document], at_time: float
    ) -> ClusteringResult:
        """Ingest a batch arriving at ``at_time`` and re-cluster.

        Returns the new clustering; ``result.timings`` holds the
        ``"statistics"`` (incremental update + expiry),
        ``"vectorisation"``, and ``"clustering"`` phase durations in
        seconds.

        The ingestion is transactional: if the batch is invalid, the
        cold-start guard fires, or the clustering itself fails, the
        statistics and assignments are restored to their pre-batch
        state before the exception propagates, so the same (corrected)
        documents can be re-sent with a later batch.
        """
        batch = list(documents)
        if not (self.warm_start and self._assignment):
            # cheap pre-check before any mutation: a cold start can
            # never succeed with fewer than k documents overall
            if self.statistics.size + len(batch) < self.kmeans.k:
                raise ClusteringError(
                    f"cold start needs at least k={self.kmeans.k} "
                    f"documents; have {self.statistics.size} active "
                    f"+ {len(batch)} new"
                )
        # transaction snapshot: clone() shares immutable documents and
        # only copies the backend's bookkeeping (weights, term masses,
        # document registry, insertion order) — far cheaper than the
        # decay pass observe() is about to do over the same entries
        snapshot = self.statistics.clone()
        previous_assignment = dict(self._assignment)
        try:
            with Span(self.recorder, "pipeline.statistics",
                      {"batch": len(batch)}) as stats_span:
                self.statistics.observe(batch, at_time)
                expired = self.statistics.expire()
                for doc in expired:
                    self._assignment.pop(doc.doc_id, None)

            active = self.statistics.documents()
            warm = self.warm_start and bool(self._assignment)
            if not warm and len(active) < self.kmeans.k:
                # step 2 can expire both old documents and backdated
                # batch members, so the pre-check above is not enough:
                # re-check the *active* count or NoveltyKMeans.fit
                # would raise after the statistics were mutated
                raise ClusteringError(
                    f"cold start needs at least k={self.kmeans.k} active "
                    f"documents after expiry at t={at_time}; have "
                    f"{len(active)} (life_span={self.model.life_span})"
                )
            if not active:
                raise ClusteringError(
                    f"no active documents at t={at_time} "
                    f"(all expired; life_span={self.model.life_span})"
                )
            initial = dict(self._assignment) if warm else None
            if self.recorder.enabled and initial is not None:
                self.recorder.gauge(
                    "pipeline.warm_start_reuse",
                    len(initial) / len(active),
                )
            with Span(self.recorder, "pipeline.clustering",
                      {"docs": len(active)}):
                result = self.kmeans.fit(active, self.statistics, initial)
        except Exception:
            # roll the whole batch back: statistics, clock, and
            # assignments return to their pre-batch state
            self.statistics = snapshot
            self._assignment = previous_assignment
            if self.recorder.enabled:
                self.recorder.counter("pipeline.batches_rejected")
            raise
        self._assignment = result.assignments()

        timings = dict(result.timings)
        timings["statistics"] = stats_span.duration
        result = dataclasses.replace(result, timings=timings)
        self.history.append(result)
        if self.recorder.enabled:
            self.recorder.counter("pipeline.batches")
        for hook in self._commit_hooks:
            hook(batch, at_time)
        return result

    def assignments(self) -> Dict[str, int]:
        """Current ``doc_id -> cluster_id`` map (copy)."""
        return dict(self._assignment)


class NonIncrementalClusterer:
    """From-scratch baseline: full statistics rebuild + cold start per batch.

    Keeps the complete archive of every document ever seen; at each
    batch the statistics are recomputed over the archive (applying
    expiry during the rebuild) and clustering starts from fresh random
    seeds — the paper's "non-incremental version".
    """

    def __init__(
        self,
        model: ForgettingModel,
        *args: Any,
        config: Optional[ClustererConfig] = None,
        k: Any = _UNSET,
        delta: Any = _UNSET,
        max_iterations: Any = _UNSET,
        seed: Any = _UNSET,
        engine: Any = _UNSET,
        statistics_backend: Any = _UNSET,
        recorder: Any = _UNSET,
    ) -> None:
        params = resolve_clusterer_config(
            "NonIncrementalClusterer",
            args,
            config,
            {
                "k": k, "delta": delta, "max_iterations": max_iterations,
                "seed": seed, "engine": engine,
                "statistics_backend": statistics_backend,
                "recorder": recorder,
            },
            LEGACY_NONINCREMENTAL_ORDER,
        )
        self.model = model
        self.recorder = resolve(params["recorder"])
        self.kmeans = NoveltyKMeans(
            k=params["k"],
            delta=params["delta"],
            max_iterations=params["max_iterations"],
            seed=params["seed"],
            engine=params["engine"],
            recorder=self.recorder,
        )
        self.statistics_backend = str(params["statistics_backend"])
        self.archive: List[Document] = []
        self.statistics: Optional[CorpusStatistics] = None
        self.history: List[ClusteringResult] = []

    @property
    def last_result(self) -> Optional[ClusteringResult]:
        return self.history[-1] if self.history else None

    def set_recorder(self, recorder: Optional[Recorder]) -> None:
        """Attach ``recorder`` to the pipeline and all its components."""
        resolved = resolve(recorder)
        self.recorder = resolved
        self.kmeans.recorder = resolved
        if self.statistics is not None:
            self.statistics.recorder = resolved

    def process_batch(
        self, documents: Iterable[Document], at_time: float
    ) -> ClusteringResult:
        """Add ``documents`` to the archive and rebuild everything.

        A batch whose rebuild or clustering fails is rolled out of the
        archive *and* ``self.statistics`` is restored to the previous
        rebuild, so archive and statistics stay consistent and the
        same documents can be re-sent with a later batch.
        """
        batch = list(documents)
        self.archive.extend(batch)
        previous_statistics = self.statistics

        try:
            with Span(self.recorder, "pipeline.statistics",
                      {"batch": len(batch)}) as stats_span:
                self.statistics = CorpusStatistics.from_scratch(
                    self.model, self.archive, at_time,
                    recorder=self.recorder,
                    backend=self.statistics_backend,
                )

            active = self.statistics.documents()
            if not active:
                raise ClusteringError(
                    f"no active documents at t={at_time} "
                    f"(all expired; life_span={self.model.life_span})"
                )
            with Span(self.recorder, "pipeline.clustering",
                      {"docs": len(active)}):
                result = self.kmeans.fit(active, self.statistics)
        except Exception:
            del self.archive[len(self.archive) - len(batch):]
            self.statistics = previous_statistics
            if self.recorder.enabled:
                self.recorder.counter("pipeline.batches_rejected")
            raise

        timings = dict(result.timings)
        timings["statistics"] = stats_span.duration
        result = dataclasses.replace(result, timings=timings)
        self.history.append(result)
        if self.recorder.enabled:
            self.recorder.counter("pipeline.batches")
        return result
