"""Cluster state with representative-based O(1) average similarity.

Implements the paper's Section 4.2 (clustering index terms) and 4.4
(efficient calculation using cluster representatives, Eq. 19-26).

A cluster maintains:

* ``representative`` — ``c⃗_p = Σ_{d∈C_p} w⃗_d`` (Eq. 19-20, where
  ``w⃗_d = (Pr(d)/len_d)·d⃗`` is the weighted document vector),
* ``self_similarity`` — ``cr_sim(C_p, C_p) = c⃗_p · c⃗_p`` (Eq. 21),
  maintained incrementally on add/remove,
* ``ss`` — ``Σ_{d∈C_p} sim(d, d)`` (Eq. 23),

from which the intra-cluster average similarity (Eq. 24) is

    avg_sim(C_p) = (cr_sim(C_p,C_p) - ss(C_p)) / (|C_p|·(|C_p|-1))

and the *what-if-appended* value (Eq. 26) is one sparse dot product.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import UnknownDocumentError
from ..vectors.sparse import SparseVector


class Cluster:
    """A mutable document cluster with representative-based accounting.

    Membership is tracked as ``doc_id -> w⃗_d`` so removal does not need
    an external vector lookup, mirroring the paper's requirement that
    append *and* delete be O(doc terms).
    """

    __slots__ = (
        "cluster_id",
        "_members",
        "_representative",
        "_self_similarity",
        "_ss",
    )

    def __init__(self, cluster_id: int) -> None:
        self.cluster_id = cluster_id
        self._members: Dict[str, SparseVector] = {}
        self._representative = SparseVector()
        self._self_similarity = 0.0  # cr_sim(C_p, C_p), Eq. 21
        self._ss = 0.0               # ss(C_p), Eq. 23

    # -- membership -----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._members

    def member_ids(self) -> List[str]:
        """Document ids in insertion order."""
        return list(self._members.keys())

    def member_vector(self, doc_id: str) -> SparseVector:
        try:
            return self._members[doc_id]
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not in cluster {self.cluster_id}"
            ) from None

    @property
    def is_empty(self) -> bool:
        return not self._members

    # -- accounting (Eq. 19-24) -------------------------------------------

    @property
    def representative(self) -> SparseVector:
        """``c⃗_p`` (Eq. 19-20). Treat as read-only."""
        return self._representative

    @property
    def self_similarity(self) -> float:
        """``cr_sim(C_p, C_p)`` (Eq. 21-22), incrementally maintained."""
        return self._self_similarity

    @property
    def ss(self) -> float:
        """``ss(C_p) = Σ sim(d, d)`` (Eq. 23)."""
        return self._ss

    def avg_sim(self) -> float:
        """Intra-cluster average similarity (Eq. 24); 0 for |C| < 2."""
        n = len(self._members)
        if n < 2:
            return 0.0
        return (self._self_similarity - self._ss) / (n * (n - 1))

    def index_contribution(self) -> float:
        """This cluster's term of the clustering index ``G`` (Eq. 17)."""
        return self.size * self.avg_sim()

    # -- mutation ------------------------------------------------------------

    def add(self, doc_id: str, weighted_vector: SparseVector) -> None:
        """Append one document. O(nnz of the document vector)."""
        if doc_id in self._members:
            raise ValueError(
                f"document {doc_id!r} already in cluster {self.cluster_id}"
            )
        w_dot_rep = self._representative.dot(weighted_vector)
        w_dot_w = weighted_vector.dot(weighted_vector)
        # (c⃗+w⃗)·(c⃗+w⃗) = c⃗·c⃗ + 2·c⃗·w⃗ + w⃗·w⃗
        self._self_similarity += 2.0 * w_dot_rep + w_dot_w
        self._ss += w_dot_w
        self._representative.add_scaled(weighted_vector, 1.0)
        self._members[doc_id] = weighted_vector

    def remove(self, doc_id: str) -> SparseVector:
        """Remove one document, returning its weighted vector."""
        try:
            weighted_vector = self._members.pop(doc_id)
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not in cluster {self.cluster_id}"
            ) from None
        w_dot_rep = self._representative.dot(weighted_vector)
        w_dot_w = weighted_vector.dot(weighted_vector)
        # (c⃗-w⃗)·(c⃗-w⃗) = c⃗·c⃗ - 2·c⃗·w⃗ + w⃗·w⃗ with c⃗ the *old* representative
        self._self_similarity += -2.0 * w_dot_rep + w_dot_w
        self._ss -= w_dot_w
        self._representative.add_scaled(weighted_vector, -1.0)
        if not self._members:
            # reset float residue so an emptied cluster is exactly zero
            self._representative = SparseVector()
            self._self_similarity = 0.0
            self._ss = 0.0
        return weighted_vector

    def clear(self) -> None:
        """Remove all members."""
        self._members.clear()
        self._representative = SparseVector()
        self._self_similarity = 0.0
        self._ss = 0.0

    # -- what-if queries (Eq. 25-26) -------------------------------------------

    def avg_sim_if_added(self, weighted_vector: SparseVector) -> float:
        """``avg_sim(C_p ∪ {d_q})`` via Eq. 26 — one sparse dot product.

        For an empty cluster the result is 0 (a singleton has no pairs).
        """
        n = len(self._members)
        if n == 0:
            return 0.0
        cr_pq = self._representative.dot(weighted_vector)
        return (
            (self._self_similarity + 2.0 * cr_pq - self._ss)
            / (n * (n + 1))
        )

    def gain_if_added(self, weighted_vector: SparseVector) -> float:
        """Increase of intra-cluster similarity if the doc is appended.

        This is the assignment criterion of Section 4.3 step 1(b):
        ``avg_sim(C_p ∪ {d}) - avg_sim(C_p)``.
        """
        return self.avg_sim_if_added(weighted_vector) - self.avg_sim()

    def g_gain_if_added(self, weighted_vector: SparseVector) -> float:
        """Increase of this cluster's ``G`` term, ``Δ(|C_p|·avg_sim(C_p))``.

        With ``s = Σ_{d_i∈C_p} sim(d_q, d_i) = c⃗_p·w⃗_q`` and ``P`` the sum
        of intra-cluster pair similarities, appending ``d_q`` changes the
        contribution ``|C_p|·avg_sim`` by ``2(s(n-1) - P)/(n(n-1))``
        (``2s`` for a singleton). This is the greedy-ascent criterion on
        the paper's clustering index (Eq. 17); it is positive exactly
        when the document's mean similarity to the members exceeds half
        the current average similarity.
        """
        n = len(self._members)
        if n == 0:
            return 0.0
        s = self._representative.dot(weighted_vector)
        if n == 1:
            return 2.0 * s
        pair_sum = (self._self_similarity - self._ss) / 2.0
        return 2.0 * (s * (n - 1) - pair_sum) / (n * (n - 1))

    def avg_sim_if_removed(self, doc_id: str) -> float:
        """``avg_sim(C_p \\ {d_q})`` — the deletion counterpart of Eq. 26."""
        weighted_vector = self.member_vector(doc_id)
        n = len(self._members)
        if n <= 2:
            return 0.0
        cr_pq = self._representative.dot(weighted_vector)
        w_dot_w = weighted_vector.dot(weighted_vector)
        new_self = self._self_similarity - 2.0 * cr_pq + w_dot_w
        new_ss = self._ss - w_dot_w
        return (new_self - new_ss) / ((n - 1) * (n - 2))

    # -- maintenance -------------------------------------------------------------

    def refresh(self) -> None:
        """Recompute ``cr_sim(C_p,C_p)`` and ``ss`` from scratch.

        Incremental maintenance accumulates float error linear in the
        number of mutations; the clustering loop calls this once per
        iteration, which keeps drift far below similarity magnitudes.
        """
        representative = self._representative
        self._self_similarity = representative.dot(representative)
        self._ss = sum(w.dot(w) for w in self._members.values())

    def rebuild_from_members(
        self, vectors: Dict[str, SparseVector]
    ) -> None:
        """Re-weight every member with fresh vectors (after a stats update).

        Used by the warm-start path of Section 5.2: membership survives
        across windows but ``Pr(d)`` and ``idf`` moved, so the
        representative must be rebuilt from the new weighted vectors.
        Members absent from ``vectors`` are dropped (expired documents).
        """
        surviving = [doc_id for doc_id in self._members if doc_id in vectors]
        self.clear()
        for doc_id in surviving:
            self.add(doc_id, vectors[doc_id])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(id={self.cluster_id}, size={self.size}, "
            f"avg_sim={self.avg_sim():.3e})"
        )
