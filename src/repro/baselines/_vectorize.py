"""Shared helpers for the cosine-space baselines."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..corpus.document import Document
from ..vectors.sparse import SparseVector


def unit_tfidf_vectors(
    docs: Sequence[Document],
) -> Dict[str, SparseVector]:
    """Unit tf·idf vectors with smooth idf = 1 + ln(n/df).

    The traditional cosine representation used by INCR and GAC (the
    novelty method uses :class:`~repro.vectors.NoveltyTfidfWeighter`
    instead).
    """
    df: Dict[int, int] = {}
    for doc in docs:
        for term_id in doc.term_counts:
            df[term_id] = df.get(term_id, 0) + 1
    n = len(docs)
    vectors: Dict[str, SparseVector] = {}
    for doc in docs:
        weighted = {
            term_id: count * (1.0 + math.log(n / df[term_id]))
            for term_id, count in doc.term_counts.items()
        }
        vectors[doc.doc_id] = SparseVector(weighted).normalized()
    return vectors
