"""F²ICM — the paper's predecessor method (Ishikawa et al., ECDL 2001).

"F²ICM first computes the seeds from documents and then classifies
documents sequentially based on the seeds" (paper Section 2.2), with
seed selection "partially based on C²ICM" (Can 1993). It shares the
same forgetting-factor similarity and incremental statistics as the
paper's method; the difference is the clustering step — one assignment
pass against K fixed seed documents rather than an iterated K-means.

Seed selection follows C²ICM's cover-coefficient idea, novelty-weighted:
a document's *seed power* is its weight times the sum over its terms of
``p·(1-p)`` coupling terms (``p`` = the term's within-document share
scaled by corpus rarity), so seeds are recent documents that cover many
discriminative terms. A diversity pass skips candidates too similar to
an already-chosen seed.
"""

from __future__ import annotations

import time as time_module
from typing import List, Sequence

from .._validation import require_positive_int, require_probability
from ..corpus.document import Document
from ..core.result import ClusteringResult
from ..core.similarity import NoveltySimilarity
from ..exceptions import ClusteringError
from ..forgetting.statistics import CorpusStatistics


class F2ICMClusterer:
    """Seed-based single-pass clustering under novelty similarity.

    Parameters
    ----------
    k:
        Number of seeds/clusters.
    diversity_threshold:
        A candidate whose (normalised) similarity to any chosen seed
        exceeds this is skipped during seed selection, preventing K
        near-duplicate seeds. Expressed as a fraction of the candidate's
        self-similarity (0 disables the check).
    """

    def __init__(
        self, k: int, diversity_threshold: float = 0.5
    ) -> None:
        self.k = require_positive_int("k", k)
        self.diversity_threshold = require_probability(
            "diversity_threshold", diversity_threshold
        )

    def fit(
        self,
        documents: Sequence[Document],
        statistics: CorpusStatistics,
    ) -> ClusteringResult:
        """One seed-selection pass plus one assignment pass."""
        start = time_module.perf_counter()
        docs = list(documents)
        if len(docs) < self.k:
            raise ClusteringError(
                f"need at least k={self.k} documents, got {len(docs)}"
            )
        similarity = NoveltySimilarity(statistics)
        seeds = self._select_seeds(docs, statistics, similarity)
        clusters: List[List[str]] = [[seed.doc_id] for seed in seeds]
        outliers: List[str] = []
        seed_ids = {seed.doc_id for seed in seeds}

        for doc in docs:
            if doc.doc_id in seed_ids:
                continue
            best_cluster = -1
            best_sim = 0.0
            for cluster_id, seed in enumerate(seeds):
                sim = similarity.similarity(doc, seed)
                if sim > best_sim:
                    best_sim = sim
                    best_cluster = cluster_id
            if best_cluster >= 0:
                clusters[best_cluster].append(doc.doc_id)
            else:
                outliers.append(doc.doc_id)

        elapsed = time_module.perf_counter() - start
        return ClusteringResult(
            clusters=tuple(tuple(c) for c in clusters),
            outliers=tuple(outliers),
            clustering_index=0.0,
            index_history=(),
            iterations=1,
            converged=True,
            timings={"clustering": elapsed},
        )

    # -- seed selection ------------------------------------------------------

    def _select_seeds(
        self,
        docs: Sequence[Document],
        statistics: CorpusStatistics,
        similarity: NoveltySimilarity,
    ) -> List[Document]:
        powers = [
            (self._seed_power(doc, statistics), doc) for doc in docs
        ]
        powers.sort(key=lambda item: item[0], reverse=True)
        seeds: List[Document] = []
        for power, doc in powers:
            if power <= 0.0:
                break
            if self._too_close(doc, seeds, similarity):
                continue
            seeds.append(doc)
            if len(seeds) == self.k:
                return seeds
        # not enough diverse candidates: fill with the next-strongest
        for power, doc in powers:
            if len(seeds) == self.k:
                break
            if doc not in seeds and power > 0.0:
                seeds.append(doc)
        if not seeds:
            raise ClusteringError("no document qualifies as a seed")
        return seeds

    @staticmethod
    def _seed_power(doc: Document, statistics: CorpusStatistics) -> float:
        """Novelty-weighted cover-coefficient seed power."""
        if doc.length == 0:
            return 0.0
        weight = statistics.dw(doc.doc_id)
        coupling = 0.0
        for term_id, count in doc.term_counts.items():
            pr_t = statistics.pr_term(term_id)
            if pr_t <= 0.0:
                continue
            share = (count / doc.length) * (1.0 - pr_t)
            coupling += share * (1.0 - share)
        return weight * coupling

    def _too_close(
        self,
        candidate: Document,
        seeds: List[Document],
        similarity: NoveltySimilarity,
    ) -> bool:
        if not seeds or self.diversity_threshold <= 0.0:
            return False
        self_sim = similarity.self_similarity(candidate)
        if self_sim <= 0.0:
            return True
        for seed in seeds:
            if (
                similarity.similarity(candidate, seed)
                > self.diversity_threshold * self_sim
            ):
                return True
        return False
