"""Classic K-means over cosine/tf·idf (paper Section 4.1 baseline).

This is the conventional clustering the paper contrasts with: every
document carries equal weight regardless of age ("β = 30 resembles the
conventional clustering", Section 6.2.3 — β → ∞ *is* it). Spherical
K-means: documents are unit tf·idf vectors, cluster representatives are
mean vectors, documents go to the nearest (max-cosine) representative.
"""

from __future__ import annotations

import math
import random
import time as time_module
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._typing import FloatArray, IntArray
from .._validation import require_positive_int
from ..core.result import ClusteringResult
from ..corpus.document import Document
from ..exceptions import ClusteringError


class ClassicKMeans:
    """Spherical K-means over tf·idf cosine similarity.

    Uses the standard smooth ``idf_k = 1 + ln(n / df_k)`` weighting (not
    the paper's novelty idf) and no document weighting — the
    conventional method of Section 4.1.
    """

    def __init__(
        self,
        k: int,
        max_iterations: int = 50,
        seed: Optional[int] = None,
    ) -> None:
        self.k = require_positive_int("k", k)
        self.max_iterations = require_positive_int(
            "max_iterations", max_iterations
        )
        self.seed = seed

    def fit(self, documents: Sequence[Document]) -> ClusteringResult:
        """Cluster ``documents``; returns a :class:`ClusteringResult`.

        The ``clustering_index`` of the result is the spherical K-means
        objective (total cosine of documents to their centroid), not the
        paper's G; the two are not comparable across methods.
        """
        start = time_module.perf_counter()
        docs = [doc for doc in documents if doc.length > 0]
        if len(docs) < self.k:
            raise ClusteringError(
                f"need at least k={self.k} non-empty documents, "
                f"got {len(docs)}"
            )
        matrix, _ = self._vectorize(docs)
        n = matrix.shape[0]
        rng = random.Random(self.seed)
        centroid_rows = rng.sample(range(n), self.k)
        centroids = matrix[centroid_rows].copy()

        labels = np.full(n, -1, dtype=np.int64)
        history: List[float] = []
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            sims = matrix @ centroids.T  # cosine: rows are unit vectors
            new_labels = np.argmax(sims, axis=1)
            objective = float(sims[np.arange(n), new_labels].sum())
            history.append(objective)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
            centroids = self._recompute_centroids(matrix, labels, centroids)

        clusters: List[List[str]] = [[] for _ in range(self.k)]
        for row, doc in enumerate(docs):
            clusters[int(labels[row])].append(doc.doc_id)
        empty_docs = [doc.doc_id for doc in documents if doc.length == 0]
        elapsed = time_module.perf_counter() - start
        return ClusteringResult(
            clusters=tuple(tuple(c) for c in clusters),
            outliers=tuple(empty_docs),
            clustering_index=history[-1] if history else 0.0,
            index_history=tuple(history),
            iterations=iterations,
            converged=converged,
            timings={"clustering": elapsed},
        )

    def _vectorize(
        self, docs: Sequence[Document]
    ) -> Tuple[FloatArray, Dict[int, int]]:
        """Unit-normalised tf·idf matrix, smooth idf = 1 + ln(n/df)."""
        df: Dict[int, int] = {}
        for doc in docs:
            for term_id in doc.term_counts:
                df[term_id] = df.get(term_id, 0) + 1
        column = {term_id: i for i, term_id in enumerate(sorted(df))}
        n = len(docs)
        matrix = np.zeros((n, len(column)), dtype=np.float64)
        for row, doc in enumerate(docs):
            for term_id, count in doc.term_counts.items():
                idf = 1.0 + math.log(n / df[term_id])
                matrix[row, column[term_id]] = count * idf
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms, column

    def _recompute_centroids(
        self,
        matrix: FloatArray,
        labels: IntArray,
        previous: FloatArray,
    ) -> FloatArray:
        """Mean of member vectors, renormalised; empty keep their spot."""
        centroids = previous.copy()
        for cluster_id in range(self.k):
            members = matrix[labels == cluster_id]
            if len(members) == 0:
                continue
            mean = members.mean(axis=0)
            norm = np.linalg.norm(mean)
            if norm > 0:
                centroids[cluster_id] = mean / norm
        return centroids
