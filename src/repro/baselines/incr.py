"""INCR — single-pass incremental clustering (Yang et al., Section 2.2).

"INCR sequentially processes the input documents, one at a time, and
grows clusters incrementally. A new document is assigned to a previous
cluster if the similarity score between the document and the cluster is
above a preselected threshold. Otherwise the document becomes the seed
of a new cluster. ... INCR also imposes a time window in which the
linear decaying-weight function is incorporated in the similarity
function."

Implementation: documents are processed in timestamp order; similarity
to a cluster is the cosine between the document's unit tf·idf vector and
the cluster prototype (mean of member vectors), multiplied by a linear
decay ``max(0, 1 - gap/window_size)`` where ``gap`` is the number of
documents seen since the cluster last absorbed one. A cluster that has
scrolled out of the window can no longer absorb documents.
"""

from __future__ import annotations

import time as time_module
from typing import List, Optional, Sequence

from .._validation import require_positive, require_positive_int
from ..corpus.document import Document
from ..core.result import ClusteringResult
from ..exceptions import ClusteringError
from ..vectors.sparse import SparseVector
from ._vectorize import unit_tfidf_vectors


class _IncrCluster:
    __slots__ = ("members", "prototype_sum", "last_index", "_prototype")

    def __init__(self, doc_id: str, vector: SparseVector, index: int) -> None:
        self.members: List[str] = [doc_id]
        self.prototype_sum = vector.copy()
        self.last_index = index
        self._prototype: Optional[SparseVector] = None

    def prototype(self) -> SparseVector:
        """Normalised prototype, cached until the next absorb (the
        normalisation copy dominated the single-pass cost otherwise)."""
        if self._prototype is None:
            self._prototype = self.prototype_sum.normalized()
        return self._prototype

    def absorb(self, doc_id: str, vector: SparseVector, index: int) -> None:
        self.members.append(doc_id)
        self.prototype_sum.add_scaled(vector, 1.0)
        self.last_index = index
        self._prototype = None


class INCRClusterer:
    """Threshold-based single-pass clustering with linear time decay.

    Parameters
    ----------
    threshold:
        Minimum (decayed) similarity to join an existing cluster
        (Yang et al. tune this per task; 0.2-0.4 is typical for cosine).
    window_size:
        Size of the document-count time window ``m``: a cluster's
        attraction decays linearly to 0 after ``m`` documents pass
        without it absorbing one.
    """

    def __init__(
        self,
        threshold: float = 0.3,
        window_size: int = 1000,
    ) -> None:
        self.threshold = require_positive("threshold", threshold)
        self.window_size = require_positive_int("window_size", window_size)

    def fit(self, documents: Sequence[Document]) -> ClusteringResult:
        """Single pass over ``documents`` in timestamp order."""
        start = time_module.perf_counter()
        docs = sorted(
            (doc for doc in documents if doc.length > 0),
            key=lambda d: (d.timestamp, d.doc_id),
        )
        if not docs:
            raise ClusteringError("no non-empty documents to cluster")
        vectors = unit_tfidf_vectors(docs)
        clusters: List[_IncrCluster] = []
        active: List[_IncrCluster] = []
        for index, doc in enumerate(docs):
            vector = vectors[doc.doc_id]
            best_cluster = None
            best_score = 0.0
            still_active: List[_IncrCluster] = []
            for cluster in active:
                gap = index - cluster.last_index
                decay = 1.0 - gap / self.window_size
                if decay <= 0.0:
                    # scrolled out of the window; last_index only moves
                    # on absorb, so this cluster is dead forever — stop
                    # scanning it for every later document
                    continue
                still_active.append(cluster)
                score = cluster.prototype().dot(vector) * decay
                if score > best_score:
                    best_score = score
                    best_cluster = cluster
            active = still_active
            if best_cluster is not None and best_score >= self.threshold:
                best_cluster.absorb(doc.doc_id, vector, index)
            else:
                fresh = _IncrCluster(doc.doc_id, vector, index)
                clusters.append(fresh)
                active.append(fresh)

        empty_docs = [doc.doc_id for doc in documents if doc.length == 0]
        elapsed = time_module.perf_counter() - start
        return ClusteringResult(
            clusters=tuple(tuple(c.members) for c in clusters),
            outliers=tuple(empty_docs),
            clustering_index=float(len(clusters)),
            index_history=(float(len(clusters)),),
            iterations=1,
            converged=True,
            timings={"clustering": elapsed},
        )

