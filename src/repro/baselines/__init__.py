"""Baseline clustering methods the paper positions itself against.

* :class:`ClassicKMeans` — the plain K-means of Section 4.1 over cosine
  similarity of tf·idf vectors (no forgetting; what ``β → ∞`` resembles).
* :class:`INCRClusterer` — Yang et al.'s single-pass incremental
  clustering with a similarity threshold and a linear time-window decay.
* :class:`GACClusterer` — Yang et al.'s group-average clustering over
  temporal buckets with periodic re-clustering (after Cutting's
  Fractionation).
* :class:`F2ICMClusterer` — Ishikawa et al.'s F²ICM, the paper's
  predecessor: seed-power seed selection (after Can's C²ICM) plus a
  single assignment pass under the same novelty similarity.
"""

from .kmeans_classic import ClassicKMeans
from .incr import INCRClusterer
from .gac import GACClusterer
from .f2icm import F2ICMClusterer

__all__ = [
    "ClassicKMeans",
    "INCRClusterer",
    "GACClusterer",
    "F2ICMClusterer",
]
