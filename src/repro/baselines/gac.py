"""GAC — group-average clustering over temporal buckets (Yang et al.).

"GAC divides chronologically ordered news stories into buckets and
performs group average method to the buckets and repeatedly forms
clusters hierarchically until a specified condition is met. GAC
periodically reclusters the stories within each of the top level
clusters by flattening the component clusters and regrowing clusters
internally from the leaf nodes." (paper Section 2.2, after Cutting's
Fractionation.)

Implementation:

* current units start as singleton documents in chronological order;
* each level partitions the units into consecutive buckets of
  ``bucket_size`` and runs group-average agglomerative clustering
  inside each bucket until the bucket shrinks by ``reduction_factor``;
* levels repeat until at most ``target_clusters`` units remain (or no
  level makes progress);
* every ``recluster_period`` levels each top-level cluster is flattened
  to its leaf documents and regrown, which counteracts early greedy
  merges — GAC's "periodic re-clustering".

The group-average similarity of a merge uses the unit-vector identity
``avg_pair_sim(C) = (‖Σv‖² - |C|) / (|C|(|C|-1))`` so candidate scoring
needs only summed vectors.
"""

from __future__ import annotations

import math
import time as time_module
from typing import Dict, List, Optional, Sequence

from .._validation import (
    require_in_open_interval,
    require_positive_int,
)
from ..corpus.document import Document
from ..core.result import ClusteringResult
from ..exceptions import ClusteringError
from ..vectors.sparse import SparseVector
from ._vectorize import unit_tfidf_vectors


class _Unit:
    """A work unit: one cluster-in-progress (initially a single doc).

    ``norm_sq`` (the self dot of the vector sum) is cached per unit —
    the agglomeration loop scores O(b²) candidate pairs per merge and
    each score needs both self dots, which never change for a unit.
    """

    __slots__ = ("doc_ids", "vector_sum", "first_timestamp", "norm_sq")

    def __init__(
        self,
        doc_ids: List[str],
        vector_sum: SparseVector,
        first_timestamp: float,
        norm_sq: Optional[float] = None,
    ) -> None:
        self.doc_ids = doc_ids
        self.vector_sum = vector_sum
        self.first_timestamp = first_timestamp
        self.norm_sq = (
            norm_sq if norm_sq is not None
            else vector_sum.dot(vector_sum)
        )

    @property
    def size(self) -> int:
        return len(self.doc_ids)

    def merged_with(self, other: "_Unit") -> "_Unit":
        cross = self.vector_sum.dot(other.vector_sum)
        return _Unit(
            self.doc_ids + other.doc_ids,
            self.vector_sum + other.vector_sum,
            min(self.first_timestamp, other.first_timestamp),
            norm_sq=self.norm_sq + 2.0 * cross + other.norm_sq,
        )

    def group_average(self) -> float:
        """Average pairwise cosine inside the unit (unit member vectors)."""
        n = self.size
        if n < 2:
            return 0.0
        return (self.norm_sq - n) / (n * (n - 1))


class GACClusterer:
    """Bucketed group-average hierarchical clustering.

    Parameters
    ----------
    target_clusters:
        Stop when at most this many top-level clusters remain.
    bucket_size:
        Number of consecutive units per bucket at each level.
    reduction_factor:
        Each bucket is agglomerated until ``ceil(size * factor)`` units
        remain (Cutting's Fractionation uses 1/3 - 1/2).
    recluster_period:
        Re-grow top-level clusters from their leaves every this many
        levels; ``None`` disables periodic re-clustering.
    """

    def __init__(
        self,
        target_clusters: int,
        bucket_size: int = 200,
        reduction_factor: float = 0.5,
        recluster_period: Optional[int] = 3,
    ) -> None:
        self.target_clusters = require_positive_int(
            "target_clusters", target_clusters
        )
        self.bucket_size = require_positive_int("bucket_size", bucket_size)
        self.reduction_factor = require_in_open_interval(
            "reduction_factor", reduction_factor, 0.0, 1.0
        )
        if recluster_period is not None:
            require_positive_int("recluster_period", recluster_period)
        self.recluster_period = recluster_period

    def fit(self, documents: Sequence[Document]) -> ClusteringResult:
        start = time_module.perf_counter()
        docs = sorted(
            (doc for doc in documents if doc.length > 0),
            key=lambda d: (d.timestamp, d.doc_id),
        )
        if not docs:
            raise ClusteringError("no non-empty documents to cluster")
        vectors = unit_tfidf_vectors(docs)
        units = [
            _Unit([doc.doc_id], vectors[doc.doc_id].copy(), doc.timestamp)
            for doc in docs
        ]

        level = 0
        while len(units) > self.target_clusters:
            level += 1
            before = len(units)
            units = self._one_level(units)
            if (
                self.recluster_period is not None
                and level % self.recluster_period == 0
            ):
                units = self._recluster(units, vectors)
            if len(units) >= before:
                break  # no progress; buckets cannot shrink further

        empty_docs = [doc.doc_id for doc in documents if doc.length == 0]
        elapsed = time_module.perf_counter() - start
        total_avg = sum(u.size * u.group_average() for u in units)
        return ClusteringResult(
            clusters=tuple(tuple(u.doc_ids) for u in units),
            outliers=tuple(empty_docs),
            clustering_index=total_avg,
            index_history=(total_avg,),
            iterations=level,
            converged=len(units) <= self.target_clusters,
            timings={"clustering": elapsed},
        )

    # -- internals ----------------------------------------------------------

    def _one_level(self, units: List[_Unit]) -> List[_Unit]:
        """Bucket consecutive units and agglomerate inside each bucket."""
        result: List[_Unit] = []
        for offset in range(0, len(units), self.bucket_size):
            bucket = units[offset:offset + self.bucket_size]
            goal = max(1, math.ceil(len(bucket) * self.reduction_factor))
            result.extend(self._agglomerate(bucket, goal))
        return result

    @staticmethod
    def _agglomerate(bucket: List[_Unit], goal: int) -> List[_Unit]:
        """Greedy group-average agglomeration until ``goal`` units remain."""
        units = list(bucket)
        while len(units) > goal:
            best_pair = None
            best_score = -1.0
            for i in range(len(units)):
                for j in range(i + 1, len(units)):
                    score = GACClusterer._merge_score(units[i], units[j])
                    if score > best_score:
                        best_score = score
                        best_pair = (i, j)
            if best_pair is None:
                break
            i, j = best_pair
            merged = units[i].merged_with(units[j])
            units = (
                units[:i] + units[i + 1:j] + units[j + 1:] + [merged]
            )
        return units

    @staticmethod
    def _merge_score(first: _Unit, second: _Unit) -> float:
        """Group-average similarity of the would-be merged cluster."""
        n = first.size + second.size
        if n < 2:
            return 0.0
        cross = first.vector_sum.dot(second.vector_sum)
        norm_sq = first.norm_sq + 2.0 * cross + second.norm_sq
        return (norm_sq - n) / (n * (n - 1))

    def _recluster(
        self, units: List[_Unit], vectors: Dict[str, SparseVector]
    ) -> List[_Unit]:
        """Flatten to leaf documents and regrow to the same unit count.

        This is GAC's periodic re-clustering: early greedy merges made
        inside small buckets are reconsidered globally, while the number
        of top-level clusters is preserved so the outer loop keeps its
        monotone progress.
        """
        goal = len(units)
        doc_ids = [doc_id for unit in units for doc_id in unit.doc_ids]
        leaves = [
            _Unit([doc_id], vectors[doc_id].copy(), 0.0)
            for doc_id in doc_ids
        ]
        regrown = leaves
        while len(regrown) > goal:
            before = len(regrown)
            regrown = self._one_level(regrown)
            if len(regrown) <= goal or len(regrown) >= before:
                break
        if len(regrown) > goal:
            regrown = self._agglomerate(regrown, goal)
        return regrown

