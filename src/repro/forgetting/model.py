"""The document forgetting model (paper Section 3, Eq. 1-2).

A document acquired at time ``T`` has weight ``dw = λ^(τ - T)`` at time
``τ``. The user parameterises the model by the **half-life span** ``β``
(days until a document loses half its weight, so ``λ = exp(-ln2 / β)``)
and the **life span** ``γ`` (days until a document is expired entirely,
so the expiry threshold is ``ε = λ^γ``; Section 5.2 step 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .._validation import require_positive
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ForgettingModel:
    """Exponential-decay document weighting.

    Parameters
    ----------
    half_life:
        ``β`` in days: period after which a document's weight halves.
    life_span:
        ``γ`` in days: period after which a document is dropped from the
        active set. Must be >= ``half_life`` to be meaningful (a document
        should live at least one half-life); pass ``None`` for no expiry.

    >>> model = ForgettingModel(half_life=7.0, life_span=14.0)
    >>> round(model.decay_factor, 4)
    0.9057
    >>> round(model.epsilon, 4)
    0.25
    >>> round(model.weight(acquired_at=0.0, now=7.0), 12)
    0.5
    """

    half_life: float
    life_span: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive("half_life", self.half_life)
        if self.life_span is not None:
            require_positive("life_span", self.life_span)
            if self.life_span < self.half_life:
                raise ConfigurationError(
                    f"life_span ({self.life_span}) must be >= "
                    f"half_life ({self.half_life})"
                )
        # both derived constants sit on the hot per-document path
        # (weight() per insert, epsilon per expiry scan), so compute
        # them once — the dataclass is frozen, hence the setattr
        object.__setattr__(
            self, "_decay_factor",
            math.exp(-math.log(2.0) / self.half_life),
        )
        object.__setattr__(
            self, "_epsilon",
            0.0 if self.life_span is None
            else self._decay_factor ** self.life_span,
        )

    @property
    def decay_factor(self) -> float:
        """``λ = exp(-ln 2 / β)`` — per-day weight multiplier (Eq. 2)."""
        return self._decay_factor

    @property
    def epsilon(self) -> float:
        """Expiry threshold ``ε = λ^γ``; 0.0 when expiry is disabled."""
        return self._epsilon

    def weight(self, acquired_at: float, now: float) -> float:
        """``dw = λ^(now - acquired_at)`` (Eq. 1). Requires ``now >= T``."""
        if now < acquired_at:
            raise ConfigurationError(
                f"now ({now}) must be >= acquisition time ({acquired_at})"
            )
        return self.decay_factor ** (now - acquired_at)

    def decay_over(self, delta_days: float) -> float:
        """``λ^Δτ`` — the multiplier applied by an update of ``Δτ`` days."""
        if delta_days < 0:
            raise ConfigurationError(
                f"delta_days must be >= 0, got {delta_days}"
            )
        return self.decay_factor ** delta_days

    def is_expired(self, weight: float) -> bool:
        """True when ``weight`` has fallen strictly below ``ε``."""
        if self.life_span is None:
            return False
        return weight < self.epsilon

    @classmethod
    def from_decay_factor(
        cls, decay_factor: float, life_span: Optional[float] = None
    ) -> "ForgettingModel":
        """Build from ``λ`` directly (must satisfy ``0 < λ < 1``)."""
        if not 0.0 < decay_factor < 1.0:
            raise ConfigurationError(
                f"decay_factor must be in (0, 1), got {decay_factor}"
            )
        half_life = -math.log(2.0) / math.log(decay_factor)
        return cls(half_life=half_life, life_span=life_span)
