"""Immutable point-in-time view of the corpus probability tables.

:class:`FrozenStatistics` is the read-side twin of
:class:`~repro.forgetting.statistics.CorpusStatistics`: the clock, the
total document weight ``tdw`` (Eq. 3), and the positive term masses
``S_k`` (Eq. 10) captured into plain numpy arrays at one instant, with
the same query arithmetic (``Pr(t_k) = min(1, S_k/tdw)``, novelty idf
``1/sqrt(Pr(t_k))`` — Eq. 10/14) evaluated over them.

The freeze is cheap — two array copies, no per-document state — and the
result is safe to hand to any number of concurrent readers: nothing in
it aliases the live backend, so the single writer can keep decaying and
inserting while readers score queries against the frozen tables. This
is what :class:`repro.service.ClusterSnapshot` embeds so that
``assign()`` on a published snapshot never touches live statistics.

Construct via :meth:`CorpusStatistics.freeze`; this module lives inside
``repro.forgetting`` because building the view requires the backend's
term-mass table (REP005 keeps that access inside this package).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._typing import FloatArray, IntArray


@dataclass(frozen=True)
class FrozenStatistics:
    """Read-only snapshot of the decayed corpus probability tables.

    Attributes
    ----------
    now:
        The logical clock ``τ`` at freeze time (``None`` before the
        first batch).
    tdw:
        Total document weight ``Σ dw_i`` (Eq. 3) at freeze time.
    size:
        Number of active documents at freeze time.
    term_ids:
        Sorted int64 ids of every term with positive mass.
    term_masses:
        float64 masses ``S_k`` aligned with ``term_ids``.
    backend_name:
        Name of the backend the tables were frozen from.
    """

    now: Optional[float]
    tdw: float
    size: int
    term_ids: IntArray
    term_masses: FloatArray
    backend_name: str

    def __post_init__(self) -> None:
        # freeze the arrays for real: a reader cannot corrupt a
        # published snapshot even by accident
        self.term_ids.setflags(write=False)
        self.term_masses.setflags(write=False)

    @property
    def n_terms(self) -> int:
        """Number of terms with positive mass at freeze time."""
        return int(self.term_ids.size)

    def term_mass(self, term_id: int) -> float:
        """Mass ``S_k`` of one term; 0.0 when unseen at freeze time."""
        position = int(np.searchsorted(self.term_ids, term_id))
        if (
            position >= self.term_ids.size
            or int(self.term_ids[position]) != term_id
        ):
            return 0.0
        return float(self.term_masses[position])

    def pr_term(self, term_id: int) -> float:
        """Occurrence probability ``Pr(t_k)`` (Eq. 10); 0.0 if unseen.

        Same arithmetic as the live
        :meth:`~repro.forgetting.statistics.CorpusStatistics.pr_term`,
        so frozen and live queries agree bit-for-bit at freeze time.
        """
        if self.tdw <= 0.0:
            return 0.0
        mass = self.term_mass(term_id)
        if mass <= 0.0:
            return 0.0
        return min(1.0, mass / self.tdw)

    def idf(self, term_id: int) -> float:
        """Novelty idf ``1 / sqrt(Pr(t_k))`` (Eq. 14); 0.0 if unseen."""
        pr = self.pr_term(term_id)
        if pr <= 0.0:
            return 0.0
        return 1.0 / math.sqrt(pr)

    def idf_array(self, term_ids: IntArray) -> FloatArray:
        """Vectorised :meth:`idf` over an int64 term-id array.

        The exact expression
        :meth:`~repro.forgetting.statistics.CorpusStatistics.idf_array`
        evaluates, applied to the frozen mass table.
        """
        if self.tdw <= 0.0 or term_ids.size == 0 or self.term_ids.size == 0:
            return np.zeros(term_ids.shape, dtype=np.float64)
        positions = np.searchsorted(self.term_ids, term_ids)
        positions = np.minimum(positions, max(self.term_ids.size - 1, 0))
        found = self.term_ids[positions] == term_ids
        masses = np.where(found, self.term_masses[positions], 0.0)
        pr = np.where(
            masses > 0.0, np.minimum(1.0, masses / self.tdw), 0.0
        )
        return np.where(
            pr > 0.0, 1.0 / np.sqrt(np.where(pr > 0.0, pr, 1.0)), 0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenStatistics(docs={self.size}, tdw={self.tdw:.4f}, "
            f"terms={self.n_terms}, now={self.now}, "
            f"backend={self.backend_name!r})"
        )
