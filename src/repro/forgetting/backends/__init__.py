"""Pluggable state stores for :class:`~repro.forgetting.CorpusStatistics`.

Public surface:

* :class:`StatisticsBackend` — the protocol a backend implements
  (state queries + the four mutations: decay, batch insert, remove,
  expiry scan).
* :func:`register_backend` / :func:`unregister_backend` /
  :func:`available_backends` / :func:`resolve_backend` — the registry
  that maps names to factories.
* ``"dict"`` — :class:`DictStatisticsBackend`, the plain-Python
  reference implementation (the semantics every other backend is
  property-tested against).
* ``"columnar"`` — :class:`ColumnarStatisticsBackend`, numpy arrays
  with interned term ids: decay is two scalar multiplies, batch insert
  one scatter-add, expiry one threshold mask.
"""

from .base import SCALE_FLOOR, StatisticsBackend
from .columnar import ColumnarStatisticsBackend
from .dict_backend import DictStatisticsBackend
from .registry import (
    available_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)

__all__ = [
    "SCALE_FLOOR",
    "StatisticsBackend",
    "DictStatisticsBackend",
    "ColumnarStatisticsBackend",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "resolve_backend",
]

register_backend("dict", DictStatisticsBackend)
register_backend("columnar", ColumnarStatisticsBackend)
