"""Statistics-backend registry: name -> factory, with a clear failure mode.

The registry is what makes the statistics layer *pluggable*: anything
callable as ``factory()`` and returning a
:class:`~repro.forgetting.backends.StatisticsBackend` can be registered
under a name and then selected by string everywhere a
``backend=``/``statistics_backend=`` parameter exists
(:class:`~repro.forgetting.CorpusStatistics`, both pipeline clusterers,
checkpoints, and ``repro cluster --stats-backend``).

>>> from repro.forgetting.backends import (
...     register_backend, available_backends)
>>> def my_backend():                       # doctest: +SKIP
...     return MyBackend()
>>> register_backend("mine", my_backend)    # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from ...exceptions import ConfigurationError

if TYPE_CHECKING:
    from .base import StatisticsBackend

#: ``factory() -> StatisticsBackend`` — returning the protocol type makes
#: ``register_backend(name, SomeBackend)`` a conformance check: a class
#: whose methods drift from :class:`StatisticsBackend` stops being
#: assignable to this alias and fails mypy at the registration site.
BackendFactory = Callable[[], "StatisticsBackend"]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``overwrite=True``,
    so a typo cannot silently shadow a built-in backend.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    if not callable(factory):
        raise ConfigurationError(
            f"backend factory for {name!r} must be callable, "
            f"got {factory!r}"
        )
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass overwrite=True "
            f"to replace it"
        )
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str) -> BackendFactory:
    """Return the factory registered under ``name``.

    Unknown names raise a :class:`ConfigurationError` that lists every
    valid name, so the fix is visible from the error alone.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(available_backends()) or "<none>"
        raise ConfigurationError(
            f"unknown statistics backend {name!r}; available backends: "
            f"{available}"
        ) from None
