"""The ``"columnar"`` array backend.

Stores document weights and term masses in flat numpy arrays with
interned term ids, so every maintenance step the dict backend runs as
an interpreted per-entry loop becomes a handful of vectorised array
operations:

* **decay** (Eq. 27-28) — the dict backend already keeps *term* masses
  under one lazy global scale factor; here the same trick is extended
  to the document weights: ``λ^Δτ`` multiplies two scalars instead of
  every entry, and each scale is folded back into its raw array before
  it underflows (same ``SCALE_FLOOR`` threshold, same
  ``statistics.scale_folds`` counter);
* **batch insert** — the batch's term contributions are concatenated
  into one CSR-style ``(term_id, value)`` run and scatter-added with
  ``np.add.at`` after a vectorised intern lookup;
* **expiry scan** — one threshold mask over the weight array instead
  of a Python loop over every active document.

``tdw`` stays an eagerly-updated scalar with the exact per-document
add/subtract order of the dict backend, so the two backends' ``tdw``
match bit-for-bit on identical histories; per-document weights and
term masses agree to float rounding (the property suite asserts 1e-9).

Term ids are interned to dense columns through a direct-index table
(``term_id -> column``, -1 when absent) — vocabulary ids are small
dense integers, so one fancy-indexing gather replaces a
``searchsorted`` per lookup; removed documents leave holes in the row
arrays that are compacted away once they dominate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..._typing import FloatArray, IntArray
from ...corpus.document import Document
from ...obs import NULL_RECORDER, Recorder
from .base import SCALE_FLOOR

_MIN_CAPACITY = 64


class ColumnarStatisticsBackend:
    """Array-backed state store (numpy only, no scipy required)."""

    name = "columnar"

    def __init__(self) -> None:
        self.recorder: Recorder = NULL_RECORDER
        self.tdw = 0.0
        # rows: one slot per inserted document, in insertion order;
        # removal blanks the slot (compacted when holes dominate)
        self._doc_row: Dict[str, int] = {}
        self._row_doc: List[Optional[str]] = []
        self._dw_raw = np.zeros(0, dtype=np.float64)
        self._active = np.zeros(0, dtype=bool)
        self._dw_scale = 1.0
        self._min_dw = math.inf
        # columns: one slot per interned term id
        self._mass_raw = np.zeros(0, dtype=np.float64)
        self._mass_scale = 1.0
        self._n_terms = 0
        self._col_term = np.zeros(0, dtype=np.int64)   # col -> term id
        self._term_col = np.zeros(0, dtype=np.int64)   # term id -> col, -1

    # -- internal helpers --------------------------------------------------

    @property
    def _rows_used(self) -> int:
        return len(self._row_doc)

    def _grow_rows(self, need: int) -> None:
        capacity = self._dw_raw.size
        if need <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, 2 * capacity, need)
        for attr, dtype in (("_dw_raw", np.float64), ("_active", bool)):
            fresh = np.zeros(new_capacity, dtype=dtype)
            fresh[:capacity] = getattr(self, attr)
            setattr(self, attr, fresh)

    def _grow_cols(self, need: int) -> None:
        capacity = self._mass_raw.size
        if need <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, 2 * capacity, need)
        for attr, dtype in (("_mass_raw", np.float64),
                            ("_col_term", np.int64)):
            fresh = np.zeros(new_capacity, dtype=dtype)
            fresh[:capacity] = getattr(self, attr)
            setattr(self, attr, fresh)

    def _grow_term_index(self, need: int) -> None:
        capacity = self._term_col.size
        if need <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, 2 * capacity, need)
        fresh = np.full(new_capacity, -1, dtype=np.int64)
        fresh[:capacity] = self._term_col
        self._term_col = fresh

    def _lookup_cols(self, term_ids: IntArray) -> IntArray:
        """Column index per term id; -1 where the term is unknown."""
        capacity = self._term_col.size
        if capacity == 0 or term_ids.size == 0:
            return np.full(term_ids.shape, -1, dtype=np.int64)
        in_range = (term_ids >= 0) & (term_ids < capacity)
        if in_range.all():
            return self._term_col[term_ids]
        clipped = np.clip(term_ids, 0, capacity - 1)
        return np.where(in_range, self._term_col[clipped], -1)

    def _intern(self, term_ids: IntArray) -> IntArray:
        """Column index per term id, allocating columns for new terms."""
        if term_ids.size == 0:
            return term_ids.astype(np.int64)
        self._grow_term_index(int(term_ids.max()) + 1)
        cols = self._term_col[term_ids]
        missing = cols < 0
        if missing.any():
            # dedupe via a presence mask over the (dense) id space —
            # cheaper than a sort/hash unique over every occurrence,
            # and yields the same ascending id order
            seen = np.zeros(self._term_col.size, dtype=bool)
            seen[term_ids[missing]] = True
            new_terms = np.flatnonzero(seen)
            start = self._n_terms
            self._grow_cols(start + new_terms.size)
            self._term_col[new_terms] = np.arange(
                start, start + new_terms.size, dtype=np.int64
            )
            self._col_term[start:start + new_terms.size] = new_terms
            self._n_terms += new_terms.size
            cols = self._term_col[term_ids]
        return cols

    def _reset_empty(self) -> None:
        """Clear float residue so an emptied corpus is exactly empty."""
        self.tdw = 0.0
        self._doc_row.clear()
        self._row_doc.clear()
        self._dw_raw = np.zeros(0, dtype=np.float64)
        self._active = np.zeros(0, dtype=bool)
        self._dw_scale = 1.0
        self._min_dw = math.inf
        self._mass_raw = np.zeros(0, dtype=np.float64)
        self._mass_scale = 1.0
        self._n_terms = 0
        self._col_term = np.zeros(0, dtype=np.int64)
        self._term_col = np.zeros(0, dtype=np.int64)

    def _maybe_compact_rows(self) -> None:
        used = self._rows_used
        if used < _MIN_CAPACITY or 2 * len(self._doc_row) >= used:
            return
        keep = np.flatnonzero(self._active[:used])
        survivors = [self._row_doc[row] for row in keep.tolist()]
        values = self._dw_raw[keep]
        capacity = max(_MIN_CAPACITY, 2 * keep.size)
        self._dw_raw = np.zeros(capacity, dtype=np.float64)
        self._dw_raw[:keep.size] = values
        self._active = np.zeros(capacity, dtype=bool)
        self._active[:keep.size] = True
        self._row_doc = survivors
        # active rows always hold a doc id; the None filter only narrows
        self._doc_row = {
            doc_id: row for row, doc_id in enumerate(survivors)
            if doc_id is not None
        }

    # -- mutations ---------------------------------------------------------

    def decay(self, factor: float) -> None:
        if factor == 1.0:
            return
        self.tdw *= factor
        self._min_dw *= factor
        used = self._rows_used
        if self._dw_scale * factor < SCALE_FLOOR:
            np.multiply(
                self._dw_raw[:used], self._dw_scale * factor,
                out=self._dw_raw[:used],
            )
            self._dw_scale = 1.0
            if self.recorder.enabled:
                self.recorder.counter("statistics.scale_folds")
        else:
            self._dw_scale *= factor
        if self._mass_scale * factor < SCALE_FLOOR:
            n = self._n_terms
            np.multiply(
                self._mass_raw[:n], self._mass_scale * factor,
                out=self._mass_raw[:n],
            )
            self._mass_scale = 1.0
            if self.recorder.enabled:
                self.recorder.counter("statistics.scale_folds")
        else:
            self._mass_scale *= factor

    def insert_batch(
        self, entries: Sequence[Tuple[Document, float]]
    ) -> None:
        if not entries:
            return
        start = self._rows_used
        n = len(entries)
        self._grow_rows(start + n)
        weights = np.fromiter(
            (weight for _, weight in entries), dtype=np.float64, count=n
        )
        self._dw_raw[start:start + n] = weights / self._dw_scale
        self._active[start:start + n] = True
        doc_ids = [doc.doc_id for doc, _ in entries]
        self._row_doc.extend(doc_ids)
        self._doc_row.update(zip(doc_ids, range(start, start + n)))
        # scalar adds in document order keep tdw bit-identical to the
        # dict reference; min is exact, so the batch min is too
        tdw = self.tdw
        for weight in weights.tolist():
            tdw += weight
        self.tdw = tdw
        lowest = float(weights.min())
        if lowest < self._min_dw:
            self._min_dw = lowest
        lengths = np.fromiter(
            (doc.length for doc, _ in entries), dtype=np.float64, count=n
        )
        has_terms = lengths > 0.0
        if not has_terms.any():
            return
        if has_terms.all():
            # weight / (scale * length) elementwise — the exact
            # expression grouping of the dict reference, batched
            inv_scales = weights / (self._mass_scale * lengths)
            parts = [doc.term_arrays() for doc, _ in entries]
        else:
            keep = np.flatnonzero(has_terms)
            inv_scales = weights[keep] / (self._mass_scale * lengths[keep])
            parts = [entries[i][0].term_arrays() for i in keep.tolist()]
        term_parts = [term_ids for term_ids, _ in parts]
        lens = np.fromiter(
            (term_ids.size for term_ids in term_parts),
            dtype=np.int64, count=len(term_parts),
        )
        all_terms = np.concatenate(term_parts)
        # count * inv_scale elementwise — the same product as the
        # dict reference's per-term add, batched over the whole run
        all_values = np.concatenate(
            [counts for _, counts in parts]
        ) * np.repeat(inv_scales, lens)
        cols = self._intern(all_terms)
        np.add.at(self._mass_raw, cols, all_values)

    def remove(self, doc: Document) -> Tuple[float, bool]:
        row = self._doc_row.pop(doc.doc_id)
        weight = float(self._dw_raw[row]) * self._dw_scale
        self._row_doc[row] = None
        self._dw_raw[row] = 0.0
        self._active[row] = False
        self.tdw -= weight
        clamped = False
        if self.tdw < 0.0:
            self.tdw = 0.0
            clamped = True
        if doc.length:
            term_ids, counts = doc.term_arrays()
            cols = self._lookup_cols(term_ids)
            known = cols >= 0
            if not known.all():
                cols = cols[known]
                counts = counts[known]
            inv_scale = weight / (self._mass_scale * doc.length)
            np.subtract.at(self._mass_raw, cols, counts * inv_scale)
            # the dict reference deletes masses driven <= 0 by float
            # residue; zeroing the column is the array equivalent
            residues = self._mass_raw[cols]
            negative = residues <= 0.0
            if negative.any():
                self._mass_raw[cols[negative]] = 0.0
        if not self._doc_row:
            self._reset_empty()
        else:
            self._maybe_compact_rows()
        return weight, clamped

    def remove_batch(self, docs: Sequence[Document]) -> bool:
        """Reverse many documents in one pass; True if ``tdw`` clamped.

        The expiry path removes whole cohorts at once, so the term-mass
        reversal is batched into a single scatter-subtract instead of
        one column lookup per document. ``tdw`` keeps the per-document
        scalar subtraction order of :meth:`remove`.
        """
        if not docs:
            return False
        n = len(docs)
        pop_row = self._doc_row.pop
        rows = [pop_row(doc.doc_id) for doc in docs]
        row_arr = np.asarray(rows, dtype=np.int64)
        # raw * scale elementwise — the same product remove() computes
        # per document, so weights match the one-at-a-time path exactly
        weights = self._dw_raw[row_arr] * self._dw_scale
        row_doc = self._row_doc
        for row in rows:
            row_doc[row] = None
        self._dw_raw[row_arr] = 0.0
        self._active[row_arr] = False
        # scalar subtractions in document order keep tdw (and the
        # clamp points) bit-identical to repeated remove() calls
        clamped = False
        tdw = self.tdw
        for weight in weights.tolist():
            tdw -= weight
            if tdw < 0.0:
                tdw = 0.0
                clamped = True
        self.tdw = tdw
        lengths = np.fromiter(
            (doc.length for doc in docs), dtype=np.float64, count=n
        )
        has_terms = lengths > 0.0
        if has_terms.any():
            if has_terms.all():
                inv_scales = weights / (self._mass_scale * lengths)
                parts = [doc.term_arrays() for doc in docs]
            else:
                keep = np.flatnonzero(has_terms)
                inv_scales = (
                    weights[keep] / (self._mass_scale * lengths[keep])
                )
                parts = [docs[i].term_arrays() for i in keep.tolist()]
            term_parts = [term_ids for term_ids, _ in parts]
            lens = np.fromiter(
                (term_ids.size for term_ids in term_parts),
                dtype=np.int64, count=len(term_parts),
            )
            all_terms = np.concatenate(term_parts)
            all_values = np.concatenate(
                [counts for _, counts in parts]
            ) * np.repeat(inv_scales, lens)
            cols = self._lookup_cols(all_terms)
            known = cols >= 0
            if not known.all():
                cols = cols[known]
                all_values = all_values[known]
            np.subtract.at(self._mass_raw, cols, all_values)
            residues = self._mass_raw[cols]
            negative = residues <= 0.0
            if negative.any():
                self._mass_raw[cols[negative]] = 0.0
        if not self._doc_row:
            self._reset_empty()
        else:
            self._maybe_compact_rows()
        return clamped

    def expired_doc_ids(self, epsilon: float) -> List[str]:
        used = self._rows_used
        if used == 0:
            return []
        weights = self._dw_raw[:used] * self._dw_scale
        mask = self._active[:used] & (
            (weights == 0.0) | (weights < epsilon)
        )
        ids = (self._row_doc[row] for row in np.flatnonzero(mask).tolist())
        return [doc_id for doc_id in ids if doc_id is not None]

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._doc_row)

    def dw(self, doc_id: str) -> float:
        row = self._doc_row[doc_id]
        return float(self._dw_raw[row]) * self._dw_scale

    def weights(self) -> Dict[str, float]:
        scale = self._dw_scale
        raw = self._dw_raw
        return {
            doc_id: float(raw[row]) * scale
            for doc_id, row in self._doc_row.items()
        }

    @property
    def min_weight_bound(self) -> float:
        return self._min_dw

    def term_mass(self, term_id: int) -> float:
        cols = self._lookup_cols(np.asarray([term_id], dtype=np.int64))
        col = int(cols[0])
        if col < 0:
            return 0.0
        raw = float(self._mass_raw[col])
        if raw <= 0.0:
            return 0.0
        return raw * self._mass_scale

    def term_mass_array(self, term_ids: IntArray) -> FloatArray:
        if self._n_terms == 0:
            return np.zeros(term_ids.shape, dtype=np.float64)
        cols = self._lookup_cols(term_ids)
        masses = np.where(cols >= 0, self._mass_raw[np.maximum(cols, 0)],
                          0.0)
        np.maximum(masses, 0.0, out=masses)
        return masses * self._mass_scale

    def term_ids(self) -> List[int]:
        n = self._n_terms
        positive = self._mass_raw[:n] > 0.0
        ids: List[int] = self._col_term[:n][positive].tolist()
        return ids

    def vocabulary_size(self) -> int:
        n = self._n_terms
        return int(np.count_nonzero(self._mass_raw[:n] > 0.0))

    def clone(self) -> "ColumnarStatisticsBackend":
        other = ColumnarStatisticsBackend()
        other.recorder = self.recorder
        other.tdw = self.tdw
        other._doc_row = dict(self._doc_row)
        other._row_doc = list(self._row_doc)
        other._dw_raw = self._dw_raw.copy()
        other._active = self._active.copy()
        other._dw_scale = self._dw_scale
        other._min_dw = self._min_dw
        other._mass_raw = self._mass_raw.copy()
        other._mass_scale = self._mass_scale
        other._n_terms = self._n_terms
        other._col_term = self._col_term.copy()
        other._term_col = self._term_col.copy()
        return other
