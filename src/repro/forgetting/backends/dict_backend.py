"""The ``"dict"`` reference backend.

Plain-Python state exactly as :class:`CorpusStatistics` kept it before
the backend split: per-document weights in a dict decayed eagerly (an
O(m) multiply per clock advance, exactly as the paper's Eq. 27
describes), term masses in a dict under one lazy global scale factor
(Eq. 28's multiply applied to a single scalar instead of every
vocabulary entry), folded back into the raw table before the scalar
underflows.

This is the semantic reference the ``"columnar"`` backend is
property-tested against; keep its arithmetic — including the exact
expression groupings — unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..._typing import FloatArray, IntArray
from ...corpus.document import Document
from ...obs import NULL_RECORDER, Recorder
from .base import SCALE_FLOOR


class DictStatisticsBackend:
    """Reference dict-of-floats state store."""

    name = "dict"

    def __init__(self) -> None:
        self.recorder: Recorder = NULL_RECORDER
        self.tdw = 0.0
        self._dw: Dict[str, float] = {}
        self._term_mass_raw: Dict[int, float] = {}
        self._term_scale = 1.0
        # conservative lower bound on the smallest active weight; only
        # ever shrinks between resets, which is exactly what the expiry
        # fast path needs (it must never miss an underflowed weight)
        self._min_dw = math.inf

    # -- mutations ---------------------------------------------------------

    def decay(self, factor: float) -> None:
        if factor == 1.0:
            return
        for doc_id in self._dw:
            self._dw[doc_id] *= factor
        self.tdw *= factor
        self._min_dw *= factor
        if self._term_scale * factor < SCALE_FLOOR:
            # fold the old scale *and* this decay into the raw table
            # before the scalar underflows to 0.0 (a huge time jump
            # can do that in one step, which would poison every
            # later insert with a division by zero)
            self._fold_scale(extra_factor=factor)
        else:
            self._term_scale *= factor

    def _fold_scale(self, extra_factor: float = 1.0) -> None:
        scale = self._term_scale * extra_factor
        self._term_mass_raw = {
            term_id: mass * scale
            for term_id, mass in self._term_mass_raw.items()
            if mass * scale > 0.0
        }
        self._term_scale = 1.0
        if self.recorder.enabled:
            self.recorder.counter("statistics.scale_folds")

    def insert_batch(
        self, entries: Sequence[Tuple[Document, float]]
    ) -> None:
        for doc, weight in entries:
            self._dw[doc.doc_id] = weight
            self.tdw += weight
            if weight < self._min_dw:
                self._min_dw = weight
            if doc.length:
                inv_scale = weight / (self._term_scale * doc.length)
                for term_id, count in doc.term_counts.items():
                    self._term_mass_raw[term_id] = (
                        self._term_mass_raw.get(term_id, 0.0)
                        + count * inv_scale
                    )

    def remove(self, doc: Document) -> Tuple[float, bool]:
        weight = self._dw.pop(doc.doc_id)
        self.tdw -= weight
        clamped = False
        if self.tdw < 0.0:
            self.tdw = 0.0
            clamped = True
        if doc.length:
            inv_scale = weight / (self._term_scale * doc.length)
            for term_id, count in doc.term_counts.items():
                mass = self._term_mass_raw.get(term_id)
                if mass is None:
                    continue
                mass -= count * inv_scale
                if mass <= 0.0:
                    del self._term_mass_raw[term_id]
                else:
                    self._term_mass_raw[term_id] = mass
        if not self._dw:
            # clear float residue so an emptied corpus is exactly empty
            self.tdw = 0.0
            self._term_mass_raw.clear()
            self._term_scale = 1.0
            self._min_dw = math.inf
        return weight, clamped

    def remove_batch(self, docs: Sequence[Document]) -> bool:
        """Per-document removal loop; True if any ``tdw`` clamp fired."""
        clamped = False
        for doc in docs:
            _, doc_clamped = self.remove(doc)
            clamped = clamped or doc_clamped
        return clamped

    def expired_doc_ids(self, epsilon: float) -> List[str]:
        return [
            doc_id for doc_id, weight in self._dw.items()
            if weight == 0.0 or weight < epsilon
        ]

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._dw)

    def dw(self, doc_id: str) -> float:
        return self._dw[doc_id]

    def weights(self) -> Dict[str, float]:
        return dict(self._dw)

    @property
    def min_weight_bound(self) -> float:
        return self._min_dw

    def term_mass(self, term_id: int) -> float:
        mass = self._term_mass_raw.get(term_id, 0.0)
        if mass <= 0.0:
            return 0.0
        return mass * self._term_scale

    def term_mass_array(self, term_ids: IntArray) -> FloatArray:
        raw = self._term_mass_raw
        masses = np.fromiter(
            (raw.get(tid, 0.0) for tid in term_ids.tolist()),
            dtype=np.float64,
            count=term_ids.size,
        )
        np.maximum(masses, 0.0, out=masses)
        return masses * self._term_scale

    def term_ids(self) -> List[int]:
        return [tid for tid, mass in self._term_mass_raw.items()
                if mass > 0.0]

    def vocabulary_size(self) -> int:
        return len(self._term_mass_raw)

    def clone(self) -> "DictStatisticsBackend":
        other = DictStatisticsBackend()
        other.recorder = self.recorder
        other.tdw = self.tdw
        other._dw = dict(self._dw)
        other._term_mass_raw = dict(self._term_mass_raw)
        other._term_scale = self._term_scale
        other._min_dw = self._min_dw
        return other
