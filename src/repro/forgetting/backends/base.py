"""The :class:`StatisticsBackend` protocol.

A *statistics backend* is the state store of
:class:`~repro.forgetting.CorpusStatistics`: it owns the per-document
weights ``dw_i`` (Eq. 1/27), the total weight ``tdw`` (Eq. 3/28) and
the per-term masses ``S_k`` behind ``Pr(t_k)`` (Eq. 10), and applies
the four mutations the incremental update needs — decay, batch insert,
removal, and the expiry scan. The *semantics* (clock handling, batch
validation, spans, the §5.2 expiry step) live exactly once in
:class:`CorpusStatistics`; backends only answer state queries and apply
mutations, so a new representation (columnar arrays, shared memory,
out-of-core) plugs in without touching the update logic — the same
split the clustering layer uses for its engines.

Backends are constructed with no arguments via a factory registered in
:mod:`repro.forgetting.backends.registry` and selected by name through
``CorpusStatistics(model, backend="columnar")``, the pipeline
clusterers, checkpoints, and ``repro cluster --stats-backend``.

All mutating calls keep Eq. 27-29's incremental bookkeeping exact:

* :meth:`~StatisticsBackend.decay` applies one global multiplier
  ``λ^Δτ`` to every weight and mass,
* :meth:`~StatisticsBackend.insert_batch` adds each document's
  ``dw_i`` and its ``dw_i · f_ik / len_i`` term contributions,
* :meth:`~StatisticsBackend.remove` reverses exactly those
  contributions.

Term masses are reported *scaled* (any internal lazy scale factor is
already applied), so ``Pr(t_k) = term_mass(k) / tdw`` holds for every
backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from ..._typing import FloatArray, IntArray
from ...corpus.document import Document

if TYPE_CHECKING:
    from ...obs import Recorder


#: Fold the internal lazy scale factor back into the raw table before it
#: underflows (a huge time jump can reach 0.0 in one multiply, which
#: would poison every later insert with a division by zero).
SCALE_FLOOR = 1e-150


@runtime_checkable
class StatisticsBackend(Protocol):
    """State store behind :class:`~repro.forgetting.CorpusStatistics`.

    ``tdw`` is a plain mutable attribute (not a property) so tests can
    simulate drift; ``recorder`` is attached by the owning statistics
    object and is only used for internal-maintenance counters such as
    ``statistics.scale_folds``.
    """

    tdw: float

    recorder: "Recorder"

    # -- mutations -------------------------------------------------------

    def decay(self, factor: float) -> None:
        """Multiply every weight and term mass by ``λ^Δτ`` (Eq. 27-28)."""

    def insert_batch(
        self, entries: Sequence[Tuple[Document, float]]
    ) -> None:
        """Insert ``(document, weight)`` pairs (Eq. 27-28 insertions).

        Callers guarantee the doc ids are new; term contributions are
        ``weight · f_ik / len_i`` per Eq. 10's numerator.
        """

    def remove(self, doc: Document) -> Tuple[float, bool]:
        """Reverse one document's contributions.

        Returns ``(weight_removed, tdw_clamped)`` — the flag is True
        when float residue drove ``tdw`` negative and it was clamped
        back to 0.0 (the owner emits an obs counter for that).
        """

    def remove_batch(self, docs: Sequence[Document]) -> bool:
        """Reverse many documents' contributions in one pass.

        Semantically ``any(remove(doc)[1] for doc in docs)`` — returns
        whether any ``tdw`` clamp fired — but lets array backends batch
        the term-mass reversal (the expiry path removes whole cohorts).
        """

    def expired_doc_ids(self, epsilon: float) -> List[str]:
        """Ids of documents with ``dw == 0.0 or dw < ε``, in insertion
        order (the §5.2 step-2 scan)."""

    # -- queries ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of tracked documents."""

    def dw(self, doc_id: str) -> float:
        """Weight of one document; raises ``KeyError`` when unknown."""

    def weights(self) -> Dict[str, float]:
        """``{doc_id: dw_i}`` snapshot in insertion order."""

    @property
    def min_weight_bound(self) -> float:
        """A lower bound on the smallest active weight (``inf`` when
        empty). Conservative: may under-estimate after removals, never
        over-estimates — the expiry fast path relies on that."""

    def term_mass(self, term_id: int) -> float:
        """Scaled term mass ``S_k`` (0.0 when absent or non-positive)."""

    def term_mass_array(self, term_ids: IntArray) -> FloatArray:
        """Vectorised :meth:`term_mass` over an int64 id array."""

    def term_ids(self) -> List[int]:
        """Ids of all terms with positive mass."""

    def vocabulary_size(self) -> int:
        """Number of term slots currently holding positive mass."""

    def clone(self) -> "StatisticsBackend":
        """Independent deep copy of the state."""
