"""Document forgetting model and incremental corpus statistics (paper §3, §5.1)."""

from .model import ForgettingModel
from .statistics import CorpusStatistics

__all__ = ["ForgettingModel", "CorpusStatistics"]
