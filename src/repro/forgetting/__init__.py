"""Document forgetting model and incremental corpus statistics (paper §3, §5.1)."""

from .backends import (
    available_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .frozen import FrozenStatistics
from .model import ForgettingModel
from .statistics import CorpusStatistics

__all__ = [
    "ForgettingModel",
    "CorpusStatistics",
    "FrozenStatistics",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "resolve_backend",
]
