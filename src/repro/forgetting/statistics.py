"""Incremental corpus statistics (paper Sections 3 and 5.1).

:class:`CorpusStatistics` maintains, under exponential decay:

* per-document weights ``dw_i = λ^(τ - T_i)`` (Eq. 1, updated per Eq. 27),
* the total weight ``tdw = Σ dw_i`` (Eq. 3, updated per Eq. 28),
* selection probabilities ``Pr(d_i) = dw_i / tdw`` (Eq. 4 / 29),
* term masses ``S_k = Σ_i dw_i · f_ik / len_i`` so that term occurrence
  probabilities ``Pr(t_k) = S_k / tdw`` (Eq. 10) and novelty idf weights
  ``idf_k = 1 / sqrt(Pr(t_k))`` (Eq. 14) are O(1) to query.

Two update paths exist and must agree (a hypothesis test asserts this):

* the **incremental** path (``advance_to`` + ``observe`` + ``expire``),
  which costs O(existing docs) for the decay multiply plus O(new doc
  terms) for insertions — the paper's Section 5.1;
* the **from-scratch** path (:meth:`CorpusStatistics.from_scratch`),
  which recomputes every statistic by a full pass — the paper's
  non-incremental baseline in Experiment 1.

Implementation note: per-document weights are decayed eagerly (an O(m)
multiply, exactly as the paper describes), but the *term* masses use a
single global scale factor — multiplying one scalar replaces touching
every vocabulary entry. The scale is folded back into the raw table
when it threatens underflow.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..corpus.document import Document
from ..exceptions import (
    ConfigurationError,
    EmptyCorpusError,
    UnknownDocumentError,
)
from ..obs import Recorder, Span, resolve
from .model import ForgettingModel

_SCALE_FLOOR = 1e-150


class CorpusStatistics:
    """Time-decayed corpus statistics with incremental maintenance."""

    def __init__(
        self,
        model: ForgettingModel,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.model = model
        self.recorder = resolve(recorder)
        self._now: Optional[float] = None
        self._docs: Dict[str, Document] = {}
        self._dw: Dict[str, float] = {}
        self._tdw = 0.0
        self._term_mass_raw: Dict[int, float] = {}
        self._term_scale = 1.0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_scratch(
        cls,
        model: ForgettingModel,
        documents: Iterable[Document],
        at_time: float,
        recorder: Optional[Recorder] = None,
    ) -> "CorpusStatistics":
        """Non-incremental rebuild: recompute every statistic in one pass.

        This is the baseline the paper's Experiment 1 times against the
        incremental path. Documents whose weight at ``at_time`` falls
        below ``ε`` are excluded (expiry applied during the rebuild).
        """
        stats = cls(model, recorder=recorder)
        stats._now = float(at_time)
        with Span(stats.recorder, "statistics.rebuild") as span:
            for doc in documents:
                weight = model.weight(doc.timestamp, at_time)
                if model.is_expired(weight):
                    continue
                stats._insert(doc, weight)
            span.tags["docs"] = len(stats._docs)
        if stats.recorder.enabled:
            stats.recorder.counter(
                "statistics.docs_observed", len(stats._docs)
            )
            stats._emit_level_gauges()
        return stats

    def clone(self) -> "CorpusStatistics":
        """Deep copy (documents are shared; they are immutable)."""
        other = CorpusStatistics(self.model, recorder=self.recorder)
        other._now = self._now
        other._docs = dict(self._docs)
        other._dw = dict(self._dw)
        other._tdw = self._tdw
        other._term_mass_raw = dict(self._term_mass_raw)
        other._term_scale = self._term_scale
        return other

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> Optional[float]:
        """Current clock ``τ`` in days; ``None`` before the first update."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Decay all statistics to ``time``; returns the multiplier λ^Δτ.

        Per Eq. 27-28 the decay is a single multiplication per document
        weight and one for ``tdw``; term masses decay through the global
        scale factor.
        """
        if self._now is None:
            self._now = float(time)
            return 1.0
        if time < self._now:
            raise ConfigurationError(
                f"cannot advance clock backwards: now={self._now}, "
                f"requested {time}"
            )
        factor = self.model.decay_over(time - self._now)
        if factor != 1.0:
            for doc_id in self._dw:
                self._dw[doc_id] *= factor
            self._tdw *= factor
            if self._term_scale * factor < _SCALE_FLOOR:
                # fold the old scale *and* this decay into the raw table
                # before the scalar underflows to 0.0 (a huge time jump
                # can do that in one step, which would poison every
                # later insert with a division by zero)
                self._fold_scale(extra_factor=factor)
            else:
                self._term_scale *= factor
        self._now = float(time)
        return factor

    def _fold_scale(self, extra_factor: float = 1.0) -> None:
        scale = self._term_scale * extra_factor
        self._term_mass_raw = {
            term_id: mass * scale
            for term_id, mass in self._term_mass_raw.items()
            if mass * scale > 0.0
        }
        self._term_scale = 1.0
        if self.recorder.enabled:
            self.recorder.counter("statistics.scale_folds")

    # -- insertion / removal ------------------------------------------------

    def observe(self, documents: Iterable[Document], at_time: float) -> int:
        """Advance the clock to ``at_time`` and insert ``documents``.

        Each new document gets ``dw = λ^(at_time - T_i)`` — exactly 1.0
        when it arrives at the update time, as in the paper's batch
        model. Returns the number of documents inserted.

        The batch is **atomic**: every document is validated (no future
        timestamps, no ids already tracked, no intra-batch duplicates,
        clock not moving backwards) *before* any state — including the
        clock — is mutated, so a rejected batch leaves the statistics
        exactly as they were and can be corrected and re-sent.

        Backdated documents older than the life span are inserted too
        (expiry is the separate §5.2 step — call :meth:`expire` after,
        as the pipelines do); only :meth:`from_scratch` applies expiry
        during construction, because it rebuilds the *active* set.
        """
        batch = list(documents)
        self._validate_batch(batch, at_time)
        with Span(self.recorder, "statistics.observe",
                  {"batch": len(batch)}):
            self.advance_to(at_time)
            for doc in batch:
                self._insert(doc, self.model.weight(doc.timestamp, at_time))
        if self.recorder.enabled:
            self.recorder.counter("statistics.docs_observed", len(batch))
            self._emit_level_gauges()
        return len(batch)

    def _validate_batch(
        self, batch: List[Document], at_time: float
    ) -> None:
        """Reject a bad batch before any mutation (atomicity guard)."""
        if self._now is not None and at_time < self._now:
            raise ConfigurationError(
                f"cannot advance clock backwards: now={self._now}, "
                f"requested {at_time}"
            )
        seen: set = set()
        for doc in batch:
            if doc.timestamp > at_time:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} from the future: "
                    f"T={doc.timestamp} > τ={at_time}"
                )
            if doc.doc_id in self._docs:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} already tracked"
                )
            if doc.doc_id in seen:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} appears twice in the batch"
                )
            seen.add(doc.doc_id)

    def _emit_level_gauges(self) -> None:
        """Gauge snapshot after a state change (enabled recorders only)."""
        self.recorder.gauge("statistics.active_docs", len(self._docs))
        self.recorder.gauge("statistics.tdw", self._tdw)
        self.recorder.gauge(
            "statistics.vocabulary_size", len(self._term_mass_raw)
        )

    def _insert(self, doc: Document, weight: float) -> None:
        if doc.doc_id in self._docs:
            raise ConfigurationError(
                f"document {doc.doc_id!r} already tracked"
            )
        self._docs[doc.doc_id] = doc
        self._dw[doc.doc_id] = weight
        self._tdw += weight
        if doc.length:
            inv_scale = weight / (self._term_scale * doc.length)
            for term_id, count in doc.term_counts.items():
                self._term_mass_raw[term_id] = (
                    self._term_mass_raw.get(term_id, 0.0) + count * inv_scale
                )

    def remove(self, doc_id: str) -> Document:
        """Remove one document, reversing its statistics contributions."""
        try:
            doc = self._docs.pop(doc_id)
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None
        weight = self._dw.pop(doc_id)
        self._tdw -= weight
        if self._tdw < 0.0:
            self._tdw = 0.0
        if doc.length:
            inv_scale = weight / (self._term_scale * doc.length)
            for term_id, count in doc.term_counts.items():
                mass = self._term_mass_raw.get(term_id)
                if mass is None:
                    continue
                mass -= count * inv_scale
                if mass <= 0.0:
                    del self._term_mass_raw[term_id]
                else:
                    self._term_mass_raw[term_id] = mass
        if not self._docs:
            # clear float residue so an emptied corpus is exactly empty
            self._tdw = 0.0
            self._term_mass_raw.clear()
            self._term_scale = 1.0
        return doc

    def expire(self) -> List[Document]:
        """Remove and return all documents with ``dw < ε`` (§5.2 step 2).

        Documents whose weight has underflowed to exactly 0.0 are
        dropped even when expiry is disabled (``life_span=None``):
        they carry no probability mass, and keeping them would let
        ``tdw`` reach 0.0 with documents still "active".
        """
        with Span(self.recorder, "statistics.expire"):
            expired_ids = [
                doc_id for doc_id, weight in self._dw.items()
                if weight == 0.0 or self.model.is_expired(weight)
            ]
            expired = [self.remove(doc_id) for doc_id in expired_ids]
        if self.recorder.enabled:
            self.recorder.counter("statistics.docs_expired", len(expired))
            self._emit_level_gauges()
        return expired

    # -- queries -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._docs

    def doc_ids(self) -> List[str]:
        return list(self._docs.keys())

    def documents(self) -> List[Document]:
        return list(self._docs.values())

    def document(self, doc_id: str) -> Document:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None

    @property
    def tdw(self) -> float:
        """Total document weight ``Σ dw_i`` (Eq. 3)."""
        return self._tdw

    def dw(self, doc_id: str) -> float:
        """Weight ``dw_i`` of one document (Eq. 1)."""
        try:
            return self._dw[doc_id]
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None

    def pr_document(self, doc_id: str) -> float:
        """Selection probability ``Pr(d_i) = dw_i / tdw`` (Eq. 4)."""
        if self._tdw <= 0.0:
            raise EmptyCorpusError("no document weight in the corpus")
        return self.dw(doc_id) / self._tdw

    def pr_term(self, term_id: int) -> float:
        """Occurrence probability ``Pr(t_k)`` (Eq. 10); 0.0 if unseen."""
        if self._tdw <= 0.0:
            return 0.0
        mass = self._term_mass_raw.get(term_id, 0.0)
        if mass <= 0.0:
            return 0.0
        return min(1.0, mass * self._term_scale / self._tdw)

    def idf(self, term_id: int) -> float:
        """Novelty idf ``1 / sqrt(Pr(t_k))`` (Eq. 14); 0.0 if unseen."""
        pr = self.pr_term(term_id)
        if pr <= 0.0:
            return 0.0
        return 1.0 / math.sqrt(pr)

    def term_ids(self) -> List[int]:
        """Ids of all terms with positive mass."""
        return [tid for tid in self._term_mass_raw
                if self.pr_term(tid) > 0.0]

    def term_probabilities(self) -> Dict[int, float]:
        """``{term_id: Pr(t_k)}`` for all active terms."""
        return {tid: self.pr_term(tid) for tid in self._term_mass_raw}

    def weights(self) -> Dict[str, float]:
        """``{doc_id: dw_i}`` snapshot."""
        return dict(self._dw)

    def validate(self, rel_tol: float = 1e-6) -> None:
        """Self-check: stored aggregates match a from-scratch recompute.

        Raises ``AssertionError`` on drift; used by tests and available
        to callers running very long streams.
        """
        expected_tdw = sum(self._dw.values())
        assert math.isclose(self._tdw, expected_tdw, rel_tol=rel_tol,
                            abs_tol=1e-12), (
            f"tdw drift: stored {self._tdw}, expected {expected_tdw}"
        )
        expected_mass: Dict[int, float] = {}
        for doc_id, doc in self._docs.items():
            if not doc.length:
                continue
            weight = self._dw[doc_id]
            for term_id, count in doc.term_counts.items():
                expected_mass[term_id] = (
                    expected_mass.get(term_id, 0.0)
                    + weight * count / doc.length
                )
        for term_id, expected in expected_mass.items():
            stored = self._term_mass_raw.get(term_id, 0.0) * self._term_scale
            assert math.isclose(stored, expected, rel_tol=rel_tol,
                                abs_tol=1e-12), (
                f"term {term_id} mass drift: stored {stored}, "
                f"expected {expected}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorpusStatistics(docs={len(self._docs)}, tdw={self._tdw:.4f}, "
            f"terms={len(self._term_mass_raw)}, now={self._now})"
        )
