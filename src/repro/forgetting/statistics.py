"""Incremental corpus statistics (paper Sections 3 and 5.1).

:class:`CorpusStatistics` maintains, under exponential decay:

* per-document weights ``dw_i = λ^(τ - T_i)`` (Eq. 1, updated per Eq. 27),
* the total weight ``tdw = Σ dw_i`` (Eq. 3, updated per Eq. 28),
* selection probabilities ``Pr(d_i) = dw_i / tdw`` (Eq. 4 / 29),
* term masses ``S_k = Σ_i dw_i · f_ik / len_i`` so that term occurrence
  probabilities ``Pr(t_k) = S_k / tdw`` (Eq. 10) and novelty idf weights
  ``idf_k = 1 / sqrt(Pr(t_k))`` (Eq. 14) are O(1) to query.

Two update paths exist and must agree (a hypothesis test asserts this):

* the **incremental** path (``advance_to`` + ``observe`` + ``expire``),
  which costs O(existing docs) for the decay multiply plus O(new doc
  terms) for insertions — the paper's Section 5.1;
* the **from-scratch** path (:meth:`CorpusStatistics.from_scratch`),
  which recomputes every statistic by a full pass — the paper's
  non-incremental baseline in Experiment 1.

The *state* lives in a pluggable backend
(:mod:`repro.forgetting.backends`): ``"dict"`` is the plain-Python
reference (eager O(m) weight decay, lazily scaled term-mass dict) and
``"columnar"`` keeps both weights and masses in numpy arrays so decay
is two scalar multiplies and batch insert is one scatter-add. A second
hypothesis suite interleaves every mutation on both backends and
asserts they agree to 1e-9. This class owns everything backends do
not: the clock, batch validation and atomicity, expiry policy, and
observability.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from .._typing import FloatArray, IntArray
from ..corpus.document import Document
from ..exceptions import (
    ConfigurationError,
    EmptyCorpusError,
    UnknownDocumentError,
)
from ..obs import Recorder, Span, resolve
from .backends import StatisticsBackend, resolve_backend
from .frozen import FrozenStatistics
from .model import ForgettingModel


class CorpusStatistics:
    """Time-decayed corpus statistics with incremental maintenance."""

    def __init__(
        self,
        model: ForgettingModel,
        recorder: Optional[Recorder] = None,
        backend: Union[str, StatisticsBackend] = "dict",
    ) -> None:
        self.model = model
        self._now: Optional[float] = None
        self._docs: Dict[str, Document] = {}
        if isinstance(backend, str):
            self.backend_name = backend
            self._backend = resolve_backend(backend)()
        else:
            self.backend_name = getattr(backend, "name", type(backend).__name__)
            self._backend = backend
        self.recorder = resolve(recorder)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_scratch(
        cls,
        model: ForgettingModel,
        documents: Iterable[Document],
        at_time: float,
        recorder: Optional[Recorder] = None,
        backend: Union[str, StatisticsBackend] = "dict",
    ) -> "CorpusStatistics":
        """Non-incremental rebuild: recompute every statistic in one pass.

        This is the baseline the paper's Experiment 1 times against the
        incremental path. Documents whose weight at ``at_time`` falls
        below ``ε`` are excluded (expiry applied during the rebuild).
        """
        stats = cls(model, recorder=recorder, backend=backend)
        stats._now = float(at_time)
        with Span(stats.recorder, "statistics.rebuild") as span:
            entries: List[Tuple[Document, float]] = []
            for doc in documents:
                weight = model.weight(doc.timestamp, at_time)
                if model.is_expired(weight):
                    continue
                if doc.doc_id in stats._docs:
                    raise ConfigurationError(
                        f"document {doc.doc_id!r} already tracked"
                    )
                stats._docs[doc.doc_id] = doc
                entries.append((doc, weight))
            stats._backend.insert_batch(entries)
            span.tags["docs"] = len(stats._docs)
        if stats.recorder.enabled:
            stats.recorder.counter(
                "statistics.docs_observed", len(stats._docs)
            )
            stats._emit_level_gauges()
        return stats

    def clone(self) -> "CorpusStatistics":
        """Deep copy (documents are shared; they are immutable)."""
        other = CorpusStatistics(
            self.model, recorder=self.recorder,
            backend=self._backend.clone(),
        )
        other.backend_name = self.backend_name
        other._now = self._now
        other._docs = dict(self._docs)
        return other

    # -- observability -----------------------------------------------------

    @property
    def recorder(self) -> Recorder:
        return self._recorder

    @recorder.setter
    def recorder(self, value: Recorder) -> None:
        # the backend shares the recorder so internal maintenance
        # (scale folds) stays observable after set_recorder() swaps
        self._recorder = value
        self._backend.recorder = value

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> Optional[float]:
        """Current clock ``τ`` in days; ``None`` before the first update."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Decay all statistics to ``time``; returns the multiplier λ^Δτ.

        Per Eq. 27-28 the decay is a single multiplication per document
        weight and one for ``tdw``; the columnar backend collapses both
        into per-array scale factors.
        """
        if self._now is None:
            self._now = float(time)
            return 1.0
        if time < self._now:
            raise ConfigurationError(
                f"cannot advance clock backwards: now={self._now}, "
                f"requested {time}"
            )
        factor = self.model.decay_over(time - self._now)
        if factor != 1.0:
            self._backend.decay(factor)
        self._now = float(time)
        return factor

    # -- insertion / removal ------------------------------------------------

    def observe(self, documents: Iterable[Document], at_time: float) -> int:
        """Advance the clock to ``at_time`` and insert ``documents``.

        Each new document gets ``dw = λ^(at_time - T_i)`` — exactly 1.0
        when it arrives at the update time, as in the paper's batch
        model. Returns the number of documents inserted.

        The batch is **atomic**: every document is validated (no future
        timestamps, no ids already tracked, no intra-batch duplicates,
        clock not moving backwards) *before* any state — including the
        clock — is mutated, so a rejected batch leaves the statistics
        exactly as they were and can be corrected and re-sent.

        Backdated documents older than the life span are inserted too
        (expiry is the separate §5.2 step — call :meth:`expire` after,
        as the pipelines do); only :meth:`from_scratch` applies expiry
        during construction, because it rebuilds the *active* set.
        """
        batch = list(documents)
        self._validate_batch(batch, at_time)
        with Span(self.recorder, "statistics.observe",
                  {"batch": len(batch)}):
            self.advance_to(at_time)
            # λ^(τ-T) inline — the exact expression model.weight()
            # evaluates, minus its now>=T guard, which _validate_batch
            # has already enforced for the whole batch
            decay = self.model.decay_factor
            entries: List[Tuple[Document, float]] = [
                (doc, decay ** (at_time - doc.timestamp)) for doc in batch
            ]
            self._docs.update((doc.doc_id, doc) for doc in batch)
            self._backend.insert_batch(entries)
        if self.recorder.enabled:
            self.recorder.counter("statistics.docs_observed", len(batch))
            self._emit_level_gauges()
        return len(batch)

    def _validate_batch(
        self, batch: List[Document], at_time: float
    ) -> None:
        """Reject a bad batch before any mutation (atomicity guard)."""
        if self._now is not None and at_time < self._now:
            raise ConfigurationError(
                f"cannot advance clock backwards: now={self._now}, "
                f"requested {at_time}"
            )
        if not batch:
            return
        # C-level screen first (max / set / isdisjoint); only walk the
        # batch again when something is wrong, to name the offender
        ids = [doc.doc_id for doc in batch]
        unique_ids = set(ids)
        clean = (
            len(unique_ids) == len(ids)
            and unique_ids.isdisjoint(self._docs.keys())
            and max(doc.timestamp for doc in batch) <= at_time
        )
        if clean:
            return
        seen: Set[str] = set()
        for doc in batch:
            if doc.timestamp > at_time:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} from the future: "
                    f"T={doc.timestamp} > τ={at_time}"
                )
            if doc.doc_id in self._docs:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} already tracked"
                )
            if doc.doc_id in seen:
                raise ConfigurationError(
                    f"document {doc.doc_id!r} appears twice in the batch"
                )
            seen.add(doc.doc_id)

    def _emit_level_gauges(self) -> None:
        """Gauge snapshot after a state change (enabled recorders only)."""
        self.recorder.gauge("statistics.active_docs", len(self._docs))
        self.recorder.gauge("statistics.tdw", self._backend.tdw)
        self.recorder.gauge(
            "statistics.vocabulary_size", self._backend.vocabulary_size()
        )

    def remove(self, doc_id: str) -> Document:
        """Remove one document, reversing its statistics contributions."""
        try:
            doc = self._docs.pop(doc_id)
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None
        _, tdw_clamped = self._backend.remove(doc)
        if tdw_clamped and self.recorder.enabled:
            # float residue drove tdw negative; the clamp keeps the
            # probabilities well-defined but is worth counting — a
            # hot loop of clamps would mean real drift
            self.recorder.counter("statistics.tdw_clamped")
        return doc

    def expire(self) -> List[Document]:
        """Remove and return all documents with ``dw < ε`` (§5.2 step 2).

        Documents whose weight has underflowed to exactly 0.0 are
        dropped even when expiry is disabled (``life_span=None``):
        they carry no probability mass, and keeping them would let
        ``tdw`` reach 0.0 with documents still "active".

        When expiry is disabled and no weight can have underflowed
        (the backend's lower bound on active weights is still
        positive), nothing can expire and the scan — plus its span and
        counters — is skipped entirely.
        """
        if (self.model.life_span is None
                and self._backend.min_weight_bound > 0.0):
            return []
        with Span(self.recorder, "statistics.expire"):
            expired_ids = self._backend.expired_doc_ids(self.model.epsilon)
            expired = [self._docs.pop(doc_id) for doc_id in expired_ids]
            tdw_clamped = self._backend.remove_batch(expired)
            if tdw_clamped and self.recorder.enabled:
                self.recorder.counter("statistics.tdw_clamped")
        if self.recorder.enabled:
            self.recorder.counter("statistics.docs_expired", len(expired))
            self._emit_level_gauges()
        return expired

    # -- queries -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._docs

    def doc_ids(self) -> List[str]:
        return list(self._docs.keys())

    def documents(self) -> List[Document]:
        return list(self._docs.values())

    def document(self, doc_id: str) -> Document:
        try:
            return self._docs[doc_id]
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None

    @property
    def tdw(self) -> float:
        """Total document weight ``Σ dw_i`` (Eq. 3)."""
        return self._backend.tdw

    def dw(self, doc_id: str) -> float:
        """Weight ``dw_i`` of one document (Eq. 1)."""
        try:
            return self._backend.dw(doc_id)
        except KeyError:
            raise UnknownDocumentError(
                f"document {doc_id!r} not tracked"
            ) from None

    def pr_document(self, doc_id: str) -> float:
        """Selection probability ``Pr(d_i) = dw_i / tdw`` (Eq. 4)."""
        tdw = self._backend.tdw
        if tdw <= 0.0:
            raise EmptyCorpusError("no document weight in the corpus")
        return self.dw(doc_id) / tdw

    def pr_term(self, term_id: int) -> float:
        """Occurrence probability ``Pr(t_k)`` (Eq. 10); 0.0 if unseen."""
        tdw = self._backend.tdw
        if tdw <= 0.0:
            return 0.0
        mass = self._backend.term_mass(term_id)
        if mass <= 0.0:
            return 0.0
        return min(1.0, mass / tdw)

    def idf(self, term_id: int) -> float:
        """Novelty idf ``1 / sqrt(Pr(t_k))`` (Eq. 14); 0.0 if unseen."""
        pr = self.pr_term(term_id)
        if pr <= 0.0:
            return 0.0
        return 1.0 / math.sqrt(pr)

    def idf_array(self, term_ids: IntArray) -> FloatArray:
        """Vectorised :meth:`idf` over an int64 term-id array.

        Identical arithmetic to the scalar path (same operation order,
        so the same floats), evaluated with three array expressions —
        this is what the batched vectorisation path queries instead of
        one Python call per term.
        """
        tdw = self._backend.tdw
        if tdw <= 0.0 or term_ids.size == 0:
            return np.zeros(term_ids.shape, dtype=np.float64)
        masses = self._backend.term_mass_array(term_ids)
        pr = np.where(
            masses > 0.0, np.minimum(1.0, masses / tdw), 0.0
        )
        return np.where(
            pr > 0.0, 1.0 / np.sqrt(np.where(pr > 0.0, pr, 1.0)), 0.0
        )

    def term_ids(self) -> List[int]:
        """Ids of all terms with positive mass."""
        return [tid for tid in self._backend.term_ids()
                if self.pr_term(tid) > 0.0]

    def term_probabilities(self) -> Dict[int, float]:
        """``{term_id: Pr(t_k)}`` for all active terms."""
        return {tid: self.pr_term(tid)
                for tid in self._backend.term_ids()}

    def weights(self) -> Dict[str, float]:
        """``{doc_id: dw_i}`` snapshot."""
        return self._backend.weights()

    def freeze(self) -> FrozenStatistics:
        """Immutable point-in-time view of the probability tables.

        Captures the clock, ``tdw`` and every positive term mass into
        plain numpy arrays — O(vocabulary), no per-document state — so
        concurrent readers can keep answering ``Pr(t_k)``/idf queries
        (same arithmetic, bit-for-bit at freeze time) while this
        object's single writer moves on. This is the statistics half of
        a published :class:`repro.service.ClusterSnapshot`.
        """
        all_ids = np.array(
            sorted(self._backend.term_ids()), dtype=np.int64
        )
        masses = (
            self._backend.term_mass_array(all_ids)
            if all_ids.size else np.zeros(0, dtype=np.float64)
        )
        keep = masses > 0.0
        return FrozenStatistics(
            now=self._now,
            tdw=self._backend.tdw,
            size=len(self._docs),
            term_ids=np.ascontiguousarray(all_ids[keep]),
            term_masses=np.ascontiguousarray(masses[keep]),
            backend_name=self.backend_name,
        )

    def validate(self, rel_tol: float = 1e-6) -> None:
        """Self-check: stored aggregates match a from-scratch recompute.

        Raises ``AssertionError`` on drift; used by tests and available
        to callers running very long streams.
        """
        weights = self._backend.weights()
        expected_tdw = sum(weights.values())
        tdw = self._backend.tdw
        assert math.isclose(tdw, expected_tdw, rel_tol=rel_tol,
                            abs_tol=1e-12), (
            f"tdw drift: stored {tdw}, expected {expected_tdw}"
        )
        expected_mass: Dict[int, float] = {}
        for doc_id, doc in self._docs.items():
            if not doc.length:
                continue
            weight = weights[doc_id]
            for term_id, count in doc.term_counts.items():
                expected_mass[term_id] = (
                    expected_mass.get(term_id, 0.0)
                    + weight * count / doc.length
                )
        for term_id, expected in expected_mass.items():
            stored = self._backend.term_mass(term_id)
            assert math.isclose(stored, expected, rel_tol=rel_tol,
                                abs_tol=1e-12), (
                f"term {term_id} mass drift: stored {stored}, "
                f"expected {expected}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorpusStatistics(docs={len(self._docs)}, "
            f"tdw={self._backend.tdw:.4f}, "
            f"terms={self._backend.vocabulary_size()}, "
            f"now={self._now}, backend={self.backend_name!r})"
        )
