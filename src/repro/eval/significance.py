"""Bootstrap confidence intervals for the paper's micro F1.

Table 4 of the paper reports point estimates only; two settings 0.02
apart may be statistically indistinguishable. This module quantifies
that: a percentile bootstrap over documents.

Design note: the cluster→topic *marking* is computed once on the full
sample and held fixed across resamples — the interval captures the
sampling variance of the measure given the clustering decision, not the
(discrete, unstable) variance of the marking itself. Each labelled
document's contribution to the pooled ``a``/``b``/``c`` cells is
precomputed, so a resample is a single weighted sum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._validation import (
    require_in_open_interval,
    require_positive_int,
)
from .matching import DEFAULT_PRECISION_THRESHOLD, mark_clusters, topic_membership


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap interval around a point estimate."""

    point: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.point:.3f} "
            f"[{self.lower:.3f}, {self.upper:.3f}]@{self.confidence:.0%}"
        )


def _document_contributions(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
    threshold: float,
) -> Dict[str, Tuple[int, int, int]]:
    """Per-document (a, b, c) contributions under the fixed marking."""
    marked = [
        cluster for cluster in mark_clusters(clusters, truth, threshold)
        if cluster.is_marked
    ]
    topics = topic_membership(truth)
    # every labelled document resamples; unlabelled documents join the
    # universe lazily when a marked cluster holds them (they carry b-cell
    # weight in evaluate_clustering and must do so here too)
    contributions: Dict[str, Tuple[int, int, int]] = {
        doc_id: (0, 0, 0)
        for doc_id, topic in truth.items()
        if topic is not None
    }

    def bump(doc_id: str, index: int) -> None:
        cells = list(contributions.get(doc_id, (0, 0, 0)))
        cells[index] += 1
        contributions[doc_id] = (cells[0], cells[1], cells[2])

    members_of = {
        cluster.cluster_id: frozenset(clusters[cluster.cluster_id])
        for cluster in marked
    }
    for cluster in marked:
        member_set = members_of[cluster.cluster_id]
        topic_docs = topics[cluster.topic_id]
        for doc_id in member_set & topic_docs:
            bump(doc_id, 0)
        for doc_id in member_set - topic_docs:
            bump(doc_id, 1)
        for doc_id in topic_docs - member_set:
            bump(doc_id, 2)
    return contributions


def _f1_from_totals(a: float, b: float, c: float) -> float:
    denominator = 2 * a + b + c
    return 2 * a / denominator if denominator else 0.0


def bootstrap_micro_f1(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    threshold: float = DEFAULT_PRECISION_THRESHOLD,
    seed: Optional[int] = None,
) -> BootstrapInterval:
    """Percentile bootstrap interval for the pooled (micro) F1.

    >>> truth = {"a": "t", "b": "t", "c": "u"}
    >>> interval = bootstrap_micro_f1([["a", "b"], ["c"]], truth, seed=0)
    >>> interval.contains(interval.point)
    True
    """
    require_positive_int("n_resamples", n_resamples)
    require_in_open_interval("confidence", confidence, 0.0, 1.0)

    contributions = _document_contributions(clusters, truth, threshold)
    doc_ids = list(contributions)
    if not doc_ids:
        return BootstrapInterval(
            point=0.0, lower=0.0, upper=0.0,
            confidence=confidence, resamples=n_resamples,
        )
    triples = [contributions[doc_id] for doc_id in doc_ids]
    point = _f1_from_totals(
        sum(t[0] for t in triples),
        sum(t[1] for t in triples),
        sum(t[2] for t in triples),
    )

    rng = random.Random(seed)
    n = len(triples)
    samples: List[float] = []
    for _ in range(n_resamples):
        a = b = c = 0
        for _ in range(n):
            t = triples[rng.randrange(n)]
            a += t[0]
            b += t[1]
            c += t[2]
        samples.append(_f1_from_totals(a, b, c))
    samples.sort()
    alpha = (1.0 - confidence) / 2.0
    lower_index = max(0, int(alpha * n_resamples) - 1)
    upper_index = min(n_resamples - 1, int((1.0 - alpha) * n_resamples))
    return BootstrapInterval(
        point=point,
        lower=samples[lower_index],
        upper=samples[upper_index],
        confidence=confidence,
        resamples=n_resamples,
    )
