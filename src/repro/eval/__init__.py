"""Evaluation substrate: contingency tables, cluster-topic marking,
micro/macro-averaged F1 (paper Section 6.2.3)."""

from .contingency import ContingencyTable
from .matching import MarkedCluster, mark_clusters
from .metrics import WindowEvaluation, evaluate_clustering
from .significance import BootstrapInterval, bootstrap_micro_f1
from .latency import (
    DetectionRecorder,
    LatencyReport,
    TopicLatency,
    first_arrivals,
)
from .external import (
    adjusted_rand_index,
    inverse_purity,
    normalized_mutual_information,
    purity,
    rand_index,
    recency_weighted_micro_f1,
)

__all__ = [
    "ContingencyTable",
    "MarkedCluster",
    "mark_clusters",
    "WindowEvaluation",
    "evaluate_clustering",
    "purity",
    "inverse_purity",
    "normalized_mutual_information",
    "rand_index",
    "adjusted_rand_index",
    "recency_weighted_micro_f1",
    "BootstrapInterval",
    "bootstrap_micro_f1",
    "DetectionRecorder",
    "LatencyReport",
    "TopicLatency",
    "first_arrivals",
]
