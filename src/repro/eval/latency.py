"""Detection latency: how quickly does the monitor surface a new topic?

The paper's goal — "present an overview of the current trend of hot
topics" — is about *timeliness*, which neither F1 nor the per-window
detection probes quantify. This module measures it directly on an
on-line run: for every topic, the delay between its first document's
arrival and the first snapshot whose marked clusters carry the topic.

Usage::

    recorder = DetectionRecorder(truth)
    for at_time, batch in iter_batches(docs, 1.0):
        result = clusterer.process_batch(batch, at_time=at_time)
        recorder.observe(result.clusters, at_time)
    report = recorder.report(first_arrivals(docs))
    report.mean_latency, report.detected_fraction
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..corpus.document import Document
from .matching import DEFAULT_PRECISION_THRESHOLD, mark_clusters


@dataclass(frozen=True)
class TopicLatency:
    """Detection outcome for one topic."""

    topic_id: str
    first_arrival: float
    detected_at: Optional[float]   # None = never surfaced

    @property
    def latency(self) -> Optional[float]:
        """Days from first document to first detection; None if missed."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.first_arrival


@dataclass(frozen=True)
class LatencyReport:
    """Aggregate over all topics with known arrivals."""

    topics: Tuple[TopicLatency, ...]

    @property
    def detected(self) -> List[TopicLatency]:
        return [t for t in self.topics if t.detected_at is not None]

    @property
    def detected_fraction(self) -> float:
        if not self.topics:
            return 0.0
        return len(self.detected) / len(self.topics)

    @property
    def mean_latency(self) -> Optional[float]:
        """Mean latency over *detected* topics; None if nothing was."""
        detected = self.detected
        if not detected:
            return None
        return sum(t.latency for t in detected) / len(detected)

    @property
    def median_latency(self) -> Optional[float]:
        detected = sorted(t.latency for t in self.detected)
        if not detected:
            return None
        middle = len(detected) // 2
        if len(detected) % 2:
            return detected[middle]
        return (detected[middle - 1] + detected[middle]) / 2.0

    def latency_of(self, topic_id: str) -> Optional[float]:
        for topic in self.topics:
            if topic.topic_id == topic_id:
                return topic.latency
        raise KeyError(topic_id)


def first_arrivals(documents: Sequence[Document]) -> Dict[str, float]:
    """Earliest timestamp per ground-truth topic."""
    arrivals: Dict[str, float] = {}
    for doc in documents:
        if doc.topic_id is None:
            continue
        if (doc.topic_id not in arrivals
                or doc.timestamp < arrivals[doc.topic_id]):
            arrivals[doc.topic_id] = doc.timestamp
    return arrivals


class DetectionRecorder:
    """Track the first snapshot each topic appears as a marked cluster.

    ``truth`` maps doc ids to topic ids for every document the stream
    will ever contain (used for marking, which needs topic sizes);
    ``threshold`` is the paper's marking precision.
    """

    def __init__(
        self,
        truth: Mapping[str, Optional[str]],
        threshold: float = DEFAULT_PRECISION_THRESHOLD,
    ) -> None:
        self.truth = dict(truth)
        self.threshold = threshold
        self._detected_at: Dict[str, float] = {}
        self._last_time: Optional[float] = None

    def observe(
        self, clusters: Sequence[Sequence[str]], at_time: float
    ) -> List[str]:
        """Record one snapshot; returns topics newly detected now."""
        if self._last_time is not None and at_time <= self._last_time:
            raise ValueError(
                f"snapshots must advance in time: {at_time} after "
                f"{self._last_time}"
            )
        self._last_time = at_time
        fresh: List[str] = []
        for marked in mark_clusters(clusters, self.truth, self.threshold):
            topic = marked.topic_id
            if topic is not None and topic not in self._detected_at:
                self._detected_at[topic] = at_time
                fresh.append(topic)
        return fresh

    def report(
        self, arrivals: Mapping[str, float]
    ) -> LatencyReport:
        """Build the report for every topic in ``arrivals``."""
        topics = tuple(
            TopicLatency(
                topic_id=topic_id,
                first_arrival=arrival,
                detected_at=self._detected_at.get(topic_id),
            )
            for topic_id, arrival in sorted(arrivals.items())
        )
        return LatencyReport(topics=topics)
