"""Global clustering quality: micro- and macro-averaged F1 (Section 6.2.3).

* **micro-average** — merge the contingency tables of every *marked*
  cluster by summing cells, then compute p, r, F1 from the merged table.
* **macro-average** — compute per-cluster measures for marked clusters,
  then average each measure; the macro F1 is reported both as the mean
  of per-cluster F1 values (``macro_f1``) and as the harmonic mean of
  the averaged precision and recall (``macro_f1_pr``) since the paper's
  phrasing ("averaging the corresponding measures", after Yang et al.)
  admits either reading. Table 4 of the paper is regenerated with
  ``macro_f1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from .contingency import ContingencyTable
from .matching import DEFAULT_PRECISION_THRESHOLD, MarkedCluster, mark_clusters


@dataclass(frozen=True)
class WindowEvaluation:
    """Aggregate evaluation of one clustering (one time window)."""

    clusters: Tuple[MarkedCluster, ...]
    micro: ContingencyTable
    micro_precision: float
    micro_recall: float
    micro_f1: float
    macro_precision: float
    macro_recall: float
    macro_f1: float
    macro_f1_pr: float

    @property
    def marked(self) -> List[MarkedCluster]:
        """Clusters that passed the precision threshold."""
        return [cluster for cluster in self.clusters if cluster.is_marked]

    @property
    def n_marked(self) -> int:
        return len(self.marked)

    @property
    def marked_topics(self) -> List[str]:
        """Distinct topics detected (marked), in cluster order."""
        seen = {}
        for cluster in self.marked:
            if cluster.topic_id is not None:
                seen.setdefault(cluster.topic_id, None)
        return list(seen)

    def detects_topic(self, topic_id: str) -> bool:
        """True when some marked cluster carries ``topic_id``.

        This is the paper's qualitative probe ("the topic appears in
        the clustering results").
        """
        return topic_id in self.marked_topics


def evaluate_clustering(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
    threshold: float = DEFAULT_PRECISION_THRESHOLD,
) -> WindowEvaluation:
    """Run the full Section 6.2.3 protocol on one clustering.

    ``clusters`` are member-id sequences; ``truth`` maps each document
    under evaluation to its topic (or ``None``). Unmarked clusters are
    excluded from both averages, as in the paper.
    """
    marked_all = mark_clusters(clusters, truth, threshold)
    marked = [cluster for cluster in marked_all if cluster.is_marked]

    micro = ContingencyTable.empty()
    for cluster in marked:
        micro = micro.merged(cluster.table)

    if marked:
        macro_precision = sum(c.precision for c in marked) / len(marked)
        macro_recall = sum(c.recall for c in marked) / len(marked)
        macro_f1 = sum(c.f1 for c in marked) / len(marked)
    else:
        macro_precision = macro_recall = macro_f1 = 0.0

    if macro_precision + macro_recall > 0:
        macro_f1_pr = (
            2 * macro_precision * macro_recall
            / (macro_precision + macro_recall)
        )
    else:
        macro_f1_pr = 0.0

    return WindowEvaluation(
        clusters=tuple(marked_all),
        micro=micro,
        micro_precision=micro.precision,
        micro_recall=micro.recall,
        micro_f1=micro.f1,
        macro_precision=macro_precision,
        macro_recall=macro_recall,
        macro_f1=macro_f1,
        macro_f1_pr=macro_f1_pr,
    )
