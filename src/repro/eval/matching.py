"""Cluster -> topic marking (paper Section 6.2.3).

"We determine a cluster is marked with a topic if the precision of the
topic in the cluster is equal or greater than 0.60. If a cluster has no
precision larger than 0.60, then the cluster is not marked with any
topic."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .contingency import ContingencyTable

#: The paper's marking threshold.
DEFAULT_PRECISION_THRESHOLD = 0.60


@dataclass(frozen=True)
class MarkedCluster:
    """One cluster's evaluation outcome.

    ``topic_id`` is ``None`` when the cluster failed the precision
    threshold (unmarked clusters are excluded from the averages, per the
    paper). ``table`` is against the best-precision topic regardless,
    so unmarked clusters remain inspectable.
    """

    cluster_id: int
    size: int
    topic_id: Optional[str]
    best_topic_id: Optional[str]
    table: ContingencyTable

    @property
    def is_marked(self) -> bool:
        return self.topic_id is not None

    @property
    def precision(self) -> float:
        return self.table.precision

    @property
    def recall(self) -> float:
        return self.table.recall

    @property
    def f1(self) -> float:
        return self.table.f1


def topic_membership(
    truth: Mapping[str, Optional[str]]
) -> Dict[str, FrozenSet[str]]:
    """Invert ``doc_id -> topic_id`` into ``topic_id -> {doc_ids}``."""
    members: Dict[str, Set[str]] = {}
    for doc_id, topic_id in truth.items():
        if topic_id is not None:
            members.setdefault(topic_id, set()).add(doc_id)
    return {topic: frozenset(docs) for topic, docs in members.items()}


def mark_clusters(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
    threshold: float = DEFAULT_PRECISION_THRESHOLD,
) -> List[MarkedCluster]:
    """Mark each non-empty cluster with its best topic when p >= threshold.

    Parameters
    ----------
    clusters:
        Cluster member-id sequences (empty clusters are skipped).
    truth:
        ``doc_id -> topic_id`` for the documents under evaluation;
        unlabelled documents (``topic_id is None``) count only against
        precision.
    threshold:
        Marking precision threshold (paper: 0.60).

    Returns one :class:`MarkedCluster` per non-empty cluster, in cluster
    order. Clusters whose best precision falls below ``threshold`` get
    ``topic_id=None`` but keep their best-topic table for inspection.
    """
    topics = topic_membership(truth)
    total = sum(1 for topic_id in truth.values() if topic_id is not None)
    marked: List[MarkedCluster] = []
    for cluster_id, members in enumerate(clusters):
        if not members:
            continue
        member_set = frozenset(members)
        best = _best_topic(member_set, truth, topics, total)
        if best is None:
            table = ContingencyTable(
                a=0, b=len(member_set), c=0, d=total
            )
            marked.append(
                MarkedCluster(
                    cluster_id=cluster_id,
                    size=len(member_set),
                    topic_id=None,
                    best_topic_id=None,
                    table=table,
                )
            )
            continue
        best_topic, table = best
        marked.append(
            MarkedCluster(
                cluster_id=cluster_id,
                size=len(member_set),
                topic_id=best_topic if table.precision >= threshold else None,
                best_topic_id=best_topic,
                table=table,
            )
        )
    return marked


def _best_topic(
    member_set: FrozenSet[str],
    truth: Mapping[str, Optional[str]],
    topics: Mapping[str, FrozenSet[str]],
    total: int,
) -> Optional[Tuple[str, ContingencyTable]]:
    """Return the topic with the highest precision in this cluster.

    Precision ties are broken by recall, then lexical topic id, so the
    marking is deterministic.
    """
    counts: Dict[str, int] = {}
    for doc_id in member_set:
        topic_id = truth.get(doc_id)
        if topic_id is not None:
            counts[topic_id] = counts.get(topic_id, 0) + 1
    if not counts:
        return None
    size = len(member_set)
    best_topic = None
    best_key: Tuple[float, float, str] = (-1.0, -1.0, "")
    for topic_id, overlap in counts.items():
        precision = overlap / size
        recall = overlap / len(topics[topic_id])
        key = (precision, recall, topic_id)
        if key > best_key:
            best_key = key
            best_topic = topic_id
    assert best_topic is not None
    # ``total`` counts labelled docs only; a cluster may also hold
    # unlabelled docs, so widen the universe to keep d >= 0.
    universe = max(total, len(member_set | topics[best_topic]))
    table = ContingencyTable.from_sets(
        member_set, topics[best_topic], universe
    )
    return best_topic, table
