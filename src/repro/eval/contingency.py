"""The paper's Table 3 contingency table and derived measures.

For one (cluster, topic) pair over a document set:

====================  =========  ==============
\\                     On topic   Not on topic
====================  =========  ==============
In cluster            ``a``      ``b``
Not in cluster        ``c``      ``d``
====================  =========  ==============

* precision ``p = a / (a + b)``
* recall    ``r = a / (a + c)``
* ``F1 = 2rp / (r + p) = 2a / (2a + b + c)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet

from .._validation import require_non_negative_int


@dataclass(frozen=True)
class ContingencyTable:
    """Counts ``a, b, c, d`` for one cluster-topic pair (paper Table 3)."""

    a: int
    b: int
    c: int
    d: int

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "d"):
            require_non_negative_int(name, getattr(self, name))

    @classmethod
    def from_sets(
        cls,
        cluster: AbstractSet[str],
        topic: AbstractSet[str],
        total: int,
    ) -> "ContingencyTable":
        """Build from the cluster and topic membership sets.

        ``total`` is the number of documents under evaluation (labelled
        documents of the window); it only affects ``d``.
        """
        a = len(cluster & topic)
        b = len(cluster) - a
        c = len(topic) - a
        d = total - a - b - c
        if d < 0:
            raise ValueError(
                f"total={total} smaller than |cluster ∪ topic|={a + b + c}"
            )
        return cls(a=a, b=b, c=c, d=d)

    @property
    def precision(self) -> float:
        """``p = a/(a+b)``; 0.0 for an empty cluster."""
        denom = self.a + self.b
        return self.a / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """``r = a/(a+c)``; 0.0 for an empty topic."""
        denom = self.a + self.c
        return self.a / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """``F1 = 2a/(2a+b+c)``; 0.0 when undefined."""
        denom = 2 * self.a + self.b + self.c
        return 2 * self.a / denom if denom else 0.0

    def merged(self, other: "ContingencyTable") -> "ContingencyTable":
        """Cell-wise sum — the paper's micro-average merging step."""
        return ContingencyTable(
            a=self.a + other.a,
            b=self.b + other.b,
            c=self.c + other.c,
            d=self.d + other.d,
        )

    @classmethod
    def empty(cls) -> "ContingencyTable":
        return cls(0, 0, 0, 0)

    @property
    def total(self) -> int:
        return self.a + self.b + self.c + self.d
