"""External clustering-quality measures beyond the paper's F1 protocol.

The paper evaluates only with marked-cluster precision/recall/F1
(Section 6.2.3). For a usable library we also provide the standard
external measures — purity, inverse purity, normalised mutual
information, Rand index and adjusted Rand index — plus a
**recency-weighted micro F1** that scores what the novelty method
actually optimises: contingency cells weighted by each document's
forgetting weight, so mistakes on stale documents matter less.

All functions take ``clusters`` (sequences of doc ids) and ``truth``
(``doc_id -> topic_id``; ``None`` labels are ignored) and operate on
the *labelled documents assigned to some cluster* unless stated
otherwise; outliers are treated per function documentation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..corpus.document import Document
from ..forgetting.model import ForgettingModel
from .matching import DEFAULT_PRECISION_THRESHOLD, topic_membership


def _labelled_assignments(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> List[Tuple[int, str]]:
    """(cluster_id, topic_id) pairs for labelled, clustered documents."""
    pairs: List[Tuple[int, str]] = []
    for cluster_id, members in enumerate(clusters):
        for doc_id in members:
            topic = truth.get(doc_id)
            if topic is not None:
                pairs.append((cluster_id, topic))
    return pairs


def _contingency_counts(
    pairs: List[Tuple[int, str]]
) -> Tuple[Dict[Tuple[int, str], int], Dict[int, int], Dict[str, int]]:
    joint: Dict[Tuple[int, str], int] = {}
    by_cluster: Dict[int, int] = {}
    by_topic: Dict[str, int] = {}
    for cluster_id, topic in pairs:
        joint[(cluster_id, topic)] = joint.get((cluster_id, topic), 0) + 1
        by_cluster[cluster_id] = by_cluster.get(cluster_id, 0) + 1
        by_topic[topic] = by_topic.get(topic, 0) + 1
    return joint, by_cluster, by_topic


def purity(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> float:
    """Fraction of clustered documents matching their cluster majority.

    ``purity = (1/N) Σ_p max_t |C_p ∩ T_t|``. 1.0 when every cluster is
    topic-pure; trivially maximised by singleton clusters (see
    :func:`inverse_purity` for the counterweight).
    """
    pairs = _labelled_assignments(clusters, truth)
    if not pairs:
        return 0.0
    joint, by_cluster, _ = _contingency_counts(pairs)
    best: Dict[int, int] = {}
    for (cluster_id, _), count in joint.items():
        best[cluster_id] = max(best.get(cluster_id, 0), count)
    return sum(best.values()) / len(pairs)


def inverse_purity(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> float:
    """Fraction of documents whose topic majority-lands in one cluster.

    ``inverse_purity = (1/N) Σ_t max_p |C_p ∩ T_t|``. Trivially
    maximised by one giant cluster; combine with :func:`purity`.
    Documents of a topic that were all left outliers contribute 0.
    """
    pairs = _labelled_assignments(clusters, truth)
    labelled_total = sum(
        1 for topic in truth.values() if topic is not None
    )
    if not pairs or labelled_total == 0:
        return 0.0
    joint, _, _ = _contingency_counts(pairs)
    best: Dict[str, int] = {}
    for (_, topic), count in joint.items():
        best[topic] = max(best.get(topic, 0), count)
    return sum(best.values()) / labelled_total


def normalized_mutual_information(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> float:
    """NMI between the clustering and the topic labelling.

    ``NMI = 2·I(C;T) / (H(C) + H(T))`` over clustered labelled
    documents; 0.0 when either partition is trivial (one block).
    """
    pairs = _labelled_assignments(clusters, truth)
    n = len(pairs)
    if n == 0:
        return 0.0
    joint, by_cluster, by_topic = _contingency_counts(pairs)

    def entropy(counts: Mapping[object, int]) -> float:
        total = 0.0
        for count in counts.values():
            p = count / n
            total -= p * math.log(p)
        return total

    h_c = entropy(by_cluster)
    h_t = entropy(by_topic)
    if h_c == 0.0 or h_t == 0.0:
        return 0.0
    mutual = 0.0
    for (cluster_id, topic), count in joint.items():
        p_joint = count / n
        p_c = by_cluster[cluster_id] / n
        p_t = by_topic[topic] / n
        mutual += p_joint * math.log(p_joint / (p_c * p_t))
    return max(0.0, 2.0 * mutual / (h_c + h_t))


def rand_index(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> float:
    """Fraction of document pairs on which clustering and truth agree."""
    pairs = _labelled_assignments(clusters, truth)
    n = len(pairs)
    if n < 2:
        return 1.0
    joint, by_cluster, by_topic = _contingency_counts(pairs)

    def comb2(x: int) -> int:
        return x * (x - 1) // 2

    total_pairs = comb2(n)
    same_both = sum(comb2(count) for count in joint.values())
    same_cluster = sum(comb2(count) for count in by_cluster.values())
    same_topic = sum(comb2(count) for count in by_topic.values())
    agreements = (
        same_both
        + (total_pairs - same_cluster - same_topic + same_both)
    )
    return agreements / total_pairs


def adjusted_rand_index(
    clusters: Sequence[Sequence[str]],
    truth: Mapping[str, Optional[str]],
) -> float:
    """Rand index corrected for chance (Hubert & Arabie); 0 ≈ random."""
    pairs = _labelled_assignments(clusters, truth)
    n = len(pairs)
    if n < 2:
        return 1.0
    joint, by_cluster, by_topic = _contingency_counts(pairs)

    def comb2(x: int) -> int:
        return x * (x - 1) // 2

    index = sum(comb2(count) for count in joint.values())
    sum_cluster = sum(comb2(count) for count in by_cluster.values())
    sum_topic = sum(comb2(count) for count in by_topic.values())
    total = comb2(n)
    expected = sum_cluster * sum_topic / total if total else 0.0
    maximum = (sum_cluster + sum_topic) / 2.0
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)


def recency_weighted_micro_f1(
    clusters: Sequence[Sequence[str]],
    documents: Sequence[Document],
    model: ForgettingModel,
    at_time: float,
    threshold: float = DEFAULT_PRECISION_THRESHOLD,
) -> float:
    """Micro F1 with forgetting-weighted contingency cells.

    Each document contributes its weight ``dw = λ^(at_time - T)`` to the
    ``a``/``b``/``c`` cells instead of 1, so the measure rewards getting
    *recent* documents right — the objective the novelty method
    optimises and plain F1 ignores (the paper notes F1 "does not
    consider the novelty of topics"). Cluster marking uses unweighted
    precision against ``threshold``, matching the paper's protocol,
    with one deliberate extension: a topic that no marked cluster
    carries contributes its whole weight to ``c`` (the paper's
    marked-clusters-only pooling would silently forgive missing an
    entire hot topic, which defeats the measure's purpose).
    """
    weight = {
        doc.doc_id: model.weight(doc.timestamp, at_time)
        for doc in documents
    }
    truth: Dict[str, Optional[str]] = {
        doc.doc_id: doc.topic_id for doc in documents
    }
    topics = topic_membership(truth)
    a = b = c = 0.0
    marked_topics = set()
    for members in clusters:
        if not members:
            continue
        member_set = set(members)
        counts: Dict[str, int] = {}
        for doc_id in member_set:
            topic = truth.get(doc_id)
            if topic is not None:
                counts[topic] = counts.get(topic, 0) + 1
        if not counts:
            continue
        best = max(counts, key=lambda t: (counts[t], t))
        if counts[best] / len(member_set) < threshold:
            continue
        marked_topics.add(best)
        topic_docs = topics[best]
        a += sum(weight[d] for d in member_set & topic_docs
                 if d in weight)
        b += sum(weight[d] for d in member_set - topic_docs
                 if d in weight)
        c += sum(weight[d] for d in topic_docs - member_set
                 if d in weight)
    for topic, topic_docs in topics.items():
        if topic not in marked_topics:
            c += sum(weight[d] for d in topic_docs if d in weight)
    denominator = 2 * a + b + c
    return 2 * a / denominator if denominator else 0.0
