"""Immutable versioned cluster snapshots — the service's read side.

A :class:`ClusterSnapshot` is everything a reader needs to answer
queries against one committed batch, precomputed into plain numpy
arrays at publish time:

* the compacted snapshot term space (sorted unique term ids of the
  active documents) with the novelty idf (Eq. 14) of every term,
* a dense ``K × n_terms`` matrix of cluster representatives
  ``c⃗_p = Σ_{d∈C_p} w⃗_d`` (Eq. 19-20) aggregated from the batch CSR
  rows of :meth:`~repro.vectors.tfidf.NoveltyTfidfWeighter.weighted_arrays`,
* the per-cluster ``cr_sim(C_p, C_p)`` / ``ss(C_p)`` aggregates
  (Eq. 21-23) and the affine gain coefficients ``(a_p, b_p)`` of
  Eq. 25-26, so :meth:`assign` is one dense mat-vec plus an argmax,
* a :class:`~repro.forgetting.FrozenStatistics` view of the decayed
  probability tables, so idf queries never touch live statistics.

Snapshots are *immutable* (frozen dataclass, numpy arrays marked
read-only) and *versioned*: ``version`` equals the durability journal's
batch sequence, so snapshot N is exactly the state after batch N — the
property the isolation suite checks against a batch-mode replay.
Because a snapshot shares nothing mutable with the writer, any number
of threads can query one concurrently, lock-free, while the writer
builds its successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from .._typing import FloatArray, IntArray
from ..core.engines.base import affine_gain_coefficients
from ..corpus.document import Document
from ..exceptions import ConfigurationError
from ..forgetting.frozen import FrozenStatistics
from ..obs import Span
from ..vectors.tfidf import NoveltyTfidfWeighter

if TYPE_CHECKING:
    from ..core.incremental import IncrementalClusterer
    from ..text.pipeline import TextPipeline
    from ..text.vocabulary import Vocabulary

#: Things :meth:`ClusterSnapshot.assign` scores: a Document, a raw
#: ``{term_id: count}`` mapping, or text (needs a pipeline+vocabulary).
Query = Union[Document, Mapping[int, int], str]


@dataclass(frozen=True)
class QueryAssignment:
    """Answer of :meth:`ClusterSnapshot.assign` for one query."""

    #: Winning cluster id, or ``None`` when no cluster gains (outlier).
    cluster_id: Optional[int]
    #: The winning affine gain (Eq. 25-26); <= 0.0 for outliers.
    gain: float
    #: Version of the snapshot that answered.
    version: int

    @property
    def is_outlier(self) -> bool:
        return self.cluster_id is None


@dataclass(frozen=True)
class ClusterInfo:
    """One row of :meth:`ClusterSnapshot.top_clusters`."""

    cluster_id: int
    size: int
    #: The cluster's ``|C_p|·avg_sim`` term of ``G`` (Eq. 17, 24).
    contribution: float


@dataclass(frozen=True)
class SnapshotStats:
    """Summary counters of one snapshot (:meth:`ClusterSnapshot.stats`)."""

    version: int
    at_time: Optional[float]
    active_documents: int
    non_empty_clusters: int
    outliers: int
    clustering_index: float
    tdw: float
    terms: int
    k: int


@dataclass(frozen=True)
class ClusterSnapshot:
    """Point-in-time, read-optimized view of the clusterer state.

    Build one with :meth:`from_clusterer` (the service does this in its
    commit hook); query it with :meth:`assign`, :meth:`top_clusters`,
    :meth:`members`, and :meth:`stats` — all pure reads over the frozen
    arrays, safe from any thread.
    """

    #: Monotonic publish number == the durability journal sequence.
    version: int
    #: Logical clock τ of the state (``None`` for a never-fed state).
    at_time: Optional[float]
    k: int
    criterion: str
    #: Member doc ids per cluster slot (sorted within each cluster).
    clusters: Tuple[Tuple[str, ...], ...]
    outliers: Tuple[str, ...]
    clustering_index: float
    frozen: FrozenStatistics
    #: Sorted unique term ids of the snapshot column space.
    term_ids: IntArray
    #: Novelty idf per snapshot term (aligned with ``term_ids``).
    idf: FloatArray
    #: Dense ``k × n_terms`` representative matrix (Eq. 19-20).
    representatives: FloatArray
    sizes: IntArray
    crpp: FloatArray
    ss: FloatArray
    gain_a: FloatArray
    gain_b: FloatArray
    #: Optional text front-end for ``assign("raw text")`` queries.
    vocabulary: Optional["Vocabulary"] = None
    pipeline: Optional["TextPipeline"] = None

    def __post_init__(self) -> None:
        for array in (
            self.term_ids, self.idf, self.representatives,
            self.sizes, self.crpp, self.ss, self.gain_a, self.gain_b,
        ):
            array.setflags(write=False)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_clusterer(
        cls,
        version: int,
        clusterer: "IncrementalClusterer",
        vocabulary: Optional["Vocabulary"] = None,
        pipeline: Optional["TextPipeline"] = None,
    ) -> "ClusterSnapshot":
        """Freeze ``clusterer``'s committed state as snapshot ``version``.

        Must be called from the (single) writer with no batch in
        flight — the commit hook is exactly that point. The build cost
        is one pass over the active documents (the same CSR
        vectorisation a clustering run starts with) plus a dense
        scatter-add into the representative matrix.
        """
        with Span(clusterer.recorder, "service.snapshot_build",
                  {"version": version}):
            statistics = clusterer.statistics
            frozen = statistics.freeze()
            assignment = clusterer.assignments()
            k = clusterer.kmeans.k
            criterion = clusterer.kmeans.criterion
            documents = statistics.documents()

            member_lists: List[List[str]] = [[] for _ in range(k)]
            for doc_id, cluster_id in assignment.items():
                member_lists[cluster_id].append(doc_id)
            clusters = tuple(
                tuple(sorted(members)) for members in member_lists
            )

            weighter = NoveltyTfidfWeighter(statistics)
            arrays = weighter.weighted_arrays(documents)
            doc_ids, indptr, nnz_terms, data = arrays.csr_parts()
            snapshot_terms = np.unique(nnz_terms)
            columns = np.searchsorted(snapshot_terms, nnz_terms)
            idf = frozen.idf_array(snapshot_terms)

            n_docs = len(doc_ids)
            n_terms = int(snapshot_terms.size)
            lens = np.diff(indptr)
            row_cluster = np.fromiter(
                (assignment.get(doc_id, -1) for doc_id in doc_ids),
                dtype=np.int64, count=n_docs,
            )
            representatives = np.zeros((k, n_terms), dtype=np.float64)
            nnz_cluster = np.repeat(row_cluster, lens)
            assigned_nnz = nnz_cluster >= 0
            np.add.at(
                representatives,
                (nnz_cluster[assigned_nnz], columns[assigned_nnz]),
                data[assigned_nnz],
            )
            row_index = np.repeat(np.arange(n_docs, dtype=np.int64), lens)
            row_self = np.bincount(
                row_index, weights=data * data, minlength=n_docs
            )
            assigned_rows = row_cluster >= 0
            ss = np.bincount(
                row_cluster[assigned_rows],
                weights=row_self[assigned_rows],
                minlength=k,
            )
            sizes = np.bincount(
                row_cluster[assigned_rows], minlength=k
            ).astype(np.int64)
            crpp = np.einsum("ij,ij->i", representatives, representatives)

            gain_a = np.zeros(k, dtype=np.float64)
            gain_b = np.zeros(k, dtype=np.float64)
            for cluster_id in range(k):
                a, b = affine_gain_coefficients(
                    criterion,
                    int(sizes[cluster_id]),
                    float(crpp[cluster_id]),
                    float(ss[cluster_id]),
                )
                gain_a[cluster_id] = a
                gain_b[cluster_id] = b

            last = clusterer.last_result
            if last is not None:
                clustering_index = last.clustering_index
                outliers = last.outliers
            else:
                # recovered/fresh state without a fit in history: G from
                # the rebuilt aggregates (the engines' post-refresh sum)
                multi = sizes > 1
                contributions = np.where(
                    multi,
                    (crpp - ss) / np.maximum(sizes - 1, 1),
                    0.0,
                )
                clustering_index = float(contributions.sum())
                outliers = ()

        return cls(
            version=int(version),
            at_time=statistics.now,
            k=k,
            criterion=criterion,
            clusters=clusters,
            outliers=tuple(outliers),
            clustering_index=clustering_index,
            frozen=frozen,
            term_ids=np.ascontiguousarray(snapshot_terms),
            idf=np.ascontiguousarray(idf),
            representatives=representatives,
            sizes=sizes,
            crpp=np.ascontiguousarray(crpp),
            ss=np.ascontiguousarray(ss),
            gain_a=gain_a,
            gain_b=gain_b,
            vocabulary=vocabulary,
            pipeline=pipeline,
        )

    # -- queries ---------------------------------------------------------

    def assign(self, query: Query) -> QueryAssignment:
        """Score ``query`` against every cluster; pure read, lock-free.

        The query is weighted exactly like a unit-weight document
        arriving at the snapshot clock: ``w⃗_q = (Pr(q)/len_q)·d⃗_q``
        with ``Pr(q) = 1/tdw`` (a just-arrived document has ``dw = 1``)
        and the snapshot's frozen idf table (terms unseen at freeze
        time contribute nothing, exactly as in a live fit). The winning
        cluster maximises the affine gain ``a_p·(c⃗_p·w⃗_q) + b_p``
        (Eq. 25-26, ties to the lowest cluster id like every engine);
        a non-positive best gain means outlier.
        """
        counts, length = self._query_counts(query)
        outlier = QueryAssignment(
            cluster_id=None, gain=0.0, version=self.version
        )
        if (
            not counts
            or length <= 0
            or self.frozen.tdw <= 0.0
            or self.term_ids.size == 0
        ):
            return outlier
        ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        values = np.fromiter(
            counts.values(), dtype=np.float64, count=len(counts)
        )
        positions = np.searchsorted(self.term_ids, ids)
        positions = np.minimum(positions, self.term_ids.size - 1)
        found = self.term_ids[positions] == ids
        if not found.any():
            return outlier
        scale = (1.0 / self.frozen.tdw) / length
        components = (
            values[found] * self.idf[positions[found]] * scale
        )
        live = components != 0.0
        if not live.any():
            return outlier
        cr = self.representatives[:, positions[found][live]] @ components[live]
        gains = self.gain_a * cr + self.gain_b
        best = int(np.argmax(gains))
        gain = float(gains[best])
        if gain <= 0.0:
            return outlier
        return QueryAssignment(
            cluster_id=best, gain=gain, version=self.version
        )

    def top_clusters(self, n: int = 10) -> List[ClusterInfo]:
        """The ``n`` largest non-empty clusters (size desc, id asc)."""
        multi = self.sizes > 1
        contributions = np.where(
            multi,
            (self.crpp - self.ss) / np.maximum(self.sizes - 1, 1),
            0.0,
        )
        ranked = sorted(
            (
                ClusterInfo(
                    cluster_id=cluster_id,
                    size=int(self.sizes[cluster_id]),
                    contribution=float(contributions[cluster_id]),
                )
                for cluster_id in range(self.k)
                if self.sizes[cluster_id] > 0
            ),
            key=lambda info: (-info.size, info.cluster_id),
        )
        return ranked[: max(n, 0)]

    def members(self, cluster_id: int) -> Tuple[str, ...]:
        """Member doc ids of one cluster slot (sorted)."""
        if not 0 <= cluster_id < self.k:
            raise ConfigurationError(
                f"cluster id {cluster_id} outside [0, {self.k})"
            )
        return self.clusters[cluster_id]

    def stats(self) -> SnapshotStats:
        """Summary counters of this snapshot."""
        return SnapshotStats(
            version=self.version,
            at_time=self.at_time,
            active_documents=self.frozen.size,
            non_empty_clusters=int((self.sizes > 0).sum()),
            outliers=len(self.outliers),
            clustering_index=self.clustering_index,
            tdw=self.frozen.tdw,
            terms=int(self.term_ids.size),
            k=self.k,
        )

    # -- helpers ---------------------------------------------------------

    def _query_counts(self, query: Query) -> Tuple[Dict[int, float], float]:
        """Normalise a query to ``({term_id: count}, length)``.

        Text queries run the attached pipeline and look terms up
        *without interning* (:meth:`Vocabulary.get`), so reader threads
        never mutate shared state; terms the vocabulary has never seen
        still count toward the length, as they would for a real
        document whose unseen terms carry idf 0.
        """
        if isinstance(query, Document):
            return (
                {t: float(c) for t, c in query.term_counts.items()},
                float(query.length),
            )
        if isinstance(query, str):
            if self.pipeline is None or self.vocabulary is None:
                raise ConfigurationError(
                    "text queries need the snapshot's text front-end; "
                    "build the snapshot with vocabulary= and pipeline= "
                    "(repro.api.open_stream wires both)"
                )
            raw = self.pipeline.term_frequencies(query)
            length = float(sum(raw.values()))
            counts: Dict[int, float] = {}
            for term, count in raw.items():
                term_id = self.vocabulary.get(term)
                if term_id >= 0:
                    counts[term_id] = counts.get(term_id, 0.0) + count
            return counts, length
        counts = {int(t): float(c) for t, c in query.items()}
        return counts, float(sum(counts.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterSnapshot(version={self.version}, "
            f"t={self.at_time}, docs={self.frozen.size}, "
            f"clusters={int((self.sizes > 0).sum())}/{self.k}, "
            f"G={self.clustering_index:.3e})"
        )
