"""Streaming service layer: single async writer, lock-free readers.

This package turns the batch pipeline into a long-running service:
:class:`ClusterService` serializes ingestion through one asyncio writer
and publishes an immutable, monotonically versioned
:class:`ClusterSnapshot` after every committed batch. Readers query the
snapshot — :meth:`~ClusterSnapshot.assign`,
:meth:`~ClusterSnapshot.top_clusters`, :meth:`~ClusterSnapshot.members`,
:meth:`~ClusterSnapshot.stats` — without locks and without ever
observing a half-committed batch. See ``docs/SERVICE.md`` for the
writer/reader contract; construct services via
:func:`repro.api.open_stream`.
"""

from .snapshot import (
    ClusterInfo,
    ClusterSnapshot,
    Query,
    QueryAssignment,
    SnapshotStats,
)
from .service import ClusterService
from .web import ServiceHTTPServer

__all__ = [
    "ClusterService",
    "ClusterSnapshot",
    "ClusterInfo",
    "Query",
    "QueryAssignment",
    "SnapshotStats",
    "ServiceHTTPServer",
]
