"""Optional stdlib-only HTTP front-end for :class:`ClusterService`.

A thin JSON-over-HTTP veneer on the snapshot query API — handy for
poking a running service with ``curl``; not a production web stack.
Every response carries the snapshot ``version`` that answered it, so a
client can detect which committed state it observed.

Routes::

    GET  /stats                  -> SnapshotStats as JSON
    GET  /top?n=10               -> largest clusters
    GET  /members?cluster=3      -> member doc ids of one cluster
    POST /assign                 -> {"text": ...} or {"terms": {id: n}}
    POST /add                    -> {"documents": [loader records],
                                     "at_time": float}

Reads are served concurrently (ThreadingHTTPServer) straight off the
current snapshot — they never touch the writer. ``/add`` enqueues into
the writer queue like any other producer.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from ..exceptions import ReproError

if TYPE_CHECKING:
    from .service import ClusterService


class ServiceHTTPServer:
    """Owns the HTTP listener thread for one :class:`ClusterService`."""

    def __init__(
        self,
        service: "ClusterService",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = _make_handler(service)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None


def _make_handler(service: "ClusterService") -> type:
    """Build a request handler class bound to ``service``."""

    class Handler(BaseHTTPRequestHandler):
        # quiet by default: request logging goes nowhere
        def log_message(self, fmt: str, *args: Any) -> None:
            pass

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._reply(status, {"error": message})

        def _read_json(self) -> Optional[Dict[str, Any]]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._error(400, "body is not valid JSON")
                return None
            if not isinstance(payload, dict):
                self._error(400, "body must be a JSON object")
                return None
            return payload

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            parsed = urlparse(self.path)
            query = parse_qs(parsed.query)
            try:
                if parsed.path == "/stats":
                    stats = service.stats()
                    self._reply(200, {
                        "version": stats.version,
                        "at_time": stats.at_time,
                        "active_documents": stats.active_documents,
                        "non_empty_clusters": stats.non_empty_clusters,
                        "outliers": stats.outliers,
                        "clustering_index": stats.clustering_index,
                        "tdw": stats.tdw,
                        "terms": stats.terms,
                        "k": stats.k,
                    })
                elif parsed.path == "/top":
                    n = int(query.get("n", ["10"])[0])
                    snapshot = service.snapshot()
                    self._reply(200, {
                        "version": snapshot.version,
                        "clusters": [
                            {
                                "cluster_id": info.cluster_id,
                                "size": info.size,
                                "contribution": info.contribution,
                            }
                            for info in snapshot.top_clusters(n)
                        ],
                    })
                elif parsed.path == "/members":
                    if "cluster" not in query:
                        self._error(400, "missing ?cluster= parameter")
                        return
                    cluster_id = int(query["cluster"][0])
                    snapshot = service.snapshot()
                    self._reply(200, {
                        "version": snapshot.version,
                        "cluster_id": cluster_id,
                        "members": list(snapshot.members(cluster_id)),
                    })
                else:
                    self._error(404, f"unknown path {parsed.path!r}")
            except (ReproError, ValueError) as exc:
                self._error(400, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            parsed = urlparse(self.path)
            payload = self._read_json()
            if payload is None:
                return
            try:
                if parsed.path == "/assign":
                    result = self._assign(payload)
                    if result is not None:
                        self._reply(200, result)
                elif parsed.path == "/add":
                    count = self._add(payload)
                    if count is not None:
                        self._reply(202, {"queued": count})
                else:
                    self._error(404, f"unknown path {parsed.path!r}")
            except (ReproError, ValueError) as exc:
                self._error(400, str(exc))
            except KeyError as exc:
                # a record missing 'doc_id'/'terms'/'timestamp' is a
                # client error, not a server traceback
                self._error(400, f"missing field {exc.args[0]!r}")
            except (TypeError, AttributeError) as exc:
                self._error(400, f"malformed request: {exc}")

        def _assign(
            self, payload: Dict[str, Any]
        ) -> Optional[Dict[str, Any]]:
            if "text" in payload:
                answer = service.assign(str(payload["text"]))
            elif "terms" in payload:
                terms = {
                    int(term_id): int(count)
                    for term_id, count in payload["terms"].items()
                }
                answer = service.assign(terms)
            else:
                self._error(400, "body needs 'text' or 'terms'")
                return None
            return {
                "cluster_id": answer.cluster_id,
                "gain": answer.gain,
                "is_outlier": answer.is_outlier,
                "version": answer.version,
            }

        def _add(self, payload: Dict[str, Any]) -> Optional[int]:
            if service.vocabulary is None:
                self._error(400, "service has no vocabulary; POST /add "
                                 "is unavailable")
                return None
            records = payload.get("documents")
            if not isinstance(records, list) or not records:
                self._error(400, "'documents' must be a non-empty list")
                return None
            if "at_time" not in payload:
                self._error(400, "missing 'at_time'")
                return None
            # _intern_record serializes Vocabulary.add across the
            # ThreadingHTTPServer handler threads and the tailer
            documents = [
                service._intern_record(record) for record in records
            ]
            service.add(documents, at_time=float(payload["at_time"]))
            return len(documents)

    return Handler
